"""§1/§5 ablation: factor-graph size reduction from the optimizations.

The paper credits domain pruning and partitioning with shrinking the
grounded factor graph by 7× (small datasets) up to 96,000× (Physicians).
We compare three groundings on Food:

* *naive bound* — the quadratic count DC factors would need over all
  tuple pairs (|Σ2| · |D|²/2, what "grounding this factor graph requires
  an unrealistic amount of time" refers to);
* *join-aware* — factors actually grounded from candidate-join pairs;
* *join-aware + partitioning* — restricted to Algorithm 3's groups.
"""

from _common import publish

from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.data import generate_food
from repro.detect.violations import ViolationDetector


def test_grounding_size_reduction(benchmark):
    generated = generate_food(num_rows=600)
    detection = ViolationDetector(generated.constraints).detect(generated.dirty)
    two_tuple_dcs = sum(1 for dc in generated.constraints
                        if not dc.is_single_tuple)
    n = generated.dirty.num_tuples
    naive_bound = two_tuple_dcs * n * (n - 1) // 2

    def ground():
        sizes = {}
        for variant in ("dc-factors", "dc-factors+partitioning"):
            config = HoloCleanConfig.variant(
                variant, tau=0.5, seed=1, epochs=1,
                gibbs_burn_in=0, gibbs_sweeps=1)
            result = HoloClean(config).repair(
                generated.dirty, generated.constraints, detection=detection)
            sizes[variant] = result.size_report["constraint_factors"]
        return sizes

    sizes = benchmark.pedantic(ground, rounds=1, iterations=1)

    grounded = max(sizes["dc-factors"], 1)
    partitioned = max(sizes["dc-factors+partitioning"], 1)
    publish("ablation_grounding_size",
            f"naive all-pairs bound:          {naive_bound:>12}\n"
            f"join-aware grounding:           {sizes['dc-factors']:>12} "
            f"({naive_bound / grounded:,.0f}x smaller)\n"
            f"with Algorithm 3 partitioning:  "
            f"{sizes['dc-factors+partitioning']:>12} "
            f"({naive_bound / partitioned:,.0f}x smaller)")

    # Shape: at least the paper's small-dataset 7x reduction.
    assert naive_bound / grounded > 7
    assert partitioned <= sizes["dc-factors"]
