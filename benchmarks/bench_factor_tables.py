"""Naive vs engine DC-factor grounding: factor-table construction.

PR 2 pushed Algorithm 1's pair enumeration into the relational engine;
the remaining tuple-at-a-time stage was the per-pair table loop
(``ModelCompiler._ground_factor_for_cells``: two dict copies plus one
``dc.violates`` call per table cell, per pair).  This bench pits that
naive oracle against the batched ``VectorFactorTableBuilder`` path —
code-space predicate evaluation over broadcast candidate grids — on a
≥10k-tuple Hospital workload, asserting along the way that both paths
ground byte-identical factor graphs (tables, variable ids, emission
order, skip counts).

Run as a script (``python benchmarks/bench_factor_tables.py``) or via
pytest.  ``BENCH_TABLE_ROWS`` resizes the workload and
``BENCH_TABLE_MAX_PAIRS`` the per-constraint enumeration cap.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import fmt, publish, publish_json  # noqa: E402

from repro.core.compiler import ModelCompiler  # noqa: E402
from repro.core.config import HoloCleanConfig  # noqa: E402
from repro.core.domain import DomainPruner  # noqa: E402
from repro.data.generators.hospital import generate_hospital  # noqa: E402
from repro.detect.violations import ViolationDetector  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.inference.variables import VariableBlock  # noqa: E402

#: Acceptance floor: the engine-backed table construction must beat the
#: naive per-pair loop by at least this factor (total across both
#: grounding modes, NumPy backend).
MIN_SPEEDUP = 3.0

ROWS = int(os.environ.get("BENCH_TABLE_ROWS", 10_000))
MAX_PAIRS = int(os.environ.get("BENCH_TABLE_MAX_PAIRS", 200_000))

#: The acceptance floor is defined for the 10k-tuple workload; downsized
#: runs (fixed costs dominate) report the speedup without enforcing it.
ENFORCE_FLOOR = ROWS >= 10_000


class _BenchGraph:
    """The minimal grounding sink ``_ground_factors`` writes into."""

    def __init__(self, variables: VariableBlock):
        self.variables = variables
        self.factors = []

    def add_factor(self, factor) -> None:
        self.factors.append(factor)

    def add_factors(self, factors) -> int:
        before = len(self.factors)
        self.factors.extend(factors)
        return len(self.factors) - before


def _variable_block(dataset, query_domains) -> VariableBlock:
    """The query variables exactly as ``ModelCompiler.compile`` adds them."""
    variables = VariableBlock()
    for cell in sorted(query_domains):
        domain = query_domains[cell]
        init = dataset.cell_value(cell)
        init_index = domain.index(init) if init in domain else -1
        variables.add(cell, domain, init_index, is_evidence=False)
    return variables


def _signature(graph) -> list:
    return [(f.constraint_name, f.var_ids, f.table.shape, f.table.tobytes())
            for f in graph.factors]


def _ground(compiler, query_domains) -> tuple[_BenchGraph, int, float]:
    graph = _BenchGraph(_variable_block(compiler.dataset, query_domains))
    started = time.perf_counter()
    skipped, _grounding = compiler._ground_factors(graph, query_domains)
    return graph, skipped, time.perf_counter() - started


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    dataset = generated.dirty
    engine = Engine(dataset)
    detection = ViolationDetector(generated.constraints,
                                  engine=engine).detect(dataset)
    cells = sorted(detection.noisy_cells)
    domains = DomainPruner(dataset, tau=generated.recommended_tau,
                           engine=engine).domains(cells)

    modes = {}
    naive_total = 0.0
    engine_total = 0.0
    for use_partitioning in (False, True):
        label = "partitioned" if use_partitioning else "join"
        config = HoloCleanConfig(use_dc_factors=True,
                                 use_partitioning=use_partitioning,
                                 tau=generated.recommended_tau,
                                 max_factor_pairs=MAX_PAIRS)
        naive = ModelCompiler(dataset, generated.constraints,
                              config.with_(use_engine=False), detection,
                              engine=None)
        vector = ModelCompiler(dataset, generated.constraints, config,
                               detection, engine=engine)
        naive_graph, naive_skipped, t_naive = _ground(naive, domains)
        vector_graph, vector_skipped, t_vector = _ground(vector, domains)
        # The engine path is an optimisation, never a semantic change.
        assert _signature(vector_graph) == _signature(naive_graph), label
        assert vector_skipped == naive_skipped, label
        naive_total += t_naive
        engine_total += t_vector
        modes[label] = {"factors": len(naive_graph.factors),
                        "skipped": naive_skipped,
                        "naive": t_naive, "engine": t_vector}

    speedup = naive_total / engine_total
    report = {
        "rows": dataset.num_tuples,
        "noisy_cells": len(cells),
        "modes": modes,
        "naive_total": naive_total,
        "engine_total": engine_total,
        "speedup": speedup,
    }

    lines = [
        f"Hospital {dataset.num_tuples} tuples · {len(cells)} pruned cells · "
        f"cap {MAX_PAIRS} pairs/DC",
        "",
        f"{'mode':<14} {'factors':>9} {'skipped':>9} {'naive(s)':>9} "
        f"{'engine(s)':>10}",
    ]
    for label, row in modes.items():
        lines.append(
            f"{label:<14} {row['factors']:>9} {row['skipped']:>9} "
            f"{fmt(row['naive'], 9)} {fmt(row['engine'], 10)}")
    lines.append("")
    lines.append(f"total speedup: {speedup:.1f}x "
                 f"(factor graphs byte-identical)")
    publish("factor_tables", "\n".join(lines))
    if ENFORCE_FLOOR:
        publish_json(
            "factor_tables",
            metrics={"speedup_numpy": speedup},
            meta={"rows": dataset.num_tuples,
                  "noisy_cells": len(cells),
                  "max_pairs": MAX_PAIRS,
                  "factors_join": modes["join"]["factors"],
                  "factors_partitioned": modes["partitioned"]["factors"],
                  "naive_total_s": naive_total,
                  "engine_total_s": engine_total})
    else:
        print(f"downsized run ({ROWS} rows): BENCH json not published",
              file=sys.stderr)
    return report


def test_factor_table_speedup():
    report = run_bench()
    if ENFORCE_FLOOR:
        assert report["speedup"] >= MIN_SPEEDUP, (
            f"engine factor-table construction speedup "
            f"{report['speedup']:.1f}x below the {MIN_SPEEDUP}x "
            f"acceptance floor")


if __name__ == "__main__":
    outcome = run_bench()
    print(f"speedup: {outcome['speedup']:.1f}x")
    if ENFORCE_FLOOR and outcome["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup below {MIN_SPEEDUP}x", file=sys.stderr)
        raise SystemExit(1)
