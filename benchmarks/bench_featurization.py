"""Naive vs engine featurization: grounding the unary feature matrix.

With detection, pruning, pair enumeration and factor tables vectorized
(PRs 1-3), the per-(cell, candidate) featurizer loops of Section 4.2 were
the last tuple-at-a-time stage of ``ModelCompiler.compile``.  This bench
pits that naive stack against the set-at-a-time ``VectorFeaturizer``
path — candidate grids from the ``domain_code_index`` CSR, bincount joint
lookups, one entity-key group-by for source votes, and code-space partner
joins for DC features — on a ≥10k-tuple Hospital workload, asserting
along the way that both paths ground byte-identical feature matrices
(key allocation order, row order, per-row entry order and values).

Run as a script (``python benchmarks/bench_featurization.py``) or via
pytest.  ``BENCH_FEAT_ROWS`` resizes the workload.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np
from _common import fmt, publish, publish_json

from repro.core.compiler import ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.core.domain import DomainPruner
from repro.core.featurize import FeaturizationContext
from repro.core.relations import init_value_relation
from repro.data.generators.hospital import generate_hospital
from repro.dataset.stats import Statistics
from repro.detect.violations import ViolationDetector
from repro.engine import Engine
from repro.inference.features import FeatureMatrixBuilder, FeatureSpace

#: Acceptance floor: engine-backed featurization must beat the naive
#: per-cell stack by at least this factor on the 10k-tuple workload.
MIN_SPEEDUP = 4.0

ROWS = int(os.environ.get("BENCH_FEAT_ROWS", 10_000))

#: The acceptance floor is defined for the 10k-tuple workload; downsized
#: runs (fixed costs dominate) report the speedup without enforcing it.
ENFORCE_FLOOR = ROWS >= 10_000


def collect_specs(compiler, pruner):
    """The (cell, domain) variable specs exactly as ``compile`` builds them."""
    repairable = set(compiler.dataset.schema.data_attributes)
    noisy = compiler.detection.noisy_cells
    query_cells = sorted(c for c in noisy if c.attribute in repairable)
    query_domains = pruner.domains(query_cells)
    evidence_cells = compiler._sample_evidence(set(query_domains))
    evidence_domains = pruner.domains(evidence_cells)
    init_values = init_value_relation(
        compiler.dataset,
        engine=compiler.engine,
        cells=[*sorted(query_domains), *sorted(evidence_domains)],
    )
    specs = [(cell, query_domains[cell]) for cell in sorted(query_domains)]
    for cell in sorted(evidence_domains):
        domain = compiler._with_negatives(cell, evidence_domains[cell])
        init = init_values[cell]
        if init is None or init not in domain or len(domain) < 2:
            continue
        specs.append((cell, domain))
    return specs


def featurize(compiler, specs, stats):
    """Ground the unary matrix through ``_featurize_all``.

    Returns (space, matrix, seconds); statistics construction is charged
    to the measured path, as in production.
    """
    context = FeaturizationContext(compiler.dataset, stats, compiler.config)
    space = FeatureSpace()
    builder = FeatureMatrixBuilder(space)
    started = time.perf_counter()
    for _cell, domain in specs:
        builder.start_variable(len(domain))
    compiler._featurize_all(context, specs, builder)
    matrix = builder.build()
    return space, matrix, time.perf_counter() - started


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    dataset = generated.dirty
    config = HoloCleanConfig(tau=generated.recommended_tau)
    engine = Engine(dataset)
    detector = ViolationDetector(generated.constraints, engine=engine)
    detection = detector.detect(dataset)
    pruner = DomainPruner(
        dataset,
        tau=config.tau,
        max_domain=config.max_domain,
        engine=engine,
    )

    constraints = generated.constraints
    naive_config = config.with_(use_engine=False)
    vector_compiler = ModelCompiler(
        dataset,
        constraints,
        config,
        detection,
        engine=engine,
    )
    naive_compiler = ModelCompiler(dataset, constraints, naive_config, detection)
    specs = collect_specs(vector_compiler, pruner)

    naive_stats = Statistics(dataset)
    naive_space, naive_matrix, t_naive = featurize(naive_compiler, specs, naive_stats)
    engine_stats = engine.statistics()
    vector_space, vector_matrix, t_vector = featurize(
        vector_compiler,
        specs,
        engine_stats,
    )

    # The engine path is an optimisation, never a semantic change: the
    # grounded matrix must be byte-identical, allocation order included.
    assert vector_space._keys == naive_space._keys
    for name in ("var_row_start", "row_ptr", "indices", "values"):
        want = getattr(naive_matrix, name)
        assert np.array_equal(getattr(vector_matrix, name), want), name

    speedup = t_naive / t_vector
    report = {
        "rows": dataset.num_tuples,
        "variables": len(specs),
        "feature_rows": int(naive_matrix.num_rows),
        "feature_entries": int(naive_matrix.num_entries),
        "weights": len(naive_space),
        "naive": t_naive,
        "engine": t_vector,
        "speedup": speedup,
    }

    header = (
        f"Hospital {dataset.num_tuples} tuples · {len(specs)} variables · "
        f"{report['feature_rows']} candidate rows"
    )
    naive_row = (
        f"{'naive':<8} {report['feature_entries']:>10} "
        f"{report['weights']:>8} {fmt(t_naive, 9)}"
    )
    engine_row = (
        f"{'engine':<8} {report['feature_entries']:>10} "
        f"{report['weights']:>8} {fmt(t_vector, 9)}"
    )
    lines = [
        header,
        "",
        f"{'path':<8} {'entries':>10} {'weights':>8} {'seconds':>9}",
        naive_row,
        engine_row,
        "",
        f"speedup: {speedup:.1f}x (feature matrices byte-identical)",
    ]
    publish("featurization", "\n".join(lines))
    if ENFORCE_FLOOR:
        publish_json(
            "featurization",
            metrics={"speedup_numpy": speedup},
            meta={
                "rows": dataset.num_tuples,
                "variables": len(specs),
                "feature_rows": report["feature_rows"],
                "feature_entries": report["feature_entries"],
                "naive_s": t_naive,
                "engine_s": t_vector,
            },
        )
    else:
        print(
            f"downsized run ({ROWS} rows): BENCH json not published",
            file=sys.stderr,
        )
    return report


def test_featurization_speedup():
    report = run_bench()
    if ENFORCE_FLOOR:
        assert report["speedup"] >= MIN_SPEEDUP, (
            f"engine featurization speedup {report['speedup']:.1f}x below "
            f"the {MIN_SPEEDUP}x acceptance floor"
        )


if __name__ == "__main__":
    outcome = run_bench()
    print(f"speedup: {outcome['speedup']:.1f}x")
    if ENFORCE_FLOOR and outcome["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup below {MIN_SPEEDUP}x", file=sys.stderr)
        raise SystemExit(1)
