"""Figure 4: effect of the pruning threshold τ on compile/repair runtime.

The paper reports (log-scale) that compilation time is largely flat in τ
while the repair (learning + inference) time *decreases* as τ grows —
fewer candidate repairs mean a smaller grounded model.  Detection time is
unaffected by τ and excluded, as in the paper.  The underlying sweep is
shared with the Figure 3 quality bench.
"""

import pytest

from _common import SWEEP_TAUS, publish, tau_sweep


@pytest.mark.parametrize("name", ["hospital", "flights", "food", "physicians"])
def test_figure4_tau_runtime(name, benchmark):
    points = benchmark.pedantic(tau_sweep, args=(name,), rounds=1,
                                iterations=1)

    lines = [f"{'tau':>5} {'compile (s)':>12} {'repair (s)':>12}"]
    for tau in SWEEP_TAUS:
        _quality, timings = points[tau]
        lines.append(f"{tau:>5} {timings['compile']:>12.2f} "
                     f"{timings['repair']:>12.2f}")
    publish(f"figure4_{name}", "\n".join(lines))

    # Shape: the heaviest repair phase happens at (or near) the loosest
    # threshold, where candidate domains are widest.
    repair_times = [points[tau][1]["repair"] for tau in SWEEP_TAUS]
    assert max(repair_times) == pytest.approx(repair_times[0], rel=1.0), (
        "repair runtime should peak at (or near) the loosest tau")
    assert all(t > 0 for t in repair_times)
