"""Gate benchmark results against the committed baselines.

Compares every entry of ``benchmarks/baselines.json`` with the matching
``benchmarks/results/BENCH_<name>.json`` produced by a benchmark run and
fails (exit 1) when any pinned metric regresses by more than the
tolerance (default 20%).  Baselines pin *ratio* metrics (speedups), which
are stable across machines; absolute wall times live in each result's
``meta`` block and are informational only.

Baseline format::

    {
      "factor_grounding": {
        "metrics": {
          "speedup_numpy": {"value": 5.6, "direction": "higher"}
        }
      }
    }

``direction`` is ``"higher"`` (bigger is better, fail when value drops
below ``baseline * (1 - tolerance)``) or ``"lower"`` (smaller is better,
fail when value rises above ``baseline * (1 + tolerance)``).

A pin may carry ``"min_cpus": N``: it is then checked only when the
result's ``meta.cpus`` reports at least ``N`` cores, and skipped (with a
message, not a failure) otherwise — multi-core speedup pins cannot be
met on an under-provisioned runner.

Stdlib only — runnable in CI before any project dependency is installed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINES = BENCH_DIR / "baselines.json"
DEFAULT_RESULTS = BENCH_DIR / "results"


def compare(value: float, baseline: float, direction: str,
            tolerance: float) -> tuple[bool, str]:
    """Whether ``value`` is acceptable, plus a human-readable verdict."""
    if direction == "higher":
        floor = baseline * (1.0 - tolerance)
        ok = value >= floor
        detail = f"{value:.3g} vs baseline {baseline:.3g} (floor {floor:.3g})"
    elif direction == "lower":
        ceiling = baseline * (1.0 + tolerance)
        ok = value <= ceiling
        detail = (f"{value:.3g} vs baseline {baseline:.3g} "
                  f"(ceiling {ceiling:.3g})")
    else:
        return False, f"unknown direction {direction!r}"
    return ok, detail


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when BENCH_*.json results regress vs baselines")
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES)
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                        help="directory holding BENCH_<name>.json files")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression (default 0.20)")
    args = parser.parse_args(argv)

    try:
        baselines = json.loads(args.baselines.read_text())
    except OSError as exc:
        print(f"error: cannot read baselines: {exc}", file=sys.stderr)
        return 2

    failures = 0
    checked = 0
    for name, spec in sorted(baselines.items()):
        result_path = args.results / f"BENCH_{name}.json"
        try:
            result = json.loads(result_path.read_text())
        except OSError:
            print(f"FAIL {name}: missing result file {result_path}")
            failures += 1
            continue
        metrics = result.get("metrics", {})
        meta = result.get("meta", {})
        for metric, pin in sorted(spec.get("metrics", {}).items()):
            min_cpus = pin.get("min_cpus")
            if min_cpus is not None:
                cpus = meta.get("cpus")
                if cpus is None or int(cpus) < int(min_cpus):
                    print(f"skip {name}.{metric}: needs >= {min_cpus} CPUs, "
                          f"result ran on {cpus if cpus else 'unknown'}")
                    continue
            checked += 1
            if metric not in metrics:
                print(f"FAIL {name}.{metric}: not in {result_path.name}")
                failures += 1
                continue
            ok, detail = compare(float(metrics[metric]), float(pin["value"]),
                                 pin.get("direction", "higher"),
                                 args.tolerance)
            status = "ok  " if ok else "FAIL"
            print(f"{status} {name}.{metric}: {detail}")
            if not ok:
                failures += 1

    if failures:
        print(f"\n{failures} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print(f"\nall {checked} pinned metric(s) within "
          f"{args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
