"""Table 1: signal capabilities of HoloClean vs the baselines.

The paper's Table 1 is a qualitative matrix — which repair signals each
system consumes.  We regenerate it *from the code*: each method class is
inspected for the signal machinery it actually wires in, so the table
stays honest as the implementation evolves.
"""

import inspect

from _common import publish

from repro.baselines.holistic import HolisticRepair
from repro.baselines.katara import KataraRepair
from repro.baselines.scare import ScareRepair
from repro.core.pipeline import HoloClean


def signal_matrix() -> dict[str, dict[str, bool]]:
    """system → {integrity constraints, external data, statistics}."""

    def uses(cls, *needles) -> bool:
        source = inspect.getsource(inspect.getmodule(cls))
        return any(n in source for n in needles)

    return {
        "Holistic": {
            "integrity_constraints": uses(HolisticRepair, "DenialConstraint"),
            "external_data": False,
            "statistical_profiles": False,
        },
        "KATARA": {
            "integrity_constraints": False,
            "external_data": uses(KataraRepair, "ExternalDictionary",
                                  "MatchingDependency"),
            "statistical_profiles": False,
        },
        "SCARE": {
            "integrity_constraints": False,
            "external_data": False,
            "statistical_profiles": uses(ScareRepair, "Statistics"),
        },
        "HoloClean": {
            "integrity_constraints": uses(HoloClean, "constraints"),
            "external_data": uses(HoloClean, "dictionaries"),
            "statistical_profiles": True,  # CooccurFeaturizer et al.
        },
    }


def test_table1_capability_matrix(benchmark):
    matrix = benchmark(signal_matrix)

    lines = [f"{'System':<10} {'Integrity':>10} {'External':>10} {'Stats':>10}"]
    for system, caps in matrix.items():
        lines.append(
            f"{system:<10} "
            f"{'X' if caps['integrity_constraints'] else '-':>10} "
            f"{'X' if caps['external_data'] else '-':>10} "
            f"{'X' if caps['statistical_profiles'] else '-':>10}")
    publish("table1_capabilities", "\n".join(lines))

    # The paper's matrix: only HoloClean checks every column.
    assert all(matrix["HoloClean"].values())
    for baseline in ("Holistic", "KATARA", "SCARE"):
        assert sum(matrix[baseline].values()) == 1
