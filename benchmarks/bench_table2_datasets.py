"""Table 2: parameters of the evaluation datasets.

Paper values: Hospital 1,000×19 (6,604 violations, 6,140 noisy cells,
9 ICs); Flights 2,377×6 (84,413 / 11,180, 4 ICs); Food 339,908×17
(39,322 / 41,254, 7 ICs); Physicians 2,071,849×18 (5,427,322 / 174,557,
9 ICs).  Hospital and Flights are regenerated at paper size; Food and
Physicians at bench scale (see ``REPRO_SCALE``).
"""

import pytest

from _common import BENCH_SIZES, dataset, publish

PAPER = {
    "hospital": (1000, 19, 9),
    "flights": (2377, 6, 4),
    "food": (339908, 17, 7),
    "physicians": (2071849, 18, 9),
}


@pytest.mark.parametrize("name", sorted(BENCH_SIZES))
def test_table2_dataset_parameters(name, benchmark):
    generated = dataset(name)
    row = benchmark.pedantic(generated.table2_row, rounds=1, iterations=1)

    text = (f"{'Parameter':<12} {'measured':>10} {'paper':>10}\n"
            f"{'Tuples':<12} {row['tuples']:>10} {PAPER[name][0]:>10}\n"
            f"{'Attributes':<12} {row['attributes']:>10} {PAPER[name][1]:>10}\n"
            f"{'Violations':<12} {row['violations']:>10} {'—':>10}\n"
            f"{'Noisy cells':<12} {row['noisy_cells']:>10} {'—':>10}\n"
            f"{'ICs':<12} {row['ics']:>10} {PAPER[name][2]:>10}")
    publish(f"table2_{name}", text)

    assert row["attributes"] == PAPER[name][1]
    assert row["ics"] == PAPER[name][2]
    assert row["violations"] > 0
    assert 0 < row["noisy_cells"] <= row["tuples"] * row["attributes"]
