"""Serving benchmark: cold vs warm repair latency over the HTTP API.

The serving subsystem (:mod:`repro.serve`) exists for one number: how
much of a repair's cost the warm session store amortizes away.  This
bench stands up a real :class:`~repro.serve.server.RepairServer` on an
ephemeral port and measures client-side wall time per ``POST /repair``:

* **cold** — the session (and its checkpoint) is purged via
  ``DELETE /sessions/{sid}?checkpoint=0`` before each request, so every
  repair pays detect + compile + learn + infer + apply.
* **warm** — the same request replayed against the resident session;
  detect/compile skip, only the learning half runs.

Two in-run assertions gate the results before anything is published:
the warm p50 speedup must be at least :data:`REQUIRED_SPEEDUP` (the
serving pledge, pinned in ``baselines.json``), and a session evicted to
its checkpoint must rehydrate with byte-identical marginals.

Baselines pin ``warm_speedup`` (a ratio, stable across machines); the
absolute p50/p99 latencies land in ``metrics`` for trend-watching and
in the text report.  ``BENCH_SERVING_ROWS`` resizes the Hospital
workload (default 1,000); ``BENCH_SERVING_COLD`` / ``BENCH_SERVING_WARM``
set the per-phase request counts (defaults 3 / 15);
``BENCH_SERVING_EPOCHS`` the per-request learning budget (default 10).
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import fmt, publish, publish_json

from repro.constraints.parser import format_dc
from repro.core.config import HoloCleanConfig
from repro.data.generators.hospital import generate_hospital
from repro.serve.server import RepairServer
from repro.serve.service import RepairService

ROWS = int(os.environ.get("BENCH_SERVING_ROWS", 1_000))
COLD_REQUESTS = int(os.environ.get("BENCH_SERVING_COLD", 3))
WARM_REQUESTS = int(os.environ.get("BENCH_SERVING_WARM", 15))
EPOCHS = int(os.environ.get("BENCH_SERVING_EPOCHS", 10))

#: The serving pledge: a warm repair at least this many times faster
#: than a cold one at p50.  Asserted in-run and pinned in baselines.
REQUIRED_SPEEDUP = 5.0


async def _request(port: int, method: str, path: str, body=None):
    """Minimal HTTP/1.1 exchange; returns (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: bench\r\nContent-Length: {len(payload)}\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()
        response = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body_bytes = response.partition(b"\r\n\r\n")
    status = int(head.decode().split("\r\n")[0].split(" ")[1])
    return status, json.loads(body_bytes)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def _payload(generated) -> dict:
    dirty = generated.dirty
    return {
        "dataset": {
            "name": dirty.name,
            "columns": list(dirty.schema.names),
            "rows": [list(dirty.row_ref(t)) for t in range(dirty.num_tuples)],
        },
        "constraints": [format_dc(dc) for dc in generated.constraints],
        # A fixed, modest learning budget: the bench contrasts the
        # grounding cost (cold) with the re-entry cost (warm), so the
        # epoch count only needs to be deterministic, not accurate.
        "config": {"tau": 0.5, "seed": 7, "epochs": EPOCHS},
    }


async def _drive(server: RepairServer, payload: dict) -> dict:
    """The whole measurement scenario against one live server."""
    loop = asyncio.get_running_loop()

    async def timed_repair() -> tuple[float, dict]:
        started = loop.time()
        status, body = await _request(server.port, "POST", "/repair", payload)
        assert status == 200, f"repair failed: {body}"
        return loop.time() - started, body

    # -- cold: purge session + checkpoint between requests ------------
    cold_times, sid, repairs = [], None, None
    for _ in range(COLD_REQUESTS):
        elapsed, body = await timed_repair()
        assert body["path"] == "cold", f"expected cold, got {body['path']}"
        cold_times.append(elapsed)
        sid, repairs = body["session"], body["repairs"]
        await _request(server.port, "DELETE", f"/sessions/{sid}?checkpoint=0")

    # -- warm: one priming request, then the measured replays ---------
    _, primed = await timed_repair()
    assert primed["path"] == "cold"
    warm_times = []
    for _ in range(WARM_REQUESTS):
        elapsed, body = await timed_repair()
        assert body["path"] == "warm", f"expected warm, got {body['path']}"
        assert body["repairs"] == repairs, "warm run changed the repairs"
        warm_times.append(elapsed)

    # -- rehydration: evict to checkpoint, must come back identical ---
    _, before = await _request(server.port, "GET", f"/sessions/{sid}/marginals")
    status, _ = await _request(server.port, "DELETE", f"/sessions/{sid}")
    assert status == 200
    rehydrate_started = loop.time()
    _, body = await _request(server.port, "POST", "/repair", payload)
    rehydrated_s = loop.time() - rehydrate_started
    assert body["path"] == "rehydrated", f"expected rehydrated, got {body['path']}"
    _, after = await _request(server.port, "GET", f"/sessions/{sid}/marginals")
    assert after["cells"] == before["cells"], (
        "rehydrated session's marginals differ from the evicted session's")

    _, health = await _request(server.port, "GET", "/healthz")
    return {
        "cold_times": cold_times,
        "warm_times": warm_times,
        "rehydrated_s": rehydrated_s,
        "noisy_cells": len(before["cells"]),
        "repairs": len(repairs),
        "sessions": health["sessions"],
    }


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    payload = _payload(generated)

    async def scenario() -> dict:
        with tempfile.TemporaryDirectory(prefix="bench-serving-") as ckpt:
            service = RepairService(
                HoloCleanConfig(serve_workers=0, serve_checkpoint_dir=ckpt)
            )
            server = RepairServer(service, port=0)
            await server.start()
            try:
                return await _drive(server, payload)
            finally:
                await server.stop()

    outcome = asyncio.run(scenario())

    cold_p50 = _percentile(outcome["cold_times"], 0.50)
    cold_p99 = _percentile(outcome["cold_times"], 0.99)
    warm_p50 = _percentile(outcome["warm_times"], 0.50)
    warm_p99 = _percentile(outcome["warm_times"], 0.99)
    speedup = cold_p50 / max(warm_p50, 1e-9)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm speedup {speedup:.1f}x below the {REQUIRED_SPEEDUP:.0f}x pledge "
        f"(cold p50 {cold_p50:.3f}s, warm p50 {warm_p50:.3f}s)")

    metrics = {
        "warm_speedup": speedup,
        "cold_p50_s": cold_p50,
        "cold_p99_s": cold_p99,
        "warm_p50_s": warm_p50,
        "warm_p99_s": warm_p99,
        "rehydrated_s": outcome["rehydrated_s"],
    }
    meta = {
        "rows": generated.dirty.num_tuples,
        "noisy_cells": outcome["noisy_cells"],
        "repairs": outcome["repairs"],
        "cold_requests": COLD_REQUESTS,
        "warm_requests": WARM_REQUESTS,
        "epochs": EPOCHS,
        "required_speedup": REQUIRED_SPEEDUP,
        "workers": 0,  # inline execution: the measured cost is the plan's
    }

    lines = [
        f"Hospital {meta['rows']} tuples · {outcome['noisy_cells']} noisy "
        f"cells · {outcome['repairs']} repairs per request",
        "",
        f"{'path':<12} {'n':>3} {'p50 s':>9} {'p99 s':>9}",
        f"{'cold':<12} {COLD_REQUESTS:>3} {fmt(cold_p50, 9)} {fmt(cold_p99, 9)}",
        f"{'warm':<12} {WARM_REQUESTS:>3} {fmt(warm_p50, 9)} {fmt(warm_p99, 9)}",
        f"{'rehydrated':<12} {1:>3} {fmt(outcome['rehydrated_s'], 9)}",
        "",
        f"warm speedup: {speedup:.1f}x (pledge: >= {REQUIRED_SPEEDUP:.0f}x) · "
        f"rehydrated marginals byte-identical",
    ]
    publish("serving", "\n".join(lines))
    publish_json("serving", metrics=metrics, meta=meta)
    return metrics


def test_serving_warm_speedup():
    metrics = run_bench()
    assert metrics["warm_speedup"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    result = run_bench()
    print(
        f"cold p50 {result['cold_p50_s']:.3f}s · warm p50 "
        f"{result['warm_p50_s']:.3f}s · speedup {result['warm_speedup']:.1f}x"
    )
