"""Table 4: end-to-end runtimes of every method on every dataset.

Paper values: Hospital — HoloClean 147.97 s, Holistic 5.67 s, KATARA
2.01 s, SCARE 24.67 s; Flights — 70.6 / 80.4 / n/a / 13.97 s; Food —
32.8 min / 7.6 min / 1.7 min / DNF; Physicians — 6.5 h / 2.03 h /
15.5 min / DNF.  Absolute numbers differ on our substrate; the *ordering*
to preserve: KATARA fastest, Holistic fast, HoloClean slower than the
constraint-only baseline but tractable, SCARE DNF on the large datasets.
"""

import pytest

from _common import baseline_run, dataset, holoclean_run, publish

METHODS = ("HoloClean", "Holistic", "KATARA", "SCARE")


@pytest.mark.parametrize("name", ["hospital", "flights", "food", "physicians"])
def test_table4_runtimes(name, benchmark):
    dataset(name)  # warm the per-process dataset cache outside the timed region

    def collect():
        rows = {}
        hc_run, _ = holoclean_run(name)
        rows["HoloClean"] = (hc_run.runtime, False, hc_run.timings)
        for method in ("Holistic", "KATARA", "SCARE"):
            run = baseline_run(name, method)
            applicable = run.quality is not None or run.timed_out
            rows[method] = (run.runtime if applicable else None,
                            run.timed_out, {})
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = [f"{'Method':<10} {'runtime':>12}  phases"]
    for method in METHODS:
        runtime, timed_out, phases = rows[method]
        if timed_out:
            cell = "DNF"
        elif runtime is None:
            cell = "n/a"
        else:
            cell = f"{runtime:10.2f}s"
        detail = " ".join(f"{k}={v:.2f}s" for k, v in phases.items())
        lines.append(f"{method:<10} {cell:>12}  {detail}")
    publish(f"table4_{name}", "\n".join(lines))

    # Shape: KATARA (when applicable) is the fastest method.
    katara_runtime = rows["KATARA"][0]
    if katara_runtime is not None and not rows["KATARA"][1]:
        assert katara_runtime <= rows["HoloClean"][0]
    assert rows["HoloClean"][0] > 0
