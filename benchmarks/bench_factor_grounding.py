"""Naive vs engine DC-factor grounding: pair enumeration (Algorithm 1).

PR 1 vectorized violation detection and domain pruning; the remaining
grounding hot path is the ``Tuple(t1), Tuple(t2)`` self-join that
enumerates the tuple pairs DC factors are grounded over.  This bench
pits the tuple-at-a-time ``PairEnumerator`` against the engine-backed
``VectorPairEnumerator`` on a ≥10k-tuple Hospital workload, in both the
join-only mode and the Algorithm 3 partitioned mode, asserting the pair
streams are byte-identical (same pairs, same order) along the way.

Run as a script (``python benchmarks/bench_factor_grounding.py``) or via
pytest.  ``BENCH_FACTOR_ROWS`` resizes the workload and
``BENCH_FACTOR_MAX_PAIRS`` the per-constraint enumeration cap.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import fmt, publish, publish_json  # noqa: E402

from repro.core.domain import DomainPruner  # noqa: E402
from repro.core.partition import PairEnumerator, VectorPairEnumerator  # noqa: E402
from repro.data.generators.hospital import generate_hospital  # noqa: E402
from repro.detect.violations import ViolationDetector  # noqa: E402
from repro.engine import Engine  # noqa: E402

#: Acceptance floor: engine enumeration must beat the naive enumerator by
#: at least this factor (total across both grounding modes, NumPy backend).
MIN_SPEEDUP = 4.0

ROWS = int(os.environ.get("BENCH_FACTOR_ROWS", 10_000))
MAX_PAIRS = int(os.environ.get("BENCH_FACTOR_MAX_PAIRS", 1_000_000))

#: The acceptance floor is defined for the 10k-tuple workload; downsized
#: runs (fixed costs dominate) report the speedup without enforcing it.
ENFORCE_FLOOR = ROWS >= 10_000


def _consume_naive(dataset, domains, dcs, hypergraph, use_partitioning):
    enumerator = PairEnumerator(dataset, domains, max_pairs=MAX_PAIRS)
    count = 0
    started = time.perf_counter()
    for dc in dcs:
        for _ in enumerator.pairs_for(dc, use_partitioning, hypergraph):
            count += 1
    return count, time.perf_counter() - started


def _consume_vector(engine, dataset, domains, dcs, hypergraph,
                    use_partitioning):
    enumerator = VectorPairEnumerator(engine, dataset, domains,
                                      max_pairs=MAX_PAIRS)
    count = 0
    started = time.perf_counter()
    for dc in dcs:
        for left, _right in enumerator.pair_chunks(
                dc, use_partitioning=use_partitioning, hypergraph=hypergraph):
            count += len(left)
    return count, time.perf_counter() - started


def _assert_identical_streams(engine, dataset, domains, dcs, hypergraph):
    """The engine is an optimisation, never a semantic change."""
    naive = PairEnumerator(dataset, domains, max_pairs=MAX_PAIRS)
    vector = VectorPairEnumerator(engine, dataset, domains,
                                  max_pairs=MAX_PAIRS)
    for dc in dcs[:2]:  # full streams on a subset keep the check affordable
        for use_partitioning in (False, True):
            expected = list(naive.pairs_for(dc, use_partitioning, hypergraph))
            actual = list(vector.pairs_for(dc, use_partitioning, hypergraph))
            assert actual == expected, (dc.name, use_partitioning)


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    dataset = generated.dirty
    engine = Engine(dataset)
    detection = ViolationDetector(generated.constraints,
                                  engine=engine).detect(dataset)
    cells = sorted(detection.noisy_cells)
    domains = DomainPruner(dataset, tau=generated.recommended_tau,
                           engine=engine).domains(cells)
    dcs = [dc for dc in generated.constraints if not dc.is_single_tuple]
    hypergraph = detection.hypergraph

    _assert_identical_streams(engine, dataset, domains, dcs, hypergraph)

    modes = {}
    naive_total = 0.0
    engine_totals = {"numpy": 0.0, "sqlite": 0.0}
    for use_partitioning in (False, True):
        label = "partitioned" if use_partitioning else "join"
        pairs, t_naive = _consume_naive(dataset, domains, dcs, hypergraph,
                                        use_partitioning)
        naive_total += t_naive
        per_backend = {}
        for backend in ("numpy", "sqlite"):
            backend_engine = Engine(dataset, backend=backend)
            vec_pairs, t_vec = _consume_vector(backend_engine, dataset,
                                               domains, dcs, hypergraph,
                                               use_partitioning)
            assert vec_pairs == pairs, (label, backend, pairs, vec_pairs)
            per_backend[backend] = t_vec
            engine_totals[backend] += t_vec
        modes[label] = {"pairs": pairs, "naive": t_naive, **per_backend}

    speedups = {backend: naive_total / total
                for backend, total in engine_totals.items()}
    report = {
        "rows": dataset.num_tuples,
        "noisy_cells": len(cells),
        "modes": modes,
        "naive_total": naive_total,
        "engine_totals": engine_totals,
        "speedups": speedups,
    }

    lines = [
        f"Hospital {dataset.num_tuples} tuples · {len(dcs)} two-tuple DCs · "
        f"{len(cells)} pruned cells · cap {MAX_PAIRS} pairs/DC",
        "",
        f"{'mode':<14} {'pairs':>9} {'naive(s)':>9} {'numpy(s)':>9} "
        f"{'sqlite(s)':>10}",
    ]
    for label, row in modes.items():
        lines.append(
            f"{label:<14} {row['pairs']:>9} {fmt(row['naive'], 9)} "
            f"{fmt(row['numpy'], 9)} {fmt(row['sqlite'], 10)}")
    lines.append("")
    lines.append("total speedup: " + ", ".join(
        f"{backend}={ratio:.1f}x" for backend, ratio in speedups.items()))
    publish("factor_grounding", "\n".join(lines))
    if ENFORCE_FLOOR:
        # Downsized smoke runs would overwrite the gated result with
        # numbers the committed baselines cannot be compared against.
        publish_json(
            "factor_grounding",
            metrics={"speedup_numpy": speedups["numpy"],
                     "speedup_sqlite": speedups["sqlite"]},
            meta={"rows": dataset.num_tuples,
                  "noisy_cells": len(cells),
                  "max_pairs": MAX_PAIRS,
                  "pairs_join": modes["join"]["pairs"],
                  "pairs_partitioned": modes["partitioned"]["pairs"],
                  "naive_total_s": naive_total,
                  "numpy_total_s": engine_totals["numpy"],
                  "sqlite_total_s": engine_totals["sqlite"]})
    else:
        print(f"downsized run ({ROWS} rows): BENCH json not published",
              file=sys.stderr)
    return report


def test_factor_grounding_speedup():
    report = run_bench()
    if ENFORCE_FLOOR:
        assert report["speedups"]["numpy"] >= MIN_SPEEDUP, (
            f"engine pair enumeration speedup "
            f"{report['speedups']['numpy']:.1f}x below the "
            f"{MIN_SPEEDUP}x acceptance floor")


if __name__ == "__main__":
    outcome = run_bench()
    print("speedups: " + ", ".join(
        f"{k}={v:.1f}x" for k, v in outcome["speedups"].items()))
    if ENFORCE_FLOOR and outcome["speedups"]["numpy"] < MIN_SPEEDUP:
        print(f"FAIL: numpy speedup below {MIN_SPEEDUP}x", file=sys.stderr)
        raise SystemExit(1)
