"""End-to-end pipeline benchmark: 10k-row Hospital through the default plan.

The other performance benches time individual subsystems; this one runs
the whole staged pipeline (Detect → Compile → Learn → Infer → Apply) and
publishes what the telemetry subsystem (:mod:`repro.obs`) records along
the way: per-stage wall time and peak Python-heap memory, straight from
the run's trace spans.  It doubles as the end-to-end check that coarse
tracing covers every stage — the run report's trace tree must contain
exactly the five stage spans.

Baselines pin ``stages_traced`` (a count, stable across machines); the
wall times and memory peaks land in ``meta`` as informational context.
Run as a script (``python benchmarks/bench_pipeline.py``) or via pytest.
``BENCH_PIPELINE_ROWS`` resizes the workload (default 10,000).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import fmt, publish, publish_json

from repro.core.config import HoloCleanConfig
from repro.core.stages import STAGE_ORDER, RepairContext, RepairPlan
from repro.data.generators.hospital import generate_hospital

ROWS = int(os.environ.get("BENCH_PIPELINE_ROWS", 10_000))


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    config = HoloCleanConfig(tau=0.5, trace_level="stage", trace_memory=True)
    ctx = RepairContext(dataset=generated.dirty,
                        constraints=generated.constraints, config=config)
    ctx = RepairPlan.default().run(ctx)
    result = ctx.result
    report = result.report
    assert report is not None, "pipeline run attached no RunReport"

    spans = {span.name: span for span in report.trace_spans()}
    traced = report.stage_names_traced()
    assert traced == list(STAGE_ORDER), (
        f"trace tree covers {traced}, expected all of {STAGE_ORDER}")

    metrics: dict = {"stages_traced": len(traced)}
    for name in STAGE_ORDER:
        metrics[f"{name}_s"] = spans[name].duration
    metrics["total_s"] = sum(spans[name].duration for name in STAGE_ORDER)

    mem_mb = {
        name: (spans[name].py_mem_peak or 0) / 1e6 for name in STAGE_ORDER
    }
    lines = [
        f"Hospital {generated.dirty.num_tuples} tuples · "
        f"{len(result.inferences)} noisy cells · "
        f"{result.num_repairs} repairs · config {report.fingerprint}",
        "",
        f"{'stage':<8} {'seconds':>9} {'peak MB':>9}",
    ]
    for name in STAGE_ORDER:
        lines.append(f"{name:<8} {fmt(spans[name].duration, 9)} "
                     f"{fmt(mem_mb[name], 9)}")
    lines.append(f"{'total':<8} {fmt(metrics['total_s'], 9)}")
    publish("pipeline", "\n".join(lines))

    publish_json(
        "pipeline",
        metrics=metrics,
        meta={
            "rows": generated.dirty.num_tuples,
            "attributes": len(generated.dirty.schema.names),
            "noisy_cells": len(result.inferences),
            "repairs": result.num_repairs,
            "config_fingerprint": report.fingerprint,
            "stage_mem_peak_mb": mem_mb,
            "rss_peak_kb": max(
                (spans[name].rss_peak_kb or 0) for name in STAGE_ORDER),
            "phase_timings": report.phase_timings,
        },
    )
    if ctx.tracer is not None:
        ctx.tracer.shutdown()
    return metrics


def test_pipeline_traces_all_stages():
    metrics = run_bench()
    assert metrics["stages_traced"] == len(STAGE_ORDER)


if __name__ == "__main__":
    outcome = run_bench()
    print(f"stages traced: {outcome['stages_traced']}/{len(STAGE_ORDER)} · "
          f"total {outcome['total_s']:.2f}s")
    if outcome["stages_traced"] != len(STAGE_ORDER):
        print("FAIL: trace tree does not cover all five stages",
              file=sys.stderr)
        raise SystemExit(1)
