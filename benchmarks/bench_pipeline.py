"""End-to-end pipeline benchmark: 10k-row Hospital through the default plan.

The other performance benches time individual subsystems; this one runs
the whole staged pipeline (Detect → Compile → Learn → Infer → Apply) and
publishes what the telemetry subsystem (:mod:`repro.obs`) records along
the way: per-stage wall time and peak Python-heap memory, straight from
the run's trace spans.  It doubles as the end-to-end check that coarse
tracing covers every stage — the run report's trace tree must contain
exactly the five stage spans.

On multi-core runners a second run repeats the pipeline with
``parallel_workers`` on, asserts its repairs are byte-identical to the
serial run, and publishes the compile-stage speedup
(``compile_parallel_speedup``, pinned in baselines for >= 4 cores via
``min_cpus``).

Baselines pin ``stages_traced`` (a count, stable across machines); the
wall times and memory peaks land in ``meta`` as informational context.
Run as a script (``python benchmarks/bench_pipeline.py``) or via pytest.
``BENCH_PIPELINE_ROWS`` resizes the workload (default 10,000);
``BENCH_PIPELINE_WORKERS`` overrides the parallel variant's worker count
(default ``min(4, cpu_count)``; below 2 the variant is skipped).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import fmt, publish, publish_json

from repro.core.config import HoloCleanConfig
from repro.core.stages import STAGE_ORDER, RepairContext, RepairPlan
from repro.data.generators.hospital import generate_hospital

ROWS = int(os.environ.get("BENCH_PIPELINE_ROWS", 10_000))
WORKERS = (int(os.environ.get("BENCH_PIPELINE_WORKERS", 0))
           or min(4, os.cpu_count() or 1))


def _run_plan(generated, workers: int = 0) -> dict:
    """One full pipeline run; returns spans, result, and a repair snapshot."""
    config = HoloCleanConfig(tau=0.5, trace_level="stage",
                             trace_memory=True, parallel_workers=workers)
    ctx = RepairContext(dataset=generated.dirty.copy(name="hospital"),
                        constraints=list(generated.constraints),
                        config=config)
    ctx = RepairPlan.default().run(ctx)
    result = ctx.result
    report = result.report
    assert report is not None, "pipeline run attached no RunReport"

    spans = {span.name: span for span in report.trace_spans()}
    traced = report.stage_names_traced()
    assert traced == list(STAGE_ORDER), (
        f"trace tree covers {traced}, expected all of {STAGE_ORDER}")
    # Everything inference produced, for the serial-vs-parallel
    # byte-equality assertion: chosen values, domains, marginals, rows.
    snapshot = (
        [(cell, inf.chosen_value, tuple(inf.domain), inf.marginal.tobytes())
         for cell, inf in result.inferences.items()],
        result.repaired._rows,
    )
    if ctx.engine is not None:
        ctx.engine.close()
    if ctx.tracer is not None:
        ctx.tracer.shutdown()
    return {"result": result, "report": report, "spans": spans,
            "snapshot": snapshot}


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    serial = _run_plan(generated)
    result, report, spans = (serial["result"], serial["report"],
                             serial["spans"])

    metrics: dict = {"stages_traced": len(STAGE_ORDER)}
    for name in STAGE_ORDER:
        metrics[f"{name}_s"] = spans[name].duration
    metrics["total_s"] = sum(spans[name].duration for name in STAGE_ORDER)

    mem_mb = {
        name: (spans[name].py_mem_peak or 0) / 1e6 for name in STAGE_ORDER
    }
    lines = [
        f"Hospital {generated.dirty.num_tuples} tuples · "
        f"{len(result.inferences)} noisy cells · "
        f"{result.num_repairs} repairs · config {report.fingerprint}",
        "",
        f"{'stage':<8} {'seconds':>9} {'peak MB':>9}",
    ]
    for name in STAGE_ORDER:
        lines.append(f"{name:<8} {fmt(spans[name].duration, 9)} "
                     f"{fmt(mem_mb[name], 9)}")
    lines.append(f"{'total':<8} {fmt(metrics['total_s'], 9)}")

    cpus = os.cpu_count() or 1
    meta = {
        "rows": generated.dirty.num_tuples,
        "attributes": len(generated.dirty.schema.names),
        "noisy_cells": len(result.inferences),
        "repairs": result.num_repairs,
        "config_fingerprint": report.fingerprint,
        "stage_mem_peak_mb": mem_mb,
        "rss_peak_kb": max(
            (spans[name].rss_peak_kb or 0) for name in STAGE_ORDER),
        "phase_timings": report.phase_timings,
        "cpus": cpus,
    }

    if WORKERS >= 2:
        parallel = _run_plan(generated, workers=WORKERS)
        # Sharded grounding is an optimisation, never a semantic change:
        # the parallel run must reproduce the serial repairs byte for
        # byte before its timing counts for anything.
        assert parallel["snapshot"] == serial["snapshot"], (
            f"parallel_workers={WORKERS} changed pipeline output")
        compile_parallel_s = parallel["spans"]["compile"].duration
        speedup = spans["compile"].duration / max(compile_parallel_s, 1e-9)
        metrics["compile_parallel_speedup"] = speedup
        meta["parallel_workers"] = WORKERS
        meta["compile_parallel_s"] = compile_parallel_s
        lines.extend([
            "",
            f"compile with parallel_workers={WORKERS}: "
            f"{fmt(compile_parallel_s, 0)}s "
            f"({speedup:.2f}x, output byte-identical)",
        ])
    else:
        lines.extend([
            "",
            f"parallel variant skipped ({cpus} CPU(s); "
            f"set BENCH_PIPELINE_WORKERS to force)",
        ])
    publish("pipeline", "\n".join(lines))

    publish_json("pipeline", metrics=metrics, meta=meta)
    return metrics


def test_pipeline_traces_all_stages():
    metrics = run_bench()
    assert metrics["stages_traced"] == len(STAGE_ORDER)


if __name__ == "__main__":
    outcome = run_bench()
    print(f"stages traced: {outcome['stages_traced']}/{len(STAGE_ORDER)} · "
          f"total {outcome['total_s']:.2f}s")
    if "compile_parallel_speedup" in outcome:
        print(f"compile speedup at {WORKERS} workers: "
              f"{outcome['compile_parallel_speedup']:.2f}x")
    if outcome["stages_traced"] != len(STAGE_ORDER):
        print("FAIL: trace tree does not cover all five stages",
              file=sys.stderr)
        raise SystemExit(1)
