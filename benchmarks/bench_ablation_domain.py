"""§5.1.1 ablation: Algorithm 2 pruning vs the active-domain baseline.

The paper motivates domain pruning with the observation that letting
erroneous cells "obtain any value from the set of consistent assignments
present in the dataset" makes inference intractable even on the smallest
dataset.  This bench compares the grounded model size and pipeline
runtime of Algorithm 2 against the unpruned active-domain strategy on
Hospital (with the active domain capped so the run finishes at all —
the paper's version ran for over a day without finishing).
"""

from _common import publish

from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.data import generate_hospital
from repro.detect.violations import ViolationDetector
from repro.eval.metrics import evaluate_repairs


def test_domain_pruning_vs_active_domain(benchmark):
    # A small Hospital instance: the point of this ablation is the size
    # ratio, and the unpruned strategy is exactly the configuration the
    # paper could not run to completion at full size.
    generated = generate_hospital(num_rows=250)
    detection = ViolationDetector(generated.constraints).detect(generated.dirty)

    def compare():
        outcomes = {}
        for strategy, max_domain in (("cooccurrence", 24), ("active", 32)):
            config = HoloCleanConfig(tau=0.5, seed=1,
                                     domain_strategy=strategy,
                                     max_domain=max_domain)
            result = HoloClean(config).repair(
                generated.dirty, generated.constraints, detection=detection)
            quality = evaluate_repairs(generated.dirty, result.repaired,
                                       generated.clean,
                                       error_cells=generated.error_cells)
            outcomes[strategy] = {
                "rows": result.size_report["feature_entries"],
                "runtime": result.timings["compile"] + result.timings["repair"],
                "f1": quality.f1,
            }
        return outcomes

    outcomes = benchmark.pedantic(compare, rounds=1, iterations=1)
    pruned, active = outcomes["cooccurrence"], outcomes["active"]
    publish("ablation_domain_strategy",
            f"{'strategy':<14} {'feat. entries':>14} {'runtime(s)':>11} "
            f"{'F1':>7}\n"
            f"{'Algorithm 2':<14} {pruned['rows']:>14} "
            f"{pruned['runtime']:>11.2f} {pruned['f1']:>7.3f}\n"
            f"{'active domain':<14} {active['rows']:>14} "
            f"{active['runtime']:>11.2f} {active['f1']:>7.3f}")

    # Shape: pruning shrinks the grounded model substantially without
    # giving up repair quality.
    assert pruned["rows"] < active["rows"]
    assert pruned["f1"] >= active["f1"] - 0.05
