"""§5.1.2 ablation: tuple partitioning for DC-factor grounding.

The paper reports that partitioning yields up to 2× speed-ups with an
F1 decrease of at most 6% (0.5% on average).  This bench compares the
factor-model variants with and without Algorithm 3 on Food.
"""

from _common import publish

from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.data import generate_food
from repro.detect.violations import ViolationDetector
from repro.eval.metrics import evaluate_repairs


def test_partitioning_speedup_and_quality(benchmark):
    generated = generate_food(num_rows=600)
    detection = ViolationDetector(generated.constraints).detect(generated.dirty)

    def compare():
        outcomes = {}
        for variant in ("dc-factors", "dc-factors+partitioning"):
            config = HoloCleanConfig.variant(
                variant, tau=0.3, seed=1, gibbs_burn_in=5, gibbs_sweeps=20)
            result = HoloClean(config).repair(
                generated.dirty, generated.constraints, detection=detection)
            quality = evaluate_repairs(
                generated.dirty, result.repaired, generated.clean,
                error_cells=generated.error_cells)
            outcomes[variant] = {
                "runtime": result.timings["compile"] + result.timings["repair"],
                "f1": quality.f1,
                "factors": result.size_report["constraint_factors"],
            }
        return outcomes

    outcomes = benchmark.pedantic(compare, rounds=1, iterations=1)

    base = outcomes["dc-factors"]
    part = outcomes["dc-factors+partitioning"]
    speedup = base["runtime"] / max(part["runtime"], 1e-9)
    f1_drop = base["f1"] - part["f1"]
    publish("ablation_partition",
            f"{'variant':<28} {'runtime(s)':>11} {'F1':>7} {'factors':>8}\n"
            f"{'dc-factors':<28} {base['runtime']:>11.2f} {base['f1']:>7.3f} "
            f"{base['factors']:>8}\n"
            f"{'dc-factors+partitioning':<28} {part['runtime']:>11.2f} "
            f"{part['f1']:>7.3f} {part['factors']:>8}\n"
            f"speedup: {speedup:.2f}x, F1 drop: {f1_drop:+.3f}")

    # Shape: fewer (or equal) factors, quality within the paper's 6% band.
    assert part["factors"] <= base["factors"]
    assert f1_drop <= 0.06 + 0.04  # paper's worst case plus slack
