"""Figure 6: repair error-rate per marginal-probability bucket.

The paper buckets HoloClean's suggested repairs by marginal probability
([0.5-0.6) … [0.9-1.0]) and shows the error rate falling monotonically
with confidence (average 0.58 in the lowest bucket down to 0.04 in the
highest) — the "rigorous semantics" of the marginals.
"""

from _common import BENCH_SIZES, dataset, holoclean_run, publish

from repro.eval.buckets import BucketReport, bucket_error_rates

PAPER_AVG = {0: 0.58, 1: 0.36, 2: 0.24, 3: 0.07, 4: 0.04}


def test_figure6_error_rate_by_confidence(benchmark):
    def collect():
        merged = BucketReport()
        per_dataset = {}
        for name in BENCH_SIZES:
            generated = dataset(name)
            _, result = holoclean_run(name)
            report = bucket_error_rates(result, generated.clean)
            per_dataset[name] = report
            merged.merge(report)
        return merged, per_dataset

    merged, per_dataset = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = [f"{'bucket':<12} {'repairs':>8} {'errors':>8} "
             f"{'error-rate':>11} {'paper avg':>10}"]
    for i, label in enumerate(merged.labels()):
        rate = merged.error_rates[i]
        rate_text = f"{rate:.3f}" if rate is not None else "—"
        lines.append(f"{label:<12} {merged.counts[i]:>8} "
                     f"{merged.errors[i]:>8} {rate_text:>11} "
                     f"{PAPER_AVG[i]:>10.2f}")
    publish("figure6_calibration", "\n".join(lines))

    # Shape: the top-confidence bucket is (near-)cleanest, and overall the
    # error rate trends downward with confidence.
    rates = [(i, r) for i, r in enumerate(merged.error_rates)
             if r is not None and merged.counts[i] >= 5]
    assert rates, "no buckets with enough repairs to assess"
    top_bucket_rate = rates[-1][1]
    assert top_bucket_rate <= max(r for _, r in rates)
    if len(rates) >= 2:
        assert rates[-1][1] <= rates[0][1] + 0.05
