"""Naive vs engine grounding: DC violation detection + domain pruning.

The vectorized relational engine (``repro.engine``) is what stands in for
the paper's DBMS grounding layer; this bench quantifies it on a ≥10k-tuple
Hospital dataset: wall-time of denial-constraint violation detection plus
Algorithm 2 domain pruning, naive Python path vs engine-backed path, with
byte-identical outputs asserted along the way.

Run as a script (``python benchmarks/bench_engine_grounding.py``) or via
pytest (``python -m pytest benchmarks/bench_engine_grounding.py -q``).
``BENCH_ENGINE_ROWS`` / ``BENCH_ENGINE_CELLS`` resize the workload.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import fmt, publish, publish_json  # noqa: E402

from repro.core.domain import DomainPruner  # noqa: E402
from repro.data.generators.hospital import generate_hospital  # noqa: E402
from repro.detect.violations import ViolationDetector  # noqa: E402
from repro.engine import Engine  # noqa: E402

#: Acceptance floor: the engine must beat the naive grounding path by at
#: least this factor on the default workload.
MIN_SPEEDUP = 5.0

ROWS = int(os.environ.get("BENCH_ENGINE_ROWS", 10_000))
#: Noisy cells pruned by both paths (same sorted prefix; pruning cost is
#: linear in cells, so the ratio is unaffected by the sample size).
DOMAIN_CELLS = int(os.environ.get("BENCH_ENGINE_CELLS", 25_000))

#: The acceptance floor is defined for the 10k-tuple workload; downsized
#: runs (fixed costs dominate) report the speedup without enforcing it.
ENFORCE_FLOOR = ROWS >= 10_000


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    dataset = generated.dirty
    constraints = generated.constraints

    naive_detection, t_naive_detect = _timed(
        lambda: ViolationDetector(constraints).detect(dataset))
    cells = sorted(naive_detection.noisy_cells)[:DOMAIN_CELLS]
    naive_domains, t_naive_domains = _timed(
        lambda: DomainPruner(dataset, tau=generated.recommended_tau)
        .domains(cells))

    rows = {}
    for backend in ("numpy", "sqlite"):
        engine = Engine(dataset, backend=backend)
        detection, t_detect = _timed(
            lambda: ViolationDetector(constraints, engine=engine)
            .detect(dataset))
        domains, t_domains = _timed(
            lambda: DomainPruner(dataset, tau=generated.recommended_tau,
                                 engine=engine).domains(cells))
        # The engine is an optimisation, never a semantic change.
        assert detection.noisy_cells == naive_detection.noisy_cells
        assert (detection.hypergraph.violations
                == naive_detection.hypergraph.violations)
        assert domains == naive_domains
        rows[backend] = (t_detect, t_domains)

    naive_total = t_naive_detect + t_naive_domains
    report = {
        "rows": dataset.num_tuples,
        "violations": len(naive_detection.hypergraph),
        "noisy_cells": len(naive_detection.noisy_cells),
        "pruned_cells": len(cells),
        "naive": (t_naive_detect, t_naive_domains),
        **{f"engine[{name}]": times for name, times in rows.items()},
        "speedups": {
            name: naive_total / sum(times) for name, times in rows.items()
        },
    }

    lines = [
        f"Hospital {dataset.num_tuples} tuples · "
        f"{report['violations']} violations · "
        f"{report['noisy_cells']} noisy cells "
        f"({report['pruned_cells']} pruned by both paths)",
        "",
        f"{'path':<16} {'detect(s)':>10} {'domains(s)':>11} "
        f"{'total(s)':>9} {'speedup':>8}",
        f"{'naive':<16} {fmt(t_naive_detect, 10)} {fmt(t_naive_domains, 11)} "
        f"{fmt(naive_total, 9)} {fmt(1.0, 8)}",
    ]
    for name, (t_detect, t_domains) in rows.items():
        total = t_detect + t_domains
        lines.append(
            f"{'engine/' + name:<16} {fmt(t_detect, 10)} {fmt(t_domains, 11)} "
            f"{fmt(total, 9)} {fmt(naive_total / total, 8)}")
    publish("engine_grounding", "\n".join(lines))
    if ENFORCE_FLOOR:
        # Downsized smoke runs would overwrite the gated result with
        # numbers the committed baselines cannot be compared against.
        publish_json(
            "engine_grounding",
            metrics={"speedup_numpy": report["speedups"]["numpy"],
                     "speedup_sqlite": report["speedups"]["sqlite"]},
            meta={"rows": report["rows"],
                  "violations": report["violations"],
                  "noisy_cells": report["noisy_cells"],
                  "pruned_cells": report["pruned_cells"],
                  "naive_total_s": naive_total})
    else:
        print(f"downsized run ({ROWS} rows): BENCH json not published",
              file=sys.stderr)
    return report


def test_engine_grounding_speedup():
    report = run_bench()
    if ENFORCE_FLOOR:
        assert report["speedups"]["numpy"] >= MIN_SPEEDUP, (
            f"engine grounding speedup {report['speedups']['numpy']:.1f}x "
            f"below the {MIN_SPEEDUP}x acceptance floor")


if __name__ == "__main__":
    outcome = run_bench()
    print("speedups: " + ", ".join(
        f"{k}={v:.1f}x" for k, v in outcome["speedups"].items()))
    if ENFORCE_FLOOR and outcome["speedups"]["numpy"] < MIN_SPEEDUP:
        print(f"FAIL: numpy speedup below {MIN_SPEEDUP}x", file=sys.stderr)
        raise SystemExit(1)
