"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  Datasets are
generated once per process and cached; sizes default to laptop-friendly
row counts (Table 2's Hospital and Flights are reproduced at paper size,
Food and Physicians are scaled down) and honour ``REPRO_SCALE``.

Results are printed and also written to ``benchmarks/results/*.txt`` so
they survive pytest's output capture.  Performance benchmarks additionally
publish machine-readable ``benchmarks/results/BENCH_<name>.json`` files
(:func:`publish_json`) — the format consumed by
``benchmarks/check_regression.py``, the CI ``bench`` job, and
``python -m repro bench``.
"""

from __future__ import annotations

import functools
import json
from pathlib import Path

from repro.data import (
    generate_flights,
    generate_food,
    generate_hospital,
    generate_physicians,
)
from repro.data.base import GeneratedDataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark row budgets.  Hospital and Flights match Table 2 exactly;
#: Food and Physicians are scaled-down substitutes (paper: 339,908 and
#: 2,071,849 rows) — raise REPRO_SCALE to approach paper size.
BENCH_SIZES = {
    "hospital": dict(num_rows=1000),
    "flights": dict(num_flights=70),   # 70 × 34 sources = 2,380 tuples
    "food": dict(num_rows=1000),
    "physicians": dict(num_rows=1200),
}

_GENERATORS = {
    "hospital": generate_hospital,
    "flights": generate_flights,
    "food": generate_food,
    "physicians": generate_physicians,
}

#: The τ used per dataset in Table 3 of the paper.
TABLE3_TAU = {"hospital": 0.5, "flights": 0.3, "food": 0.5, "physicians": 0.7}

#: Baseline time budget (seconds); exceeding it is reported as DNF, the
#: paper's "failed to terminate after three days".
BASELINE_BUDGET = 120.0


@functools.lru_cache(maxsize=None)
def dataset(name: str) -> GeneratedDataset:
    """Generate (once per process) the named benchmark dataset."""
    return _GENERATORS[name](**BENCH_SIZES[name])


@functools.lru_cache(maxsize=None)
def holoclean_run(name: str):
    """One cached HoloClean run per dataset (shared by Tables 3 and 4)."""
    from repro.eval.harness import run_holoclean

    return run_holoclean(dataset(name), tau=TABLE3_TAU[name])


@functools.lru_cache(maxsize=None)
def baseline_run(name: str, method: str):
    """One cached baseline run per (dataset, method)."""
    from repro.eval.harness import run_baseline

    return run_baseline(method, dataset(name), time_budget=BASELINE_BUDGET)


#: The τ sweep shared by Figures 3-4.
SWEEP_TAUS = (0.3, 0.5, 0.7, 0.9)


@functools.lru_cache(maxsize=None)
def tau_sweep(name: str):
    """τ → (quality, timings) per dataset; computed once, used by both
    the Figure 3 (quality) and Figure 4 (runtime) benches."""
    from repro.eval.harness import run_holoclean

    generated = dataset(name)
    points = {}
    for tau in SWEEP_TAUS:
        run, _result = run_holoclean(generated, tau=tau)
        points[tau] = (run.quality, dict(run.timings))
    return points


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_json(name: str, metrics: dict, meta: dict | None = None) -> Path:
    """Persist one benchmark's machine-readable result.

    ``metrics`` holds the numbers the regression gate may pin (e.g.
    speedup ratios — prefer ratios over wall times so results compare
    across machines); ``meta`` holds workload descriptors (row counts,
    pair counts) that are informational only.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload = {"name": name, "metrics": metrics, "meta": meta or {}}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def fmt(value, width: int = 6) -> str:
    if value is None:
        return "n/a".rjust(width)
    if isinstance(value, float):
        return f"{value:.3f}".rjust(width)
    return str(value).rjust(width)
