"""Naive vs engine Algorithm 2 domain pruning.

`BENCH_pipeline.json` put the compile stage at ~90% of end-to-end
wall-clock, and with grounding (pair enumeration, factor tables,
featurization) already vectorized, the per-cell `DomainPruner.candidates`
walk — one Python loop over string-keyed co-occurrence dicts plus a
per-cell sort — was the bottleneck left in that stage.  This bench prunes
the exact query + evidence cell set the compiler prunes on a ≥10k-tuple
Hospital workload through both paths, asserting byte-identical candidate
domains (sets, order, tie-breaks) before reporting the speedup.

Run as a script (``python benchmarks/bench_domain_pruning.py``) or via
pytest.  ``BENCH_PRUNE_ROWS`` resizes the workload.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # plain `python benchmarks/...` from a checkout
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from _common import fmt, publish, publish_json

from repro.core.compiler import ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.core.domain import DomainPruner
from repro.core.vector_domain import VectorDomainPruner
from repro.data.generators.hospital import generate_hospital
from repro.dataset.stats import Statistics
from repro.detect.violations import ViolationDetector
from repro.engine import Engine

#: Acceptance floor: vectorized Algorithm 2 must beat the naive per-cell
#: pruner by at least this factor on the 10k-tuple workload.
MIN_SPEEDUP = 4.0

ROWS = int(os.environ.get("BENCH_PRUNE_ROWS", 10_000))

#: The acceptance floor is defined for the 10k-tuple workload; downsized
#: runs (fixed costs dominate) report the speedup without enforcing it.
ENFORCE_FLOOR = ROWS >= 10_000


def collect_cells(compiler):
    """The query + evidence cells exactly as ``compile`` prunes them."""
    repairable = set(compiler.dataset.schema.data_attributes)
    noisy = compiler.detection.noisy_cells
    query_cells = sorted(c for c in noisy if c.attribute in repairable)
    evidence_cells = compiler._sample_evidence(set(query_cells))
    return query_cells + evidence_cells


def run_bench() -> dict:
    generated = generate_hospital(num_rows=ROWS)
    dataset = generated.dirty
    config = HoloCleanConfig(tau=generated.recommended_tau)
    engine = Engine(dataset)
    detection = ViolationDetector(generated.constraints, engine=engine).detect(dataset)
    compiler = ModelCompiler(
        dataset,
        generated.constraints,
        config,
        detection,
        engine=engine,
    )
    cells = collect_cells(compiler)

    # Statistics construction is charged to each measured path, exactly
    # as production pays it (counters are built lazily during pruning).
    started = time.perf_counter()
    naive = DomainPruner(
        dataset,
        Statistics(dataset),
        tau=config.tau,
        max_domain=config.max_domain,
    )
    naive_domains = [naive.candidates(cell) for cell in cells]
    t_naive = time.perf_counter() - started

    started = time.perf_counter()
    vector = VectorDomainPruner(engine, tau=config.tau, max_domain=config.max_domain)
    vector_domains = vector.prune(cells)
    t_vector = time.perf_counter() - started

    # The vectorized path is an optimisation, never a semantic change:
    # every cell's candidate domain must match the oracle's exactly —
    # same values, same ranking, same tie-breaks.
    assert vector_domains == naive_domains

    speedup = t_naive / t_vector
    candidates = sum(len(domain) for domain in naive_domains)
    report = {
        "rows": dataset.num_tuples,
        "cells": len(cells),
        "candidates": candidates,
        "naive": t_naive,
        "engine": t_vector,
        "speedup": speedup,
    }

    header = (
        f"Hospital {dataset.num_tuples} tuples · {len(cells)} cells · "
        f"{candidates} candidate values"
    )
    lines = [
        header,
        "",
        f"{'path':<8} {'cells':>8} {'candidates':>11} {'seconds':>9}",
        f"{'naive':<8} {len(cells):>8} {candidates:>11} {fmt(t_naive, 9)}",
        f"{'engine':<8} {len(cells):>8} {candidates:>11} {fmt(t_vector, 9)}",
        "",
        f"speedup: {speedup:.1f}x (candidate domains byte-identical)",
    ]
    publish("domain_pruning", "\n".join(lines))
    if ENFORCE_FLOOR:
        publish_json(
            "domain_pruning",
            metrics={"speedup_vector": speedup},
            meta={
                "rows": dataset.num_tuples,
                "cells": len(cells),
                "candidates": candidates,
                "naive_s": t_naive,
                "engine_s": t_vector,
            },
        )
    else:
        print(
            f"downsized run ({ROWS} rows): BENCH json not published",
            file=sys.stderr,
        )
    return report


def test_domain_pruning_speedup():
    report = run_bench()
    if ENFORCE_FLOOR:
        assert report["speedup"] >= MIN_SPEEDUP, (
            f"vectorized pruning speedup {report['speedup']:.1f}x below "
            f"the {MIN_SPEEDUP}x acceptance floor"
        )


if __name__ == "__main__":
    outcome = run_bench()
    print(f"speedup: {outcome['speedup']:.1f}x")
    if ENFORCE_FLOOR and outcome["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup below {MIN_SPEEDUP}x", file=sys.stderr)
        raise SystemExit(1)
