"""§6.3.2 ablation: external dictionaries in HoloClean.

The paper incorporates the KATARA dictionary through matching
dependencies and finds F1 improvements *below 1%* on every dataset — the
other signals already cover most of what the (coverage-limited)
dictionary knows.  This bench runs HoloClean with and without the
dictionary on the datasets that ship one.
"""

import pytest

from _common import TABLE3_TAU, dataset, publish

from repro.eval.harness import run_holoclean


@pytest.mark.parametrize("name", ["hospital", "food", "physicians"])
def test_external_dictionary_gain_is_small(name, benchmark):
    generated = dataset(name)

    def both():
        without, _ = run_holoclean(generated, tau=TABLE3_TAU[name])
        with_dict, _ = run_holoclean(generated, tau=TABLE3_TAU[name],
                                     use_external=True)
        return without.quality, with_dict.quality

    without, with_dict = benchmark.pedantic(both, rounds=1, iterations=1)
    gain = with_dict.f1 - without.f1
    publish(f"ablation_external_{name}",
            f"F1 without dictionary: {without.f1:.4f}\n"
            f"F1 with dictionary:    {with_dict.f1:.4f}\n"
            f"gain:                  {gain:+.4f}")

    # Shape: external data must not hurt, and the gain stays small
    # (the paper reports < 1% improvements; we allow a little slack).
    assert gain >= -0.02
    assert gain <= 0.05
