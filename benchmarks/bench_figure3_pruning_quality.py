"""Figure 3: effect of the pruning threshold τ on precision and recall.

The paper sweeps τ ∈ {0.3, 0.5, 0.7, 0.9} for every dataset and finds
that raising τ trades recall away (candidate domains shrink until the
correct value is pruned) for precision, with recall collapsing sharply at
large τ — e.g. Food's recall drops from 0.77 to 0.36 between τ=0.5 and
τ=0.7.  This bench reproduces the sweep and asserts the trend; the sweep
itself is shared with the Figure 4 runtime bench.
"""

import pytest

from _common import SWEEP_TAUS, fmt, publish, tau_sweep


@pytest.mark.parametrize("name", ["hospital", "flights", "food", "physicians"])
def test_figure3_tau_sweep(name, benchmark):
    points = benchmark.pedantic(tau_sweep, args=(name,), rounds=1,
                                iterations=1)

    lines = [f"{'tau':>5} {'Precision':>10} {'Recall':>10}"]
    for tau in SWEEP_TAUS:
        quality, _timings = points[tau]
        lines.append(f"{tau:>5} {fmt(quality.precision, 10)} "
                     f"{fmt(quality.recall, 10)}")
    publish(f"figure3_{name}", "\n".join(lines))

    # Shape: recall does not increase with τ (domains only shrink).
    recalls = [points[tau][0].recall for tau in SWEEP_TAUS]
    for earlier, later in zip(recalls, recalls[1:]):
        assert later <= earlier + 0.05, (
            f"recall should shrink as tau grows on {name}: {recalls}")
    # Large τ prunes aggressively: recall at 0.9 at or below recall at 0.3.
    assert recalls[-1] <= recalls[0]
