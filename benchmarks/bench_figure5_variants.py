"""Figure 5: runtime / precision / recall of all HoloClean variants on Food.

The paper compares, across τ ∈ {0.3, 0.5, 0.7, 0.9} on Food: DC Factors,
DC Factors + partitioning, DC Feats, DC Feats + DC Factors, and DC Feats
+ DC Factors + partitioning, finding that (1) relaxing constraints to
features or partitioning speeds grounding up at small τ, and (2) the
relaxed model matches or beats the factor model's repair quality.

A smaller Food instance keeps the factor variants' Gibbs sampling
tractable; the comparisons are within-figure so the shape is unaffected.
"""

import pytest

from _common import fmt, publish

from repro.core.config import VARIANTS, HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.data import generate_food
from repro.detect.violations import ViolationDetector
from repro.eval.metrics import evaluate_repairs

TAUS = (0.3, 0.5, 0.7, 0.9)


@pytest.fixture(scope="module")
def food():
    generated = generate_food(num_rows=600)
    detection = ViolationDetector(generated.constraints).detect(generated.dirty)
    return generated, detection


@pytest.mark.parametrize("variant", VARIANTS)
def test_figure5_variant(variant, food, benchmark):
    generated, detection = food

    def sweep():
        points = {}
        for tau in TAUS:
            config = HoloCleanConfig.variant(
                variant, tau=tau, seed=1, gibbs_burn_in=5, gibbs_sweeps=20)
            result = HoloClean(config).repair(
                generated.dirty, generated.constraints, detection=detection)
            quality = evaluate_repairs(generated.dirty, result.repaired,
                                       generated.clean,
                                       error_cells=generated.error_cells)
            points[tau] = (result.timings["compile"] + result.timings["repair"],
                           quality, result.size_report)
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'tau':>5} {'runtime(s)':>11} {'Prec.':>7} {'Rec.':>7} "
             f"{'factors':>8}"]
    for tau in TAUS:
        runtime, quality, report = points[tau]
        lines.append(f"{tau:>5} {runtime:>11.2f} {fmt(quality.precision, 7)} "
                     f"{fmt(quality.recall, 7)} "
                     f"{report['constraint_factors']:>8}")
    publish(f"figure5_{variant}", "\n".join(lines))

    # Every variant must repair Food reasonably at its best τ.
    best_f1 = max(q.f1 for _, q, _ in points.values())
    assert best_f1 > 0.4, f"{variant} failed on Food (best F1 {best_f1:.3f})"


def test_figure5_partitioning_reduces_factors(food):
    """Partitioned factor grounding must not ground more factors."""
    generated, detection = food
    counts = {}
    for variant in ("dc-factors", "dc-factors+partitioning"):
        config = HoloCleanConfig.variant(variant, tau=0.3, seed=1,
                                         epochs=5, gibbs_burn_in=1,
                                         gibbs_sweeps=2)
        result = HoloClean(config).repair(
            generated.dirty, generated.constraints, detection=detection)
        counts[variant] = result.size_report["constraint_factors"]
    publish("figure5_partitioning_factors",
            "\n".join(f"{k}: {v} factors" for k, v in counts.items()))
    assert counts["dc-factors+partitioning"] <= counts["dc-factors"]
