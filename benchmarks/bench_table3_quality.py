"""Table 3: precision/recall/F1 of HoloClean vs Holistic/KATARA/SCARE.

Paper values (P / R / F1):

    Hospital (τ=0.5):  HC 1.0/.713/.832   Holistic .517/.376/.435
                       KATARA .983/.235/.379  SCARE .667/.534/.593
    Flights (τ=0.3):   HC .887/.669/.763  Holistic 0/0/0*  KATARA n/a
                       SCARE .569/.057/.104
    Food (τ=0.5):      HC .769/.798/.783  Holistic .142/.679/.235
                       KATARA 1.0/.310/.473  SCARE DNF
    Physicians (τ=0.7): HC .927/.878/.897 Holistic .521/.504/.512
                       KATARA 0/0/0#  SCARE DNF

The reproduction must preserve the *shape*: HoloClean best on every
dataset; Holistic's zero correct repairs on Flights; KATARA high-precision
/ low-recall with the Physicians format-mismatch zero; SCARE moderate on
the small datasets and DNF-prone on the large ones.
"""

import pytest

from _common import BENCH_SIZES, baseline_run, dataset, holoclean_run, fmt, publish

BASELINES = ("Holistic", "KATARA", "SCARE")


@pytest.mark.parametrize("name", ["hospital", "flights", "food", "physicians"])
def test_table3_repair_quality(name, benchmark):
    dataset(name)  # warm the per-process dataset cache outside the timed region

    hc_run, _result = benchmark.pedantic(holoclean_run, args=(name,),
                                         rounds=1, iterations=1)
    rows = [("HoloClean", hc_run)]
    for method in BASELINES:
        rows.append((method, baseline_run(name, method)))

    lines = [f"{'Method':<10} {'Prec.':>7} {'Rec.':>7} {'F1':>7}"]
    for method, run in rows:
        if run.timed_out:
            lines.append(f"{method:<10} {'DNF':>7} {'DNF':>7} {'DNF':>7}")
        elif run.quality is None:
            lines.append(f"{method:<10} {'n/a':>7} {'n/a':>7} {'n/a':>7}")
        else:
            q = run.quality
            lines.append(f"{method:<10} {fmt(q.precision, 7)} "
                         f"{fmt(q.recall, 7)} {fmt(q.f1, 7)}")
    publish(f"table3_{name}", "\n".join(lines))

    # Shape assertions from the paper.
    assert hc_run.quality.f1 > 0.5
    for method, run in rows[1:]:
        if run.quality is not None and not run.timed_out:
            assert hc_run.quality.f1 >= run.quality.f1, (
                f"HoloClean must outperform {method} on {name}")


def test_table3_average_improvement():
    """The headline claim: >2× average F1 over each baseline family."""
    hc_scores, baseline_scores = [], {m: [] for m in BASELINES}
    for name in BENCH_SIZES:
        hc_run, _ = holoclean_run(name)
        hc_scores.append(hc_run.quality.f1)
        for method in BASELINES:
            run = baseline_run(name, method)
            baseline_scores[method].append(
                0.0 if (run.timed_out or run.quality is None)
                else run.quality.f1)

    hc_avg = sum(hc_scores) / len(hc_scores)
    lines = [f"HoloClean average F1: {hc_avg:.3f}"]
    for method, scores in baseline_scores.items():
        avg = sum(scores) / len(scores)
        ratio = hc_avg / avg if avg > 0 else float("inf")
        lines.append(f"{method:<10} average F1: {avg:.3f}  "
                     f"(HoloClean is {ratio:.2f}x)")
        # The paper reports 2.29x-2.81x per family; assert a safety margin
        # below that so benign generator drift doesn't fail the bench —
        # EXPERIMENTS.md records the measured ratios.
        assert hc_avg > 1.5 * avg, f"expected a large F1 margin vs {method}"
    publish("table3_average_improvement", "\n".join(lines))
