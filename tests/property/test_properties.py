"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.parser import format_dc, parse_dc
from repro.constraints.similarity import (
    jaccard,
    levenshtein,
    normalized_similarity,
)
from repro.core.domain import DomainPruner
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.dataset.stats import Statistics
from repro.eval.metrics import evaluate_repairs
from repro.inference.numerics import segment_logsumexp, segment_softmax

short_text = st.text(alphabet="abcxyz", max_size=12)


class TestLevenshteinMetric:
    @given(short_text)
    def test_identity(self, s):
        assert levenshtein(s, s) == 0

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_text, short_text)
    def test_positivity(self, a, b):
        distance = levenshtein(a, b)
        assert distance >= 0
        assert (distance == 0) == (a == b)


class TestSimilarityRanges:
    @given(short_text, short_text)
    def test_normalized_in_unit_interval(self, a, b):
        assert 0.0 <= normalized_similarity(a, b) <= 1.0

    @given(short_text, short_text)
    def test_jaccard_in_unit_interval(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0


class TestSegmentKernels:
    @given(st.lists(st.lists(st.floats(-50, 50), min_size=1, max_size=6),
                    min_size=1, max_size=5))
    def test_softmax_sums_to_one_per_segment(self, segments):
        scores = np.array([x for seg in segments for x in seg])
        starts = np.cumsum([0] + [len(s) for s in segments])
        probs = segment_softmax(scores, starts)
        for i in range(len(segments)):
            assert probs[starts[i]:starts[i + 1]].sum() == pytest.approx(1.0)

    @given(st.lists(st.floats(-20, 20), min_size=1, max_size=8),
           st.floats(-5, 5))
    def test_softmax_shift_invariance(self, seg, shift):
        scores = np.array(seg)
        starts = np.array([0, len(seg)])
        a = segment_softmax(scores, starts)
        b = segment_softmax(scores + shift, starts)
        assert np.allclose(a, b)

    @given(st.lists(st.floats(-20, 20), min_size=1, max_size=8))
    def test_logsumexp_bounds(self, seg):
        scores = np.array(seg)
        lse = segment_logsumexp(scores, np.array([0, len(seg)]))[0]
        assert lse >= scores.max() - 1e-9
        assert lse <= scores.max() + np.log(len(seg)) + 1e-9


class TestStatisticsInvariants:
    @given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")),
                    min_size=1, max_size=40))
    def test_conditionals_form_subdistribution(self, pairs):
        ds = Dataset(Schema(["A", "B"]), [[a, b] for a, b in pairs])
        stats = Statistics(ds)
        for given_value in "xyz":
            if stats.frequency("B", given_value) == 0:
                continue
            total = sum(
                stats.conditional("A", v, "B", given_value) for v in "abc")
            assert total == pytest.approx(1.0)

    @given(st.lists(st.tuples(st.sampled_from("ab"), st.sampled_from("xy")),
                    min_size=1, max_size=30))
    def test_cooccurrence_symmetry(self, pairs):
        ds = Dataset(Schema(["A", "B"]), [[a, b] for a, b in pairs])
        stats = Statistics(ds)
        for a in "ab":
            for b in "xy":
                assert stats.cooccurrence("A", a, "B", b) == \
                    stats.cooccurrence("B", b, "A", a)


class TestDomainPruningMonotone:
    @given(st.lists(st.tuples(st.sampled_from("pq"), st.sampled_from("uvw")),
                    min_size=4, max_size=40),
           st.floats(0.05, 0.45), st.floats(0.5, 0.95))
    @settings(max_examples=40)
    def test_candidates_shrink_with_tau(self, pairs, low, high):
        ds = Dataset(Schema(["K", "V"]), [[k, v] for k, v in pairs])
        cell = Cell(0, "V")
        loose = set(DomainPruner(ds, tau=low).candidates(cell))
        tight = set(DomainPruner(ds, tau=high).candidates(cell))
        assert tight <= loose


class TestMetricsInvariants:
    @given(st.lists(st.sampled_from(["t", "e1", "e2"]), min_size=1,
                    max_size=20),
           st.lists(st.sampled_from(["t", "e1", "r"]), min_size=1,
                    max_size=20))
    @settings(max_examples=40)
    def test_bounds(self, dirty_vals, repaired_vals):
        n = min(len(dirty_vals), len(repaired_vals))
        schema = Schema(["A"])
        clean = Dataset(schema, [["t"]] * n)
        dirty = Dataset(schema, [[v] for v in dirty_vals[:n]])
        repaired = Dataset(schema, [[v] for v in repaired_vals[:n]])
        q = evaluate_repairs(dirty, repaired, clean)
        assert 0.0 <= q.precision <= 1.0
        assert 0.0 <= q.f1 <= 1.0
        if q.precision > 0:
            assert min(q.precision, q.recall) <= q.f1 <= \
                max(q.precision, q.recall) + 1e-9


class TestParserRoundTrip:
    attr_names = st.sampled_from(["Zip", "City", "State", "A1"])
    ops = st.sampled_from(["EQ", "IQ", "LT", "GT", "LTE", "GTE", "SIM"])

    @given(st.lists(st.tuples(ops, attr_names, attr_names), min_size=1,
                    max_size=4))
    @settings(max_examples=60)
    def test_roundtrip_stable(self, predicates):
        text = "t1&t2&" + "&".join(
            f"{op}(t1.{a1},t2.{a2})" for op, a1, a2 in predicates)
        dc = parse_dc(text)
        assert format_dc(parse_dc(format_dc(dc))) == format_dc(dc)
        assert len(dc.predicates) == len(predicates)
