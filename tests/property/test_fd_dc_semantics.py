"""Property: FD → DC compilation preserves violation semantics.

For any dataset, the denial constraints produced by
``FunctionalDependency.to_denial_constraints`` fire on a tuple pair iff
the pair genuinely violates the dependency (same LHS values, different
RHS value) — Example 2 of the paper, checked generatively.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.fd import FunctionalDependency
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.detect.violations import ViolationDetector

rows = st.lists(
    st.tuples(st.sampled_from("kl"), st.sampled_from("vw"),
              st.sampled_from("xy")),
    min_size=2, max_size=12)


@given(rows)
@settings(max_examples=50)
def test_dc_violations_match_fd_semantics(raw_rows):
    schema = Schema(["K", "V", "Other"])
    ds = Dataset(schema, [list(r) for r in raw_rows])
    fd = FunctionalDependency(["K"], ["V"])
    dcs = fd.to_denial_constraints()
    detection = ViolationDetector(dcs).detect(ds)

    expected_pairs = set()
    for i in range(len(raw_rows)):
        for j in range(i + 1, len(raw_rows)):
            if raw_rows[i][0] == raw_rows[j][0] and \
                    raw_rows[i][1] != raw_rows[j][1]:
                expected_pairs.add(frozenset({i, j}))

    detected_pairs = {frozenset(v.tids)
                      for v in detection.hypergraph.violations}
    assert detected_pairs == expected_pairs


@given(rows)
@settings(max_examples=50)
def test_satisfying_dataset_has_no_violations(raw_rows):
    """Force the FD to hold, then assert the compiled DCs are silent."""
    schema = Schema(["K", "V", "Other"])
    repaired_rows = [[k, f"determined-{k}", o] for k, _v, o in raw_rows]
    ds = Dataset(schema, repaired_rows)
    dcs = FunctionalDependency(["K"], ["V"]).to_denial_constraints()
    detection = ViolationDetector(dcs).detect(ds)
    assert len(detection.hypergraph) == 0
    assert not detection.noisy_cells
