"""Tests for external dictionaries and matching-dependency grounding."""

import pytest

from repro.constraints.matching import MatchingDependency, MatchPredicate
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.external.dictionary import ExternalDictionary
from repro.external.matcher import match_dictionary


class TestExternalDictionary:
    def test_add_and_len(self):
        d = ExternalDictionary("k", ["A"])
        d.add({"A": "x"})
        assert len(d) == 1

    def test_unknown_attribute_rejected(self):
        d = ExternalDictionary("k", ["A"])
        with pytest.raises(KeyError, match="not in dictionary"):
            d.add({"Z": "x"})

    def test_missing_attributes_become_none(self):
        d = ExternalDictionary("k", ["A", "B"], [{"A": "x"}])
        assert d.entries[0] == {"A": "x", "B": None}

    def test_lookup_index(self):
        d = ExternalDictionary("k", ["A"], [{"A": "x"}, {"A": "y"}, {"A": "x"}])
        assert d.lookup("A", "x") == [0, 2]
        assert d.lookup("A", "zzz") == []

    def test_index_invalidated_on_add(self):
        d = ExternalDictionary("k", ["A"], [{"A": "x"}])
        assert d.lookup("A", "x") == [0]
        d.add({"A": "x"})
        assert d.lookup("A", "x") == [0, 1]

    def test_requires_name_and_attributes(self):
        with pytest.raises(ValueError):
            ExternalDictionary("", ["A"])
        with pytest.raises(ValueError):
            ExternalDictionary("k", [])


class TestMatchDictionary:
    @pytest.fixture
    def dictionary(self):
        return ExternalDictionary("addresses", ["Ext_Zip", "Ext_City"], [
            {"Ext_Zip": "60608", "Ext_City": "Chicago"},
            {"Ext_Zip": "60609", "Ext_City": "Chicago"},
            {"Ext_Zip": "02134", "Ext_City": "Boston"},
        ])

    @pytest.fixture
    def md_city(self):
        return MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                                  "City", "Ext_City", name="m1")

    def test_example3_grounding(self, dictionary, md_city):
        ds = Dataset(Schema(["Zip", "City"]), [["60608", "Cicago"]])
        matched = match_dictionary(ds, dictionary, [md_city])
        facts = matched.for_cell(Cell(0, "City"))
        assert len(facts) == 1
        assert facts[0].value == "Chicago"
        assert facts[0].dictionary == "addresses"

    def test_no_match_for_unknown_zip(self, dictionary, md_city):
        ds = Dataset(Schema(["Zip", "City"]), [["99999", "X"]])
        matched = match_dictionary(ds, dictionary, [md_city])
        assert len(matched) == 0

    def test_null_key_no_match(self, dictionary, md_city):
        ds = Dataset(Schema(["Zip", "City"]), [[None, "X"]])
        matched = match_dictionary(ds, dictionary, [md_city])
        assert len(matched) == 0

    def test_fuzzy_match_predicate(self, dictionary):
        md = MatchingDependency(
            [MatchPredicate("City", "Ext_City", fuzzy=True)],
            "Zip", "Ext_Zip", name="m3")
        ds = Dataset(Schema(["Zip", "City"]), [["60608", "Cicago"]])
        matched = match_dictionary(ds, dictionary, [md])
        values = {m.value for m in matched.for_cell(Cell(0, "Zip"))}
        assert values == {"60608", "60609"}  # both Chicago zips match

    def test_support_aggregated(self):
        d = ExternalDictionary("k", ["Ext_A", "Ext_B"], [
            {"Ext_A": "x", "Ext_B": "same"},
            {"Ext_A": "x", "Ext_B": "same"},
        ])
        md = MatchingDependency([MatchPredicate("A", "Ext_A")], "B", "Ext_B")
        ds = Dataset(Schema(["A", "B"]), [["x", "other"]])
        matched = match_dictionary(ds, d, [md])
        (fact,) = matched.for_cell(Cell(0, "B"))
        assert fact.support == 2

    def test_best_value_uses_support(self):
        d = ExternalDictionary("k", ["Ext_A", "Ext_B"], [
            {"Ext_A": "x", "Ext_B": "major"},
            {"Ext_A": "x", "Ext_B": "major"},
            {"Ext_A": "x", "Ext_B": "minor"},
        ])
        md = MatchingDependency([MatchPredicate("A", "Ext_A")], "B", "Ext_B")
        ds = Dataset(Schema(["A", "B"]), [["x", None]])
        matched = match_dictionary(ds, d, [md])
        assert matched.best_value(Cell(0, "B")) == "major"
