"""Tests for the KATARA baseline (KB-powered repairs)."""

import pytest

from repro.baselines.katara import KataraRepair
from repro.constraints.matching import MatchingDependency, MatchPredicate
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.external.dictionary import ExternalDictionary


@pytest.fixture
def dictionary():
    return ExternalDictionary("kb", ["Ext_Zip", "Ext_City"], [
        {"Ext_Zip": "60608", "Ext_City": "Chicago"},
        {"Ext_Zip": "02134", "Ext_City": "Boston"},
    ])


@pytest.fixture
def md():
    return MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                              "City", "Ext_City")


class TestRepairs:
    def test_repairs_to_kb_value(self, dictionary, md):
        ds = Dataset(Schema(["Zip", "City"]),
                     [["60608", "Cicago"], ["02134", "Boston"]])
        result = KataraRepair(dictionary, [md]).run(ds)
        assert result.repairs == {Cell(0, "City"): "Chicago"}

    def test_no_coverage_no_repairs(self, dictionary, md):
        ds = Dataset(Schema(["Zip", "City"]), [["99999", "Somewhere"]])
        result = KataraRepair(dictionary, [md]).run(ds)
        assert not result.repairs

    def test_format_mismatch_failure_mode(self, dictionary, md):
        # ZIP+4 values never match the KB's 5-digit zips — the paper's
        # Physicians footnote: "KATARA performs no repairs due to format
        # mismatch for zip code".
        ds = Dataset(Schema(["Zip", "City"]), [["60608-1234", "Cicago"]])
        result = KataraRepair(dictionary, [md]).run(ds)
        assert not result.repairs

    def test_agreeing_cells_untouched(self, dictionary, md):
        ds = Dataset(Schema(["Zip", "City"]), [["60608", "Chicago"]])
        result = KataraRepair(dictionary, [md]).run(ds)
        assert not result.repairs


class TestAbstention:
    def test_ambiguous_kb_evidence(self, md):
        conflicted = ExternalDictionary("kb", ["Ext_Zip", "Ext_City"], [
            {"Ext_Zip": "60608", "Ext_City": "Chicago"},
            {"Ext_Zip": "60608", "Ext_City": "Cicero"},
        ])
        ds = Dataset(Schema(["Zip", "City"]), [["60608", "Wrong"]])
        result = KataraRepair(conflicted, [md]).run(ds)
        assert not result.repairs  # 1:1 support ratio → abstain

    def test_dominant_kb_value_wins(self, md):
        dominant = ExternalDictionary("kb", ["Ext_Zip", "Ext_City"], [
            {"Ext_Zip": "60608", "Ext_City": "Chicago"},
            {"Ext_Zip": "60608", "Ext_City": "Chicago"},
            {"Ext_Zip": "60608", "Ext_City": "Cicero"},
        ])
        ds = Dataset(Schema(["Zip", "City"]), [["60608", "Wrong"]])
        result = KataraRepair(dominant, [md], ambiguity_ratio=2.0).run(ds)
        assert result.repairs == {Cell(0, "City"): "Chicago"}

    def test_min_support(self, dictionary, md):
        ds = Dataset(Schema(["Zip", "City"]), [["60608", "Wrong"]])
        result = KataraRepair(dictionary, [md], min_support=5).run(ds)
        assert not result.repairs
