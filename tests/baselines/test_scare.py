"""Tests for the SCARE baseline (dependency-aware maximal likelihood)."""

import pytest

from repro.baselines.base import MethodTimeout
from repro.baselines.scare import ScareRepair
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.dataset.stats import Statistics


@pytest.fixture
def duplicated_data():
    """Many duplicates of (code → name) plus one typo'd name."""
    schema = Schema(["Code", "Name", "Junk"])
    rows = []
    for i in range(30):
        rows.append(["C1", "Alpha", f"j{i % 4}"])
        rows.append(["C2", "Beta", f"j{i % 3}"])
    rows.append(["C1", "Alphx", "j0"])  # typo
    return Dataset(schema, rows)


class TestRepairs:
    def test_repairs_duplicate_supported_typo(self, duplicated_data):
        scare = ScareRepair(sample_fraction=1.0, min_log_gain=1.0)
        result = scare.run(duplicated_data)
        assert result.repairs.get(Cell(60, "Name")) == "Alpha"

    def test_clean_cells_untouched(self, duplicated_data):
        scare = ScareRepair(sample_fraction=1.0)
        result = scare.run(duplicated_data)
        wrong = [c for c in result.repairs
                 if duplicated_data.cell_value(c) in ("Alpha", "Beta")]
        assert not wrong

    def test_bounded_changes_per_tuple(self):
        schema = Schema(["A", "B", "C", "D"])
        rows = [["k", "x", "y", "z"]] * 20
        rows.append(["k", "q1", "q2", "q3"])  # three errors in one tuple
        ds = Dataset(schema, rows)
        scare = ScareRepair(sample_fraction=1.0, min_log_gain=0.5,
                            max_changes_per_tuple=2)
        result = scare.run(ds)
        assert sum(1 for c in result.repairs if c.tid == 20) <= 2

    def test_abstains_when_observed_outside_block(self, duplicated_data):
        # With a tiny learning block, unseen observed values are skipped
        # rather than repaired blindly.
        scare = ScareRepair(sample_fraction=0.05, seed=1)
        result = scare.run(duplicated_data)
        for cell, value in result.repairs.items():
            assert value is not None


class TestDependencyWeights:
    def test_uncertainty_coefficient_ranges(self, duplicated_data):
        scare = ScareRepair(sample_fraction=1.0)
        stats = Statistics(duplicated_data)
        u_informative = scare._uncertainty(stats, "Name", "Code")
        u_junk = scare._uncertainty(stats, "Name", "Junk")
        assert 0.0 <= u_junk <= u_informative <= 1.0
        assert u_informative > 0.9  # Code determines Name
        assert u_junk < 0.2

    def test_constant_attribute_zero_information(self):
        ds = Dataset(Schema(["A", "B"]), [["x", "c"], ["y", "c"]])
        scare = ScareRepair(sample_fraction=1.0)
        stats = Statistics(ds)
        assert scare._uncertainty(stats, "B", "A") == 0.0


class TestTimeout:
    def test_time_budget_raises(self, duplicated_data):
        scare = ScareRepair(time_budget=0.0)
        with pytest.raises(MethodTimeout):
            scare.run(duplicated_data)
