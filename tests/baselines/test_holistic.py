"""Tests for the Holistic baseline (minimality + fresh values)."""

import pytest

from repro.baselines.holistic import HolisticRepair
from repro.constraints.fd import parse_fd
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema


@pytest.fixture
def dc():
    return parse_fd("Zip -> City").to_denial_constraints()[0]


class TestConsistentDemands:
    def test_repairs_minority_to_partner_value(self, dc):
        ds = Dataset(Schema(["Zip", "City"]), [
            ["1", "Chicago"], ["1", "Chicago"], ["1", "Chicago"],
            ["1", "Cicago"],
        ])
        result = HolisticRepair([dc]).run(ds)
        assert result.repairs == {Cell(3, "City"): "Chicago"}
        assert result.repaired.value(3, "City") == "Chicago"

    def test_no_violations_no_repairs(self, dc):
        ds = Dataset(Schema(["Zip", "City"]), [["1", "A"], ["2", "B"]])
        result = HolisticRepair([dc]).run(ds)
        assert not result.repairs

    def test_input_not_mutated(self, dc):
        ds = Dataset(Schema(["Zip", "City"]),
                     [["1", "A"], ["1", "A"], ["1", "B"]])
        before = ds.copy()
        HolisticRepair([dc]).run(ds)
        assert ds == before


class TestContradictoryDemands:
    def test_fresh_value_on_conflict(self, dc):
        # Three distinct cities under one zip: every cell faces two
        # different demands → fresh values, never the truth.
        ds = Dataset(Schema(["Zip", "City"]), [
            ["1", "A"], ["1", "B"], ["1", "C"],
        ])
        result = HolisticRepair([dc]).run(ds)
        assert result.repairs
        assert all(v.startswith("__fresh_") for v in result.repairs.values())

    def test_fresh_values_disabled(self, dc):
        ds = Dataset(Schema(["Zip", "City"]), [
            ["1", "A"], ["1", "B"], ["1", "C"],
        ])
        result = HolisticRepair([dc], use_fresh_values=False).run(ds)
        assert all(not v.startswith("__fresh_")
                   for v in result.repairs.values())

    def test_flights_like_data_zero_correct(self, dc):
        rows = []
        for z in range(5):
            rows += [[str(z), "T"]] * 3 + [[str(z), "A"]] * 2 + [[str(z), "B"]]
        ds = Dataset(Schema(["Zip", "City"]), rows)
        result = HolisticRepair([dc]).run(ds)
        # All repair contexts are contradictory: only fresh values.
        correct = [c for c, v in result.repairs.items() if v == "T"]
        assert not correct


class TestRounds:
    def test_terminates_on_max_rounds(self, dc):
        ds = Dataset(Schema(["Zip", "City"]), [
            ["1", "A"], ["1", "B"], ["1", "C"],
        ])
        result = HolisticRepair([dc], max_rounds=2).run(ds)
        assert result.runtime >= 0  # completes without hanging

    def test_multi_constraint(self):
        dcs = (parse_fd("Zip -> City").to_denial_constraints()
               + parse_fd("Zip -> State").to_denial_constraints())
        ds = Dataset(Schema(["Zip", "City", "State"]), [
            ["1", "Chicago", "IL"], ["1", "Chicago", "IL"],
            ["1", "Chicago", "XX"],
        ])
        result = HolisticRepair(dcs).run(ds)
        assert result.repairs.get(Cell(2, "State")) == "IL"
