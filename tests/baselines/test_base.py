"""Tests for the shared baseline infrastructure."""

import time

import pytest

from repro.baselines.base import Deadline, MethodResult, MethodTimeout
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema


class TestDeadline:
    def test_no_budget_never_raises(self):
        deadline = Deadline(None)
        deadline.check("method")  # no exception

    def test_exceeded_budget_raises(self):
        deadline = Deadline(0.0)
        time.sleep(0.01)
        with pytest.raises(MethodTimeout, match="budget"):
            deadline.check("method")

    def test_elapsed_increases(self):
        deadline = Deadline(None)
        first = deadline.elapsed
        time.sleep(0.01)
        assert deadline.elapsed > first


class TestMethodResult:
    def test_num_repairs(self):
        ds = Dataset(Schema(["A"]), [["x"]])
        result = MethodResult(repaired=ds,
                              repairs={Cell(0, "A"): "y"})
        assert result.num_repairs == 1

    def test_defaults(self):
        ds = Dataset(Schema(["A"]), [["x"]])
        result = MethodResult(repaired=ds)
        assert result.num_repairs == 0
        assert not result.timed_out
