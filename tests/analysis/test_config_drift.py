"""Config/registry-drift checker: fixtures plus the real-repo sync proof."""

from __future__ import annotations

from repro.analysis.config_drift import CONFIG_REL, ConfigDriftChecker

DOC_REL = "docs/configuration.md"

CONFIG_SOURCE = """
from dataclasses import dataclass


@dataclass
class HoloCleanConfig:
    tau: float = 0.5
    seed: int = 42
"""

BACKEND_SOURCE = """
def register_backend(name, factory):
    pass


register_backend("numpy", object)
"""

DOC_IN_SYNC = """# Configuration

| Field | Default |
| --- | --- |
| `tau` | `0.5` |
| `seed` | `42` |

| Backend | Meaning |
| --- | --- |
| `numpy` | arrays |
"""


def run_checker(make_ctx, make_module, doc, config_source=CONFIG_SOURCE):
    ctx = make_ctx(
        make_module(CONFIG_REL, config_source),
        make_module("src/repro/engine/backend.py", BACKEND_SOURCE),
        docs={DOC_REL: doc},
    )
    # The live-registry snapshot check concerns the real installed
    # package, not the fixture; keep fixture assertions static-only.
    checker = ConfigDriftChecker()
    checker._check_snapshot = lambda ctx: []
    return checker.check(ctx)


def test_in_sync_doc_is_clean(make_ctx, make_module):
    assert run_checker(make_ctx, make_module, DOC_IN_SYNC) == []


def test_undocumented_field_flagged(make_ctx, make_module):
    source = CONFIG_SOURCE + "    epochs: int = 60\n"
    findings = run_checker(make_ctx, make_module, DOC_IN_SYNC, source)
    assert [f.rule for f in findings] == ["config-undocumented"]
    assert findings[0].path == CONFIG_REL
    assert "epochs" in findings[0].message


def test_phantom_doc_field_flagged(make_ctx, make_module):
    doc = DOC_IN_SYNC.replace(
        "| `seed` | `42` |", "| `seed` | `42` |\n| `gone` | `1` |"
    )
    findings = run_checker(make_ctx, make_module, doc)
    assert [f.rule for f in findings] == ["config-unknown"]
    assert findings[0].path == DOC_REL


def test_undocumented_backend_flagged(make_ctx, make_module):
    doc = DOC_IN_SYNC.replace("| `numpy` | arrays |\n", "")
    findings = run_checker(make_ctx, make_module, doc)
    assert [f.rule for f in findings] == ["backend-undocumented"]
    assert "numpy" in findings[0].message


def test_real_repo_config_docs_in_sync(repo_ctx):
    findings = ConfigDriftChecker().check(repo_ctx)
    assert findings == [], [f.render() for f in findings]


def test_live_backend_names_include_parallel():
    """The exported BACKEND_NAMES view must track late registrations."""
    import repro.engine as engine
    from repro.engine.backend import backend_names

    assert "parallel" in engine.BACKEND_NAMES
    assert tuple(engine.BACKEND_NAMES) == tuple(backend_names())
