"""Fixture self-tests: the parallel-safety checker."""

from __future__ import annotations

from repro.analysis.parallel_safety import ParallelSafetyChecker

REL = "src/repro/engine/parallel.py"


def check(make_ctx, module):
    return ParallelSafetyChecker().check(make_ctx(module))


def test_lambda_to_pool_flagged(make_module, make_ctx):
    bad = make_module(
        REL,
        """
        import multiprocessing

        def run(pool, items):
            return pool.map(lambda x: x + 1, items)
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["pool-callable"]


def test_bound_method_to_pool_flagged(make_module, make_ctx):
    bad = make_module(
        REL,
        """
        import multiprocessing

        class Runner:
            def _work(self, x):
                return x

            def run(self, pool, items):
                return pool.imap_unordered(self._work, items)
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["pool-callable"]


def test_nested_function_to_pool_flagged(make_module, make_ctx):
    bad = make_module(
        REL,
        """
        import multiprocessing

        def run(pool, items, offset):
            def shift(x):
                return x + offset

            return pool.map(shift, items)
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["pool-callable"]


def test_initializer_lambda_flagged(make_module, make_ctx):
    bad = make_module(
        REL,
        """
        import multiprocessing

        def start(ctx):
            return ctx.Pool(2, initializer=lambda: None)
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["pool-callable"]


def test_module_level_function_clean(make_module, make_ctx):
    good = make_module(
        REL,
        """
        import multiprocessing

        def _work(x):
            return x + 1

        def run(pool, items):
            return pool.map(_work, items, chunksize=1)
        """,
    )
    assert check(make_ctx, good) == []


def test_shared_memory_without_finalize_flagged(make_module, make_ctx):
    bad = make_module(
        REL,
        """
        from multiprocessing import shared_memory

        class Holder:
            def __init__(self, name):
                self.shm = shared_memory.SharedMemory(name=name)
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["shm-finalize"]


def test_shared_memory_with_finalize_clean(make_module, make_ctx):
    good = make_module(
        REL,
        """
        import weakref
        from multiprocessing import shared_memory

        def _close(shm):
            shm.close()

        class Holder:
            def __init__(self, name):
                self.shm = shared_memory.SharedMemory(name=name)
                weakref.finalize(self, _close, self.shm)
        """,
    )
    assert check(make_ctx, good) == []


def test_module_without_multiprocessing_skipped(make_module, make_ctx):
    elsewhere = make_module(
        "src/repro/obs/report.py",
        """
        def run(pool, items):
            return pool.map(lambda x: x, items)
        """,
    )
    assert check(make_ctx, elsewhere) == []


def test_executor_submit_flagged(make_module, make_ctx):
    """`submit` on a process pool pickles its callable too (serve's path)."""
    bad = make_module(
        "src/repro/serve/service.py",
        """
        from concurrent.futures import ProcessPoolExecutor

        def run(pool, ctx):
            return pool.submit(lambda c: c, ctx)
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["pool-callable"]


def test_executor_submit_module_level_ok(make_module, make_ctx):
    good = make_module(
        "src/repro/serve/service.py",
        """
        from concurrent.futures import ProcessPoolExecutor

        def _job(ctx):
            return ctx

        def run(pool, ctx):
            return pool.submit(_job, ctx)
        """,
    )
    assert check(make_ctx, good) == []
