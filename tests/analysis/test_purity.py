"""Fixture self-tests: the hot-path purity checker."""

from __future__ import annotations

from repro.analysis.purity import PurityChecker

VECTORIZED = "src/repro/core/partition.py"


def check(make_ctx, module):
    return PurityChecker().check(make_ctx(module))


def test_range_len_loop_flagged(make_module, make_ctx):
    bad = make_module(
        VECTORIZED,
        """
        def walk(rows):
            out = []
            for i in range(len(rows)):
                out.append(rows[i])
            return out
        """,
    )
    findings = check(make_ctx, bad)
    assert [f.rule for f in findings] == ["loop"]
    assert findings[0].path == VECTORIZED


def test_shape_extent_and_tolist_flagged(make_module, make_ctx):
    bad = make_module(
        VECTORIZED,
        """
        def walk(arr):
            for i in range(arr.shape[0]):
                pass
            for v in arr.tolist():
                pass
            for i, v in enumerate(arr.tolist()):
                pass
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["loop"] * 3


def test_comprehension_flagged(make_module, make_ctx):
    bad = make_module(
        VECTORIZED,
        """
        def walk(arr):
            return [v + 1 for v in arr.tolist()]
        """,
    )
    assert [f.rule for f in check(make_ctx, bad)] == ["loop"]


def test_column_and_group_loops_clean(make_module, make_ctx):
    good = make_module(
        VECTORIZED,
        """
        def per_column(schema, columns):
            for attr, col in zip(schema, columns):
                yield attr, col.sum()

        def per_constraint(constraints):
            for dc in constraints:
                yield dc
        """,
    )
    assert check(make_ctx, good) == []


def test_non_vectorized_module_ignored(make_module, make_ctx):
    elsewhere = make_module(
        "src/repro/core/stages.py",
        """
        def walk(rows):
            for i in range(len(rows)):
                pass
        """,
    )
    assert check(make_ctx, elsewhere) == []
