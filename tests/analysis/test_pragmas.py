"""Pragma parsing, suppression, and hygiene (missing-reason / unused)."""

from __future__ import annotations

from repro.analysis.base import parse_pragmas
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.purity import PurityChecker
from repro.analysis.runner import run_checkers

VECTORIZED = "src/repro/core/partition.py"


def test_parse_same_line_and_standalone():
    pragmas = parse_pragmas(
        "x = 1  # repro: allow-loop audited fallback\n"
        "# repro: allow-set-iteration canonical order proven\n"
        "y = 2\n"
    )
    assert pragmas[1].rule == "loop"
    assert pragmas[1].reason == "audited fallback"
    assert not pragmas[1].standalone
    assert pragmas[2].rule == "set-iteration"
    assert pragmas[2].standalone


def test_reasonless_pragma_parses_with_empty_reason():
    pragmas = parse_pragmas("x = 1  # repro: allow-loop\n")
    assert pragmas[1].rule == "loop"
    assert pragmas[1].reason == ""


def test_pragma_inside_string_is_not_a_pragma():
    pragmas = parse_pragmas(
        'msg = "add # repro: allow-loop <reason> after auditing"\n'
    )
    assert pragmas == {}


def test_same_line_pragma_suppresses(make_module, make_ctx):
    module = make_module(
        VECTORIZED,
        """
        def walk(rows):
            for i in range(len(rows)):  # repro: allow-loop audited oracle
                pass
        """,
    )
    findings, suppressed = run_checkers(make_ctx(module), [PurityChecker()])
    assert findings == []
    assert suppressed == 1


def test_standalone_pragma_covers_next_line(make_module, make_ctx):
    module = make_module(
        VECTORIZED,
        """
        def walk(rows):
            # repro: allow-loop audited oracle
            for i in range(len(rows)):
                pass
        """,
    )
    findings, suppressed = run_checkers(make_ctx(module), [PurityChecker()])
    assert findings == []
    assert suppressed == 1


def test_wrong_rule_pragma_does_not_suppress(make_module, make_ctx):
    module = make_module(
        VECTORIZED,
        """
        def walk(rows):
            for i in range(len(rows)):  # repro: allow-set-iteration nope
                pass
        """,
    )
    findings, _ = run_checkers(
        make_ctx(module), [PurityChecker(), DeterminismChecker()]
    )
    rules = sorted(f.rule_id for f in findings)
    assert rules == ["pragma.unused", "purity.loop"]


def test_missing_reason_reported(make_module, make_ctx):
    module = make_module(
        VECTORIZED,
        """
        def walk(rows):
            for i in range(len(rows)):  # repro: allow-loop
                pass
        """,
    )
    findings, suppressed = run_checkers(make_ctx(module), [PurityChecker()])
    # The pragma still suppresses (the loop is audited) but its missing
    # reason is itself a finding, so the run cannot go green.
    assert suppressed == 1
    assert [f.rule_id for f in findings] == ["pragma.missing-reason"]


def test_unused_pragma_reported(make_module, make_ctx):
    module = make_module(
        VECTORIZED,
        """
        def walk(rows):  # repro: allow-loop stale suppression
            return rows
        """,
    )
    findings, suppressed = run_checkers(make_ctx(module), [PurityChecker()])
    assert suppressed == 0
    assert [f.rule_id for f in findings] == ["pragma.unused"]


def test_unknown_rule_pragma_reported(make_module, make_ctx):
    module = make_module(
        VECTORIZED,
        """
        def walk(rows):  # repro: allow-bogus-rule some reason
            return rows
        """,
    )
    findings, _ = run_checkers(make_ctx(module), [PurityChecker()])
    assert [f.rule_id for f in findings] == ["pragma.unknown-rule"]
