"""Telemetry-drift checker: fixtures plus the real-repo docs-sync proof."""

from __future__ import annotations

from repro.analysis.telemetry import TelemetryChecker, extract_inventory, parse_doc

DOC_REL = "docs/observability.md"

SOURCE = """
from repro.obs.trace import deep_span


def size_report():
    return {"variables": 3, "weights": 2}


def run(metrics, rows):
    with deep_span("engine.join", rows=rows):
        metrics.gauge("detect.cells", 1)
        metrics.extend("learn.epoch_loss", [0.5])
"""

STAGES = """
class DetectStage:
    name = "detect"
"""

DOC_IN_SYNC = """# Observability

## Trace span names

Stage spans: `detect`.

| Span | Meaning |
| --- | --- |
| `engine.join` | backend join |

## `size_report` key inventory

| Key | Meaning |
| --- | --- |
| `variables` | random variables |
| `weights` | tied weights |
| `compile.<size_report key>` | placeholder family |

## Metrics-registry key inventory

| Key | Kind |
| --- | --- |
| `detect.cells` | gauge |
| `learn.epoch_loss` | series |
"""


def run_checker(make_ctx, make_module, doc, extra_source=None):
    modules = [
        make_module("src/repro/obs/sample.py", extra_source or SOURCE),
        make_module("src/repro/core/stages.py", STAGES),
    ]
    ctx = make_ctx(*modules, docs={DOC_REL: doc})
    return TelemetryChecker().check(ctx), ctx


def test_in_sync_doc_is_clean(make_ctx, make_module):
    findings, _ = run_checker(make_ctx, make_module, DOC_IN_SYNC)
    assert findings == []


def test_extraction_inventory(make_ctx, make_module):
    _, ctx = run_checker(make_ctx, make_module, DOC_IN_SYNC)
    inv = extract_inventory(ctx)
    assert set(inv.spans) == {"engine.join"}
    assert set(inv.stage_spans) == {"detect"}
    assert set(inv.metrics) == {"detect.cells", "learn.epoch_loss"}
    assert inv.metric_kinds["learn.epoch_loss"] == "series"
    assert set(inv.size_keys) == {"variables", "weights"}


def test_parse_doc_skips_placeholder_tokens():
    doc = parse_doc(DOC_IN_SYNC)
    assert doc.spans == {"engine.join"}
    assert doc.size_keys == {"variables", "weights"}
    assert doc.metrics == {"detect.cells", "learn.epoch_loss"}


def test_undocumented_span_and_metric_flagged(make_ctx, make_module):
    doc = DOC_IN_SYNC.replace("| `engine.join` | backend join |\n", "").replace(
        "| `detect.cells` | gauge |\n", ""
    )
    findings, _ = run_checker(make_ctx, make_module, doc)
    assert sorted(f.rule for f in findings) == [
        "metric-undocumented",
        "span-undocumented",
    ]
    assert all(f.path == "src/repro/obs/sample.py" for f in findings)


def test_stage_span_missing_from_prose_flagged(make_ctx, make_module):
    doc = DOC_IN_SYNC.replace("Stage spans: `detect`.", "Stage spans: none.")
    findings, _ = run_checker(make_ctx, make_module, doc)
    assert [f.rule for f in findings] == ["span-undocumented"]
    assert findings[0].path == "src/repro/core/stages.py"


def test_phantom_doc_entries_flagged(make_ctx, make_module):
    doc = DOC_IN_SYNC.replace(
        "| `variables` | random variables |",
        "| `variables` | random variables |\n| `ghost_key` | gone |",
    ).replace(
        "| `engine.join` | backend join |",
        "| `engine.join` | backend join |\n| `engine.gone` | deleted |",
    )
    findings, _ = run_checker(make_ctx, make_module, doc)
    assert sorted(f.rule for f in findings) == ["sizekey-unknown", "span-unknown"]
    assert all(f.path == DOC_REL for f in findings)
    assert all(f.line > 0 for f in findings)


def test_dynamic_span_flagged(make_ctx, make_module):
    source = SOURCE + """

def run_dynamic(name):
    with deep_span("stage." + name):
        pass
"""
    findings, _ = run_checker(make_ctx, make_module, DOC_IN_SYNC, source)
    assert [f.rule for f in findings] == ["dynamic-span"]


def test_real_repo_docs_are_in_sync(repo_ctx):
    """The acceptance criterion: docs/observability.md matches the source."""
    findings = TelemetryChecker().check(repo_ctx)
    assert findings == [], [f.render() for f in findings]
    inv = extract_inventory(repo_ctx)
    # Sanity-floor the extraction so an extraction bug cannot fake sync
    # by extracting nothing.
    assert len(inv.spans) >= 10
    assert len(inv.size_keys) >= 15
    assert len(inv.metrics) >= 10
    assert set(inv.stage_spans) == {"detect", "compile", "learn", "infer", "apply"}
