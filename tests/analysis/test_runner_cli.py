"""Runner + CLI: baseline ratchet, exit codes, JSON reports, repo-clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.base import Finding
from repro.analysis.runner import (
    BASELINE_NAME,
    compare_to_baseline,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN_DOC_OBS = """# Observability

## Trace span names

## `size_report` key inventory

## Metrics-registry key inventory
"""

CLEAN_DOC_CONFIG = """# Configuration
"""

VIOLATION = """def walk(rows):
    for i in range(len(rows)):
        pass
"""


@pytest.fixture
def tmp_repo(tmp_path):
    """A minimal lintable repo tree rooted at tmp_path."""
    (tmp_path / "src" / "repro" / "core").mkdir(parents=True)
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro" / "core" / "clean.py").write_text(
        "def ok():\n    return 1\n"
    )
    (tmp_path / "docs" / "observability.md").write_text(CLEAN_DOC_OBS)
    (tmp_path / "docs" / "configuration.md").write_text(CLEAN_DOC_CONFIG)
    return tmp_path


def add_violation(tmp_repo):
    (tmp_repo / "src" / "repro" / "core" / "partition.py").write_text(VIOLATION)


def test_clean_tree_no_baseline_exit_zero(tmp_repo):
    result = run_lint(tmp_repo)
    assert result.errors == []
    assert result.findings == []
    assert result.exit_code == 0


def test_finding_without_baseline_exit_one(tmp_repo):
    add_violation(tmp_repo)
    result = run_lint(tmp_repo)
    assert [f.rule_id for f in result.findings] == ["purity.loop"]
    assert result.exit_code == 1


def test_missing_baseline_is_config_error(tmp_repo):
    result = run_lint(tmp_repo, baseline_path=tmp_repo / BASELINE_NAME)
    assert result.exit_code == 2
    assert any("baseline" in e for e in result.errors)


def test_baseline_ratchet(tmp_repo):
    add_violation(tmp_repo)
    baseline_path = tmp_repo / BASELINE_NAME
    first = run_lint(tmp_repo)
    write_baseline(baseline_path, first.findings)

    # Same findings, baselined: green.
    second = run_lint(tmp_repo, baseline_path=baseline_path)
    assert second.baseline_used
    assert second.new_findings == []
    assert second.exit_code == 0

    # A new violation on top of the baseline: red, and only the new
    # finding is reported as new.
    (tmp_repo / "src" / "repro" / "core" / "factor_tables.py").write_text(VIOLATION)
    third = run_lint(tmp_repo, baseline_path=baseline_path)
    assert [f.path for f in third.new_findings] == ["src/repro/core/factor_tables.py"]
    assert third.exit_code == 1

    # Fixing the baselined violation is reported as ratchet progress.
    (tmp_repo / "src" / "repro" / "core" / "partition.py").write_text(
        "def ok():\n    return 2\n"
    )
    (tmp_repo / "src" / "repro" / "core" / "factor_tables.py").unlink()
    fourth = run_lint(tmp_repo, baseline_path=baseline_path)
    assert fourth.exit_code == 0
    assert fourth.fixed_count == 1


def test_compare_identity_ignores_line_drift():
    finding = Finding("purity", "loop", "src/repro/core/partition.py", 10, "msg")
    moved = Finding("purity", "loop", "src/repro/core/partition.py", 99, "msg")
    new, fixed = compare_to_baseline([moved], [finding])
    assert new == [] and fixed == 0


def test_syntax_error_is_config_error(tmp_repo):
    (tmp_repo / "src" / "repro" / "core" / "broken.py").write_text("def (:\n")
    result = run_lint(tmp_repo)
    assert result.exit_code == 2
    assert any("broken.py" in e for e in result.errors)


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "base.json"
    findings = [Finding("purity", "loop", "a.py", 3, "msg")]
    write_baseline(path, findings)
    assert load_baseline(path) == findings
    assert load_baseline(tmp_path / "absent.json") is None
    path.write_text("not json")
    assert load_baseline(path) is None


# ---------------------------------------------------------------------------
# CLI (through the real `repro lint` dispatch)
# ---------------------------------------------------------------------------
def cli(*args):
    return repro_main(["lint", *args])


def test_cli_write_baseline_then_green(tmp_repo, capsys):
    add_violation(tmp_repo)
    root = str(tmp_repo)
    assert cli("--root", root, "--no-baseline") == 1
    assert cli("--root", root, "--write-baseline") == 0
    assert (tmp_repo / BASELINE_NAME).exists()
    assert cli("--root", root) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out


def test_cli_missing_baseline_exit_two(tmp_repo):
    assert cli("--root", str(tmp_repo)) == 2


def test_cli_json_report(tmp_repo):
    add_violation(tmp_repo)
    report_path = tmp_repo / "lint.json"
    code = cli("--root", str(tmp_repo), "--no-baseline", "--json", str(report_path))
    assert code == 1
    payload = json.loads(report_path.read_text())
    assert payload["errors"] == []
    assert [f["rule"] for f in payload["findings"]] == ["loop"]
    assert payload["findings"][0]["path"] == "src/repro/core/partition.py"


def test_cli_rejects_non_repo_root(tmp_path):
    assert cli("--root", str(tmp_path)) == 2


# ---------------------------------------------------------------------------
# The repository itself is clean and its committed baseline is current
# ---------------------------------------------------------------------------
def test_repo_is_lint_clean():
    result = run_lint(REPO_ROOT, baseline_path=REPO_ROOT / BASELINE_NAME)
    assert result.errors == []
    rendered = [f.render() for f in result.new_findings]
    assert result.new_findings == [], rendered
    assert result.exit_code == 0


def test_committed_baseline_is_zero_findings():
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    assert baseline == []
