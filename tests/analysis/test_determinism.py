"""Fixture self-tests: the determinism checker's five rules."""

from __future__ import annotations

from repro.analysis.determinism import CRITICAL_MODULES, DeterminismChecker

CRITICAL = "src/repro/engine/ops.py"


def rules_of(findings):
    return sorted(f.rule for f in findings)


def check(make_ctx, module):
    return DeterminismChecker().check(make_ctx(module))


def test_set_iteration_flagged(make_module, make_ctx):
    bad = make_module(
        CRITICAL,
        """
        def emit(values):
            for v in {1, 2, 3}:
                yield v
            for v in set(values):
                yield v
            out = [v for v in frozenset(values)]
            return out
        """,
    )
    assert rules_of(check(make_ctx, bad)) == ["set-iteration"] * 3


def test_sorted_set_iteration_clean(make_module, make_ctx):
    good = make_module(
        CRITICAL,
        """
        def emit(values):
            for v in sorted(set(values)):
                yield v
        """,
    )
    assert check(make_ctx, good) == []


def test_unseeded_random_flagged(make_module, make_ctx):
    bad = make_module(
        CRITICAL,
        """
        import random
        import numpy as np

        def sample():
            a = random.shuffle([1, 2])
            b = np.random.rand(3)
            c = np.random.default_rng()
            return a, b, c
        """,
    )
    assert rules_of(check(make_ctx, bad)) == ["unseeded-random"] * 3


def test_seeded_random_clean(make_module, make_ctx):
    good = make_module(
        CRITICAL,
        """
        import random
        import numpy as np

        def sample(seed):
            rng = random.Random(seed)
            gen = np.random.default_rng(seed)
            return rng.random(), gen.random()
        """,
    )
    assert check(make_ctx, good) == []


def test_id_order_flagged_only_in_ordering(make_module, make_ctx):
    bad = make_module(
        CRITICAL,
        """
        def order(xs):
            return sorted(xs, key=lambda x: id(x))
        """,
    )
    good = make_module(
        CRITICAL,
        """
        def cache_key(x):
            return id(x)
        """,
    )
    assert rules_of(check(make_ctx, bad)) == ["id-order"]
    assert check(make_ctx, good) == []


def test_unsorted_listdir_flagged(make_module, make_ctx):
    bad = make_module(
        CRITICAL,
        """
        import os

        def files(path):
            return [f for f in os.listdir(path)]
        """,
    )
    good = make_module(
        CRITICAL,
        """
        import os

        def files(path):
            return sorted(os.listdir(path))
        """,
    )
    assert rules_of(check(make_ctx, bad)) == ["unsorted-listdir"]
    assert check(make_ctx, good) == []


def test_wall_clock_flagged(make_module, make_ctx):
    bad = make_module(
        CRITICAL,
        """
        import time
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now()
        """,
    )
    assert rules_of(check(make_ctx, bad)) == ["wall-clock"] * 2


def test_non_critical_module_ignored(make_module, make_ctx):
    elsewhere = make_module(
        "src/repro/obs/report.py",
        """
        import time

        def stamp():
            for v in {1, 2}:
                pass
            return time.time()
        """,
    )
    assert elsewhere.rel not in CRITICAL_MODULES
    assert check(make_ctx, elsewhere) == []
