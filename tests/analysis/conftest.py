"""Fixture helpers: build in-memory SourceModules and contexts."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis.base import AnalysisContext, SourceModule, parse_pragmas

REPO_ROOT = Path(__file__).resolve().parents[2]


def module_from_source(rel: str, source: str) -> SourceModule:
    """A SourceModule parsed from a snippet, pretending to live at ``rel``."""
    text = textwrap.dedent(source)
    return SourceModule(
        path=Path("/memory") / rel,
        rel=rel,
        text=text,
        lines=text.splitlines(),
        tree=ast.parse(text),
        pragmas=parse_pragmas(text),
    )


@pytest.fixture
def make_module():
    return module_from_source


@pytest.fixture
def make_ctx(tmp_path):
    """Build an AnalysisContext over snippet modules rooted at tmp_path."""

    def build(*modules: SourceModule, docs: dict[str, str] | None = None):
        for rel, text in (docs or {}).items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return AnalysisContext(tmp_path, list(modules))

    return build


@pytest.fixture
def repo_ctx():
    """The real repository, parsed — for docs-sync and repo-clean tests."""
    from repro.analysis.runner import discover_modules

    errors: list[str] = []
    modules = discover_modules(REPO_ROOT, errors)
    assert not errors, errors
    ctx = AnalysisContext(REPO_ROOT, modules)
    ctx.errors = errors
    return ctx
