"""Tests for the columnar store's dictionary encoding."""

import numpy as np
import pytest

from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.engine.store import NULL_CODE, ColumnStore


@pytest.fixture
def store(tiny_dataset) -> ColumnStore:
    return ColumnStore(tiny_dataset)


class TestEncoding:
    def test_codes_roundtrip(self, tiny_dataset, store):
        for attr in tiny_dataset.schema.names:
            decoded = store.decoded_column(attr)
            expected = [tiny_dataset.value(tid, attr)
                        for tid in tiny_dataset.tuple_ids]
            assert decoded == expected

    def test_null_encodes_to_sentinel(self, store):
        assert store.codes("C")[3] == NULL_CODE
        assert store.decode("C", NULL_CODE) is None

    def test_codes_are_first_seen_order(self, tiny_dataset, store):
        # The dictionary order must match Dataset.active_domain (first-seen).
        for attr in tiny_dataset.schema.names:
            assert store.values(attr) == tiny_dataset.active_domain(attr)

    def test_cardinality(self, store):
        assert store.cardinality("A") == 2
        assert store.cardinality("B") == 3
        assert store.cardinality("C") == 2

    def test_code_of(self, store):
        assert store.code_of("A", "a1") == 0
        assert store.code_of("A", "a2") == 1
        assert store.code_of("A", "missing") == NULL_CODE

    def test_dtype_and_shape(self, tiny_dataset, store):
        for attr in tiny_dataset.schema.names:
            col = store.codes(attr)
            assert col.dtype == np.int32
            assert len(col) == tiny_dataset.num_tuples


class TestSharedCodes:
    def test_equal_values_get_equal_shared_codes(self):
        ds = Dataset(Schema(["X", "Y"]), [
            ["a", "b"], ["b", "a"], ["c", None], ["a", "a"],
        ])
        store = ColumnStore(ds)
        sx, sy = store.shared_codes("X", "Y")
        # Row 3 has X == Y == "a": codes must coincide.
        assert sx[3] == sy[3]
        # Row 0: "a" vs "b" must differ; cross rows: X[0]=="a" == Y[1].
        assert sx[0] != sy[0]
        assert sx[0] == sy[1]
        # NULL stays the sentinel.
        assert sy[2] == NULL_CODE

    def test_same_attribute_returns_own_codes(self, store):
        sa, sb = store.shared_codes("A", "A")
        assert sa is sb

    def test_symmetric_cache_swaps(self):
        ds = Dataset(Schema(["X", "Y"]), [["a", "b"], ["b", "a"]])
        store = ColumnStore(ds)
        xy = store.shared_codes("X", "Y")
        yx = store.shared_codes("Y", "X")
        assert np.array_equal(xy[0], yx[1])
        assert np.array_equal(xy[1], yx[0])


class TestSnapshotSemantics:
    def test_store_is_a_snapshot(self, tiny_dataset):
        store = ColumnStore(tiny_dataset)
        before = store.decoded_column("A")
        tiny_dataset.set_value(0, "A", "mutated")
        assert store.decoded_column("A") == before
