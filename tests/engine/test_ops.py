"""Tests for the vectorized relational primitives."""

import numpy as np
import pytest

from repro.engine import ops


def brute_force_intra_pairs(keys):
    """Reference: naive bucket join (first-seen bucket order, i<j pairs)."""
    buckets = {}
    for row, key in enumerate(keys):
        if key >= 0:
            buckets.setdefault(key, []).append(row)
    out = []
    for members in buckets.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                out.append((members[i], members[j]))
    return out


class TestCombineCodes:
    def test_single_column_passthrough(self):
        col = np.array([0, 2, -1, 1])
        combined = ops.combine_codes([col])
        assert combined.tolist() == [0, 2, -1, 1]

    def test_any_null_component_nullifies_key(self):
        a = np.array([0, 0, -1, 1])
        b = np.array([1, -1, 0, 1])
        combined = ops.combine_codes([a, b])
        assert combined[1] == -1
        assert combined[2] == -1
        assert combined[0] >= 0 and combined[3] >= 0

    def test_equal_rows_equal_keys(self):
        a = np.array([0, 1, 0, 1])
        b = np.array([2, 2, 2, 3])
        combined = ops.combine_codes([a, b])
        assert combined[0] == combined[2]
        assert len({combined[0], combined[1], combined[3]}) == 3

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            ops.combine_codes([])


class TestCombineCodesPairwise:
    def test_cross_side_equality(self):
        c1 = [np.array([0, 1, 2]), np.array([5, 5, 5])]
        c2 = [np.array([1, 0, 2]), np.array([5, 5, 6])]
        k1, k2 = ops.combine_codes_pairwise(c1, c2)
        # Row composites: side1 = (0,5),(1,5),(2,5); side2 = (1,5),(0,5),(2,6).
        assert k1[0] == k2[1]
        assert k1[1] == k2[0]
        assert k1[2] != k2[2]

    def test_mismatched_arity_raises(self):
        with pytest.raises(ValueError):
            ops.combine_codes_pairwise([np.array([0])], [])


class TestCounts:
    def test_value_counts_skips_nulls(self):
        codes = np.array([0, 1, 1, -1, 2, 1])
        assert ops.value_counts(codes, 4).tolist() == [1, 3, 1, 0]

    def test_pair_code_counts(self):
        a = np.array([0, 0, 1, 0, -1])
        b = np.array([1, 1, 0, -1, 0])
        rows = ops.pair_code_counts(a, b, cardinality_b=2)
        assert rows.tolist() == [[0, 1, 2], [1, 0, 1]]

    def test_pair_code_counts_empty(self):
        rows = ops.pair_code_counts(np.array([-1]), np.array([0]), 1)
        assert rows.shape == (0, 3)


class TestIntraGroupPairs:
    def test_matches_brute_force_order(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            n = int(rng.integers(0, 40))
            keys = rng.integers(-1, 5, size=n)
            left, right = ops.intra_group_pairs(keys)
            assert list(zip(left.tolist(), right.tolist())) == \
                brute_force_intra_pairs(keys.tolist())

    def test_all_null_yields_nothing(self):
        left, right = ops.intra_group_pairs(np.array([-1, -1, -1]))
        assert len(left) == 0 and len(right) == 0


class TestMatchingPairs:
    @staticmethod
    def brute_force(key1, key2):
        """Reference: the naive asymmetric probe with back-edge dedup."""
        buckets = {}
        for row, key in enumerate(key2):
            if key >= 0:
                buckets.setdefault(key, []).append(row)
        out = []
        for a, key in enumerate(key1):
            if key < 0:
                continue
            for b in buckets.get(key, ()):
                if b > a:
                    out.append((a, b))
                elif b < a and key1[b] != key1[a]:
                    out.append((a, b))
        return out

    def test_matches_naive_probe_with_dedup(self):
        rng = np.random.default_rng(4)
        for _ in range(50):
            n = int(rng.integers(0, 30))
            key1 = rng.integers(-1, 4, size=n)
            key2 = rng.integers(-1, 4, size=n)
            left, right = ops.matching_pairs(key1, key2)
            left, right = ops.dedup_ordered_pairs(left, right, key1)
            assert list(zip(left.tolist(), right.tolist())) == \
                self.brute_force(key1.tolist(), key2.tolist())

    def test_no_self_pairs(self):
        key = np.array([0, 0, 0])
        left, right = ops.matching_pairs(key, key)
        assert not np.any(left == right)
