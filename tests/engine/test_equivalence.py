"""The engine's contract: byte-identical results to the naive oracle.

The naive Python paths (tuple-at-a-time violation detection, row-scan
statistics, Algorithm 2 over them) are kept as the correctness oracle;
every engine backend must reproduce their output *exactly* — same noisy
cells, same violation list in the same order, same pruned domains —
on the paper's generators and on adversarial random datasets.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Operator, Predicate, TupleRef
from repro.core.config import HoloCleanConfig
from repro.core.domain import DomainPruner
from repro.core.pipeline import HoloClean
from repro.data.generators.flights import generate_flights
from repro.data.generators.hospital import generate_hospital
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.dataset.stats import Statistics
from repro.detect.violations import ViolationDetector
from repro.engine import Engine

BACKENDS = ("numpy", "sqlite")


@pytest.fixture(scope="module")
def hospital():
    return generate_hospital(num_rows=320)


@pytest.fixture(scope="module")
def flights():
    return generate_flights(num_flights=12)


def naive_detection(generated):
    return ViolationDetector(generated.constraints).detect(generated.dirty)


# ---------------------------------------------------------------------------
# Violation detection on the paper's generators
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["hospital", "flights"])
def test_violations_identical_on_generators(name, backend, request):
    generated = request.getfixturevalue(name)
    naive = naive_detection(generated)
    engine = Engine(generated.dirty, backend=backend)
    fast = ViolationDetector(generated.constraints,
                             engine=engine).detect(generated.dirty)
    assert fast.noisy_cells == naive.noisy_cells
    # Byte-identical including order: the factor-grounding stages walk the
    # violation list, so ordering is part of the contract.
    assert fast.hypergraph.violations == naive.hypergraph.violations
    assert len(naive.hypergraph) > 0  # the comparison is not vacuous


# ---------------------------------------------------------------------------
# Statistics and Algorithm 2 domains
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["hospital", "flights"])
def test_statistics_identical_on_generators(name, backend, request):
    generated = request.getfixturevalue(name)
    dataset = generated.dirty
    naive = Statistics(dataset)
    fast = Engine(dataset, backend=backend).statistics()
    attrs = dataset.schema.names
    for attr in attrs:
        assert fast.counts(attr) == naive.counts(attr), attr
    for a in attrs[:4]:
        for b in attrs[:4]:
            if a == b:
                continue
            assert fast.pair_counts(a, b) == naive.pair_counts(a, b), (a, b)
            sample = list(naive.counts(b))[:5]
            for given in sample:
                assert (fast.cooccurring_values(a, b, given)
                        == naive.cooccurring_values(a, b, given)), (a, b, given)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["hospital", "flights"])
def test_domains_identical_on_generators(name, backend, request):
    generated = request.getfixturevalue(name)
    dataset = generated.dirty
    noisy = sorted(naive_detection(generated).noisy_cells)
    naive_pruner = DomainPruner(dataset, tau=generated.recommended_tau)
    fast_pruner = DomainPruner(dataset, tau=generated.recommended_tau,
                               engine=Engine(dataset, backend=backend))
    naive_domains = naive_pruner.domains(noisy)
    fast_domains = fast_pruner.domains(noisy)
    # Exact equality: same cells, same candidate lists, same ranking order.
    assert fast_domains == naive_domains
    assert any(len(d) > 1 for d in naive_domains.values())


@pytest.mark.parametrize("backend", BACKENDS)
def test_init_value_relation_identical(backend, flights):
    from repro.core.relations import init_value_relation

    dataset = flights.dirty
    naive = init_value_relation(dataset)
    fast = init_value_relation(dataset, engine=Engine(dataset, backend=backend))
    assert fast == naive
    assert list(fast) == list(naive)  # row-major key order preserved


def test_engine_refresh_invalidates_statistics(flights):
    dataset = flights.dirty.copy()
    engine = Engine(dataset)
    stats = engine.statistics()
    attr = dataset.schema.names[1]
    before = stats.counts(attr)
    old_value = dataset.value(0, attr)
    dataset.set_value(0, attr, "synthetic-new-value")
    engine.refresh()
    after = engine.statistics().counts(attr)
    assert after != before
    assert after["synthetic-new-value"] == 1
    assert after[old_value] == before[old_value] - 1


def test_pathological_join_falls_back_to_naive(monkeypatch):
    # A constant join key explodes quadratically; the guard must reroute
    # to the streaming path and still produce identical violations.
    rows = [["k", str(i % 7)] for i in range(60)]
    dataset = Dataset(Schema(["K", "V"]), rows)
    dc = DenialConstraint([
        Predicate(TupleRef(1, "K"), Operator.EQ, TupleRef(2, "K")),
        Predicate(TupleRef(1, "V"), Operator.NEQ, TupleRef(2, "V")),
    ], name="const_key")
    naive = ViolationDetector([dc]).detect(dataset)
    guarded = ViolationDetector([dc], engine=Engine(dataset),
                                max_engine_pairs=10).detect(dataset)
    assert guarded.hypergraph.violations == naive.hypergraph.violations


# ---------------------------------------------------------------------------
# Full pipeline: engine on/off and across backends
# ---------------------------------------------------------------------------
def test_pipeline_repairs_identical_across_engines(hospital):
    results = {}
    for label, config in {
        "naive": HoloCleanConfig(use_engine=False),
        "numpy": HoloCleanConfig(use_engine=True, engine_backend="numpy"),
        "sqlite": HoloCleanConfig(use_engine=True, engine_backend="sqlite"),
    }.items():
        result = HoloClean(config).repair(hospital.dirty, hospital.constraints)
        results[label] = result
    baseline = results["naive"]
    for label in ("numpy", "sqlite"):
        result = results[label]
        assert result.repaired == baseline.repaired, label
        assert set(result.inferences) == set(baseline.inferences), label


# ---------------------------------------------------------------------------
# Adversarial random datasets (property test)
# ---------------------------------------------------------------------------
VALUE = st.sampled_from(["a", "b", "c", "d", None])
ROWS = st.lists(st.tuples(VALUE, VALUE, VALUE), min_size=0, max_size=14)

RANDOM_DCS = [
    # FD-style symmetric join with inequality residual.
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "A")),
        Predicate(TupleRef(1, "B"), Operator.NEQ, TupleRef(2, "B")),
    ], name="fd_a_b"),
    # Asymmetric join across attributes (exercises shared code spaces).
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "B")),
        Predicate(TupleRef(1, "C"), Operator.NEQ, TupleRef(2, "C")),
    ], name="asym_ab"),
    # Order residual: not vectorizable, exercises the Python fallback.
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "A")),
        Predicate(TupleRef(1, "C"), Operator.GT, TupleRef(2, "C")),
    ], name="order_c"),
]


@settings(max_examples=60, deadline=None)
@given(rows=ROWS)
def test_random_datasets_identical(rows):
    dataset = Dataset(Schema(["A", "B", "C"]), [list(r) for r in rows])
    naive = ViolationDetector(RANDOM_DCS).detect(dataset)
    for backend in BACKENDS:
        engine = Engine(dataset, backend=backend)
        fast = ViolationDetector(RANDOM_DCS, engine=engine).detect(dataset)
        assert fast.noisy_cells == naive.noisy_cells, backend
        assert fast.hypergraph.violations == naive.hypergraph.violations, backend
        if dataset.num_tuples:
            naive_stats = Statistics(dataset)
            fast_stats = engine.statistics()
            for attr in ("A", "B", "C"):
                assert fast_stats.counts(attr) == naive_stats.counts(attr)
            assert (fast_stats.pair_counts("A", "C")
                    == naive_stats.pair_counts("A", "C"))
