"""ParallelBackend: sharded grounding must be byte-identical to the oracle.

Covers the backend registry (self-registration, replacement, config
validation against the live registry), join / domain-join byte-equality
against :class:`NumpyBackend` at several worker counts on the paper's
generators and on hypothesis-random datasets, the enumerator's sharded
streaming path (including oversized-bucket nested-loop blocks), the
broken-pool degradation contract, and full-pipeline equality with
``parallel_workers`` on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import HoloCleanConfig, RepairContext, RepairPlan
from repro.core.domain import DomainPruner
from repro.core.partition import PairEnumerator, VectorPairEnumerator
from repro.data.generators.flights import generate_flights
from repro.data.generators.hospital import generate_hospital
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.detect.violations import ViolationDetector
from repro.engine import Engine, NumpyBackend, make_backend, register_backend
from repro.engine.backend import _BACKENDS, backend_names
from repro.engine.parallel import ParallelBackend
from repro.engine.store import ColumnStore

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def hospital():
    return generate_hospital(num_rows=160)


@pytest.fixture(scope="module")
def flights():
    return generate_flights(num_flights=7)


def join_specs(dataset):
    """Symmetric and asymmetric join shapes over the first few attributes."""
    a, b, c = dataset.schema.names[:3]
    return [
        [(a, a)],
        [(b, b), (c, c)],
        [(a, b)],
        [(b, c), (c, b)],
    ]


# ---------------------------------------------------------------------------
# The backend registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_self_register(self):
        assert {"numpy", "sqlite", "parallel"} <= set(backend_names())

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_backend("", NumpyBackend)

    def test_register_replace_and_config_validation(self, hospital):
        calls = []

        def factory(store, **options):
            calls.append(options)
            return NumpyBackend(store)

        register_backend("test-dummy", factory)
        try:
            assert "test-dummy" in backend_names()
            # Config validation reads the live registry: a just-registered
            # backend is accepted with no core edits.
            config = HoloCleanConfig(engine_backend="test-dummy")
            assert config.engine_backend == "test-dummy"
            store = ColumnStore(hospital.dirty)
            backend = make_backend(store, "test-dummy", flag=1)
            assert isinstance(backend, NumpyBackend)
            assert calls == [{"flag": 1}]
            register_backend("test-dummy", NumpyBackend, replace=True)
            assert isinstance(make_backend(store, "test-dummy"), NumpyBackend)
        finally:
            _BACKENDS.pop("test-dummy", None)

    def test_unknown_backend_raises(self, hospital):
        store = ColumnStore(hospital.dirty)
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_backend(store, "postgres")
        with pytest.raises(ValueError, match="unknown engine backend"):
            HoloCleanConfig(engine_backend="postgres")
        with pytest.raises(ValueError, match="unknown engine backend"):
            Engine(hospital.dirty, backend="duckdb")

    def test_parallel_cannot_wrap_itself(self, hospital):
        store = ColumnStore(hospital.dirty)
        with pytest.raises(ValueError, match="wrap itself"):
            ParallelBackend(store, inner="parallel")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="parallel_workers"):
            HoloCleanConfig(parallel_workers=-1)

    def test_staged_api_exports(self):
        for name in (
            "RepairContext",
            "RepairPlan",
            "DetectStage",
            "CompileStage",
            "LearnStage",
            "InferStage",
            "ApplyStage",
            "RunReport",
            "register_backend",
            "backend_names",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


# ---------------------------------------------------------------------------
# Join byte-equality against the single-process oracle
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("name", ["hospital", "flights"])
def test_join_pairs_identical(name, workers, request):
    dataset = request.getfixturevalue(name).dirty
    store = ColumnStore(dataset)
    oracle = NumpyBackend(store)
    backend = ParallelBackend(store, workers=workers, min_pairs=0)
    try:
        for attrs in join_specs(dataset):
            expected = oracle.join_pairs(attrs)
            actual = backend.join_pairs(attrs)
            assert np.array_equal(actual[0], expected[0]), attrs
            assert np.array_equal(actual[1], expected[1]), attrs
            assert backend.estimated_join_pairs(attrs) == (
                oracle.estimated_join_pairs(attrs)
            )
        if workers >= 2:
            # Work actually fanned out (one-worker plans stay inner).
            assert backend.shard_stats["calls"] > 0
            assert backend.shard_stats["tasks"] >= backend.shard_stats["calls"]
    finally:
        backend.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_domain_join_pairs_identical(workers):
    rng = np.random.default_rng(7)
    # Random memberships normalised to one sorted row per (bucket, tid),
    # with one oversized bucket to exercise uneven shard balancing.
    buckets = rng.integers(0, 40, size=500).astype(np.int64)
    tids = rng.integers(0, 120, size=500).astype(np.int64)
    buckets[:120] = 3
    encoded = np.unique(buckets * 1000 + tids)
    bucket_ids, member_tids = encoded // 1000, encoded % 1000
    store = ColumnStore(Dataset(Schema(["A"]), [["x"]]))
    oracle = NumpyBackend(store)
    backend = ParallelBackend(store, workers=workers, min_pairs=0)
    try:
        expected = oracle.domain_join_pairs(bucket_ids, member_tids)
        actual = backend.domain_join_pairs(bucket_ids, member_tids)
        assert len(expected[0]) > 0
        assert np.array_equal(actual[0], expected[0])
        assert np.array_equal(actual[1], expected[1])
        empty = np.empty(0, dtype=np.int64)
        left, right = backend.domain_join_pairs(empty, empty)
        assert not len(left) and not len(right)
    finally:
        backend.close()


def test_counts_delegate_to_inner(hospital):
    store = ColumnStore(hospital.dirty)
    oracle = NumpyBackend(store)
    backend = ParallelBackend(store, workers=2, min_pairs=0)
    try:
        for attr in hospital.dirty.schema.names[:4]:
            assert np.array_equal(
                backend.value_counts(attr), oracle.value_counts(attr)
            ), attr
        a, b = hospital.dirty.schema.names[:2]
        assert np.array_equal(
            backend.pair_value_counts(a, b), oracle.pair_value_counts(a, b)
        )
        assert backend.shard_stats["calls"] == 0  # counts never fan out
    finally:
        backend.close()


def test_broken_pool_degrades_to_inner(hospital):
    store = ColumnStore(hospital.dirty)
    oracle = NumpyBackend(store)
    backend = ParallelBackend(store, workers=2, min_pairs=0)
    backend._broken = True  # simulate fork / pool / shm failure
    try:
        assert backend.available() is False
        for attrs in join_specs(hospital.dirty):
            expected = oracle.join_pairs(attrs)
            actual = backend.join_pairs(attrs)
            assert np.array_equal(actual[0], expected[0]), attrs
            assert np.array_equal(actual[1], expected[1]), attrs
        # Compiler-level fan-outs report unavailability instead of failing.
        assert backend.dc_feature_batches([(0, 0, "pair")]) is None
        assert backend.factor_chunks([(0, np.zeros(1), np.zeros(1))]) is None
        assert backend.stream_pair_units([("domain", None, None)]) is None
        assert backend.prune_cells([object()], ()) is None
        assert backend.prune_cells([], ()) == []
        assert backend.shard_stats["calls"] == 0
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Sharded enumerator streaming (domain-run and oversized-bucket block units)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("name", ["hospital", "flights"])
def test_enumerator_streams_identical(name, workers, request):
    generated = request.getfixturevalue(name)
    dataset = generated.dirty
    detection = ViolationDetector(generated.constraints).detect(dataset)
    domains = DomainPruner(dataset, tau=generated.recommended_tau).domains(
        sorted(detection.noisy_cells)
    )
    dcs = [dc for dc in generated.constraints if not dc.is_single_tuple]
    naive = PairEnumerator(dataset, domains, max_pairs=97)
    engine = Engine(dataset)
    engine._backend = ParallelBackend(engine.store, workers=workers, min_pairs=0)
    # Tiny chunks force the streaming path everywhere, with nested-loop
    # blocks on buckets whose pair count exceeds chunk_pairs.
    streamed = VectorPairEnumerator(
        engine, dataset, domains, max_pairs=97, chunk_pairs=11, stream_budget=1
    )
    try:
        for dc in dcs:
            for use_partitioning in (False, True):
                expected = list(
                    naive.pairs_for(dc, use_partitioning, detection.hypergraph)
                )
                actual = list(
                    streamed.pairs_for(dc, use_partitioning, detection.hypergraph)
                )
                assert actual == expected, (dc.name, use_partitioning)
        assert streamed.stats["streamed_groups"] > 0
        assert streamed.stats["chunks"] > streamed.stats["streamed_groups"]
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Hypothesis: random datasets, every join shape
# ---------------------------------------------------------------------------
VALUE = st.sampled_from(["a", "b", "c", "10", "9", None])
ROWS = st.lists(st.tuples(VALUE, VALUE, VALUE), min_size=4, max_size=24)


@settings(max_examples=15, deadline=None)
@given(rows=ROWS, workers=st.sampled_from([2, 3]))
def test_random_joins_identical(rows, workers):
    dataset = Dataset(Schema(["A", "B", "C"]), [list(r) for r in rows])
    store = ColumnStore(dataset)
    oracle = NumpyBackend(store)
    backend = ParallelBackend(store, workers=workers, min_pairs=0)
    try:
        for attrs in (
            [("A", "A")],
            [("A", "A"), ("B", "B")],
            [("A", "B")],
            [("B", "C"), ("C", "B")],
        ):
            expected = oracle.join_pairs(attrs)
            actual = backend.join_pairs(attrs)
            assert np.array_equal(actual[0], expected[0]), attrs
            assert np.array_equal(actual[1], expected[1]), attrs
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Full pipeline: parallel_workers must not change a single byte
# ---------------------------------------------------------------------------
def _snapshot(ctx):
    report = ctx.model.size_report()
    return (
        [
            (cell, inf.chosen_value, tuple(inf.domain), inf.marginal.tobytes())
            for cell, inf in ctx.result.inferences.items()
        ],
        ctx.result.repaired._rows,
        {k: v for k, v in report.items() if not k.startswith("grounding_shards")},
    )


@pytest.mark.parametrize("variant", [None, "dc-feats+dc-factors+partitioning"])
def test_pipeline_identical(variant, hospital):
    def config(workers):
        knobs = dict(tau=hospital.recommended_tau, parallel_workers=workers)
        if variant is None:
            return HoloCleanConfig(**knobs)
        return HoloCleanConfig.variant(variant, **knobs)

    def run(workers):
        ctx = RepairContext(
            hospital.dirty.copy(name="hospital"),
            list(hospital.constraints),
            config(workers),
        )
        ctx = RepairPlan.default().run(ctx)
        try:
            return _snapshot(ctx), ctx.model.size_report()
        finally:
            if ctx.engine is not None:
                ctx.engine.close()

    serial, serial_report = run(0)
    parallel, parallel_report = run(2)
    assert parallel == serial
    assert parallel_report["grounding_shards_workers"] == 2
    assert parallel_report["grounding_shards_calls"] > 0
    assert "grounding_shards_calls" not in serial_report
