"""Vectorized featurization must be byte-identical to the naive stack.

The contract of :class:`repro.core.vector_featurize.VectorFeaturizer`:
the engine-grounded :class:`FeatureMatrix` and :class:`FeatureSpace`
reproduce the naive per-(cell, candidate) featurizer loop *exactly* —
same key allocation order, same row order, same per-row entry order and
values — on the paper's generators (leave-one-out and weak-label paths
included) and on adversarial random datasets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, Predicate, TupleRef
from repro.core.compiler import ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.data.generators.flights import generate_flights
from repro.data.generators.hospital import generate_hospital
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.detect.violations import ViolationDetector
from repro.engine import Engine


@pytest.fixture(scope="module")
def hospital():
    return generate_hospital(num_rows=260)


@pytest.fixture(scope="module")
def flights():
    return generate_flights(num_flights=12)


def compile_pair(dataset, constraints, config, backend="numpy"):
    """Compile once naive, once engine-backed, off one shared detection."""
    engine = Engine(dataset, backend=backend)
    detection = ViolationDetector(constraints, engine=engine).detect(dataset)
    naive_config = config.with_(use_engine=False)
    naive = ModelCompiler(dataset, constraints, naive_config, detection).compile()
    compiler = ModelCompiler(dataset, constraints, config, detection, engine=engine)
    return naive, compiler.compile()


def assert_identical(naive, fast):
    """Matrix + space byte-equality, the featurization contract."""
    assert fast.graph.space._keys == naive.graph.space._keys
    assert fast.graph.space.fixed_weights == naive.graph.space.fixed_weights
    mn, mf = naive.graph.matrix, fast.graph.matrix
    for name in ("var_row_start", "row_ptr", "indices", "values"):
        assert np.array_equal(getattr(mf, name), getattr(mn, name)), name
    assert fast.query_ids == naive.query_ids
    assert fast.evidence_ids == naive.evidence_ids
    assert fast.evidence_labels == naive.evidence_labels
    assert fast.grounding["feature_path"] == "vector"
    assert fast.grounding["feature_entries"] == mn.num_entries


# ---------------------------------------------------------------------------
# The paper's generators
# ---------------------------------------------------------------------------
def test_hospital_identical(hospital):
    config = HoloCleanConfig(tau=hospital.recommended_tau)
    naive, fast = compile_pair(hospital.dirty, hospital.constraints, config)
    assert naive.graph.matrix.num_entries > 0
    assert_identical(naive, fast)


def test_hospital_identical_sqlite(hospital):
    config = HoloCleanConfig(tau=hospital.recommended_tau)
    naive, fast = compile_pair(
        hospital.dirty,
        hospital.constraints,
        config,
        backend="sqlite",
    )
    assert_identical(naive, fast)


def test_flights_identical_weak_label_path(flights):
    # Flights: source featurizer + entity groups + the weak-label path
    # (every cell violates something, so evidence is scarce).
    config = HoloCleanConfig(
        tau=flights.recommended_tau,
        source_entity_attributes=flights.source_entity_attributes,
    )
    naive, fast = compile_pair(flights.dirty, flights.constraints, config)
    assert any(key[0] == "src" for key in naive.graph.space._keys)
    assert_identical(naive, fast)


def test_value_tying_identical(flights):
    config = HoloCleanConfig(
        tau=flights.recommended_tau,
        cooccur_tying="value",
        source_entity_attributes=flights.source_entity_attributes,
    )
    naive, fast = compile_pair(flights.dirty, flights.constraints, config)
    assert_identical(naive, fast)


def test_similarity_and_single_tuple_dcs_fall_back(hospital):
    # A binary-similarity DC cannot evaluate in code space (naive
    # fallback), a constant single-tuple DC can; both must stay
    # byte-identical and keep the featurizer's per-row entry order.
    constraints = hospital.constraints + [
        DenialConstraint(
            [
                Predicate(TupleRef(1, "City"), Operator.EQ, TupleRef(2, "City")),
                Predicate(TupleRef(1, "State"), Operator.SIM, TupleRef(2, "State")),
            ],
            name="sim_fallback",
        ),
        DenialConstraint(
            [
                Predicate(TupleRef(1, "State"), Operator.NEQ, Const("AL")),
            ],
            name="single_const",
        ),
    ]
    config = HoloCleanConfig(tau=hospital.recommended_tau)
    naive, fast = compile_pair(hospital.dirty, constraints, config)
    assert fast.grounding["feature_dc_fallbacks"] == 1
    assert_identical(naive, fast)


def test_partner_cap_identical(hospital):
    # A tiny partner cap exercises the first-K-non-self truncation rule.
    config = HoloCleanConfig(tau=hospital.recommended_tau, max_dc_feature_partners=3)
    naive, fast = compile_pair(hospital.dirty, hospital.constraints, config)
    assert_identical(naive, fast)


def test_signal_toggles_identical(hospital):
    config = HoloCleanConfig(
        tau=hospital.recommended_tau,
        use_frequency=False,
        use_dc_feats=False,
        evidence_negatives=0,
    )
    naive, fast = compile_pair(hospital.dirty, hospital.constraints, config)
    assert_identical(naive, fast)


# ---------------------------------------------------------------------------
# Adversarial random datasets (property test)
# ---------------------------------------------------------------------------
VALUE = st.sampled_from(["a", "b", "c", "1", "2", None])
ROWS = st.lists(st.tuples(VALUE, VALUE, VALUE), min_size=1, max_size=14)

RANDOM_DCS = [
    DenialConstraint(
        [
            Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "A")),
            Predicate(TupleRef(1, "B"), Operator.NEQ, TupleRef(2, "B")),
        ],
        name="fd_a_b",
    ),
    # Cross-attribute join: exercises shared code spaces.
    DenialConstraint(
        [
            Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "B")),
            Predicate(TupleRef(1, "C"), Operator.NEQ, TupleRef(2, "C")),
        ],
        name="asym_ab",
    ),
    # Ordering residual under mixed numeric/lexicographic coercion.
    DenialConstraint(
        [
            Predicate(TupleRef(1, "B"), Operator.EQ, TupleRef(2, "B")),
            Predicate(TupleRef(1, "C"), Operator.GT, TupleRef(2, "C")),
        ],
        name="order_c",
    ),
    # Constant predicate plus a no-equijoin constraint (full cross join).
    DenialConstraint(
        [
            Predicate(TupleRef(1, "A"), Operator.NEQ, TupleRef(2, "A")),
            Predicate(TupleRef(1, "B"), Operator.EQ, Const("a")),
        ],
        name="no_equijoin",
    ),
]


@settings(max_examples=50, deadline=None)
@given(rows=ROWS, tau=st.sampled_from([0.0, 0.5]))
def test_random_datasets_identical(rows, tau):
    dataset = Dataset(Schema(["A", "B", "C"]), [list(r) for r in rows])
    config = HoloCleanConfig(tau=tau, max_dc_feature_partners=2)
    naive, fast = compile_pair(dataset, RANDOM_DCS, config)
    assert_identical(naive, fast)
