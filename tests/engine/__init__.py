"""Engine test package."""
