"""VectorPairEnumerator's contract: byte-identical to the naive oracle.

The engine-backed enumerator must reproduce the naive ``PairEnumerator``'s
DC-factor pair stream exactly — same pairs, same order — on the paper's
generators and on adversarial random datasets, for every backend, in both
grounding modes (join-only and Algorithm 3 partitioned), through the
chunked streaming path, and under ``max_pairs`` truncation.  On top of
the streams, engine-grounded factor graphs must equal naively grounded
ones factor for factor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, Predicate, TupleRef
from repro.core.compiler import ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.core.domain import DomainPruner
from repro.core.partition import (
    PairEnumerator,
    VectorPairEnumerator,
    make_pair_enumerator,
)
from repro.data.generators.flights import generate_flights
from repro.data.generators.hospital import generate_hospital
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.detect.violations import ViolationDetector
from repro.engine import Engine

BACKENDS = ("numpy", "sqlite")


@pytest.fixture(scope="module")
def hospital():
    return generate_hospital(num_rows=160)


@pytest.fixture(scope="module")
def flights():
    return generate_flights(num_flights=7)


def prepared(generated):
    """(dataset, detection, domains, two-tuple constraints) for one run."""
    dataset = generated.dirty
    detection = ViolationDetector(generated.constraints).detect(dataset)
    domains = DomainPruner(dataset, tau=generated.recommended_tau).domains(
        sorted(detection.noisy_cells))
    dcs = [dc for dc in generated.constraints if not dc.is_single_tuple]
    return dataset, detection, domains, dcs


# ---------------------------------------------------------------------------
# Identical pair streams on the paper's generators
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["hospital", "flights"])
def test_streams_identical_on_generators(name, backend, request):
    dataset, detection, domains, dcs = prepared(request.getfixturevalue(name))
    naive = PairEnumerator(dataset, domains)
    vector = VectorPairEnumerator(Engine(dataset, backend=backend),
                                  dataset, domains)
    assert dcs, "generators must exercise two-tuple constraints"
    for dc in dcs:
        for use_partitioning in (False, True):
            hypergraph = detection.hypergraph
            expected = list(naive.pairs_for(dc, use_partitioning, hypergraph))
            actual = list(vector.pairs_for(dc, use_partitioning, hypergraph))
            # Exact equality, order included: grounding walks this stream.
            assert actual == expected, (dc.name, use_partitioning)
            assert expected, dc.name  # the comparison is not vacuous


@pytest.mark.parametrize("backend", BACKENDS)
def test_chunked_path_identical(backend, hospital):
    """A tiny chunk size forces the streaming path on every group."""
    dataset, detection, domains, dcs = prepared(hospital)
    naive = PairEnumerator(dataset, domains)
    chunked = VectorPairEnumerator(Engine(dataset, backend=backend),
                                   dataset, domains,
                                   chunk_pairs=7, stream_budget=1)
    for dc in dcs:
        for use_partitioning in (False, True):
            expected = list(naive.pairs_for(dc, use_partitioning,
                                            detection.hypergraph))
            actual = list(chunked.pairs_for(dc, use_partitioning,
                                            detection.hypergraph))
            assert actual == expected, (dc.name, use_partitioning)
    assert chunked.stats["streamed_groups"] > 0
    assert chunked.stats["chunks"] > chunked.stats["streamed_groups"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_max_pairs_truncation_identical(backend, hospital):
    dataset, detection, domains, dcs = prepared(hospital)
    naive = PairEnumerator(dataset, domains, max_pairs=97)
    vector = VectorPairEnumerator(Engine(dataset, backend=backend),
                                  dataset, domains, max_pairs=97)
    streamed = VectorPairEnumerator(Engine(dataset, backend=backend),
                                    dataset, domains, max_pairs=97,
                                    chunk_pairs=11, stream_budget=1)
    for dc in dcs:
        for use_partitioning in (False, True):
            expected = list(naive.pairs_for(dc, use_partitioning,
                                            detection.hypergraph))
            assert len(expected) <= 97
            assert expected == list(vector.pairs_for(
                dc, use_partitioning, detection.hypergraph))
            assert expected == list(streamed.pairs_for(
                dc, use_partitioning, detection.hypergraph))


def test_pair_chunks_concatenation_matches_stream(hospital):
    dataset, detection, domains, dcs = prepared(hospital)
    vector = VectorPairEnumerator(Engine(dataset), dataset, domains)
    for dc in dcs[:3]:
        expected = list(vector.pairs_for(dc, True, detection.hypergraph))
        chunks = list(vector.pair_chunks(
            dc, use_partitioning=True, hypergraph=detection.hypergraph))
        flattened = [(int(a), int(b)) for left, right in chunks
                     for a, b in zip(left.tolist(), right.tolist())]
        assert flattened == expected


def test_join_pairs_restricted_matches_naive(hospital):
    dataset, detection, domains, dcs = prepared(hospital)
    naive = PairEnumerator(dataset, domains)
    vector = VectorPairEnumerator(Engine(dataset), dataset, domains)
    dc = dcs[0]
    component = next(iter(
        detection.hypergraph.tuple_components(dc.name)))
    restricted = frozenset(component)
    assert (list(vector.join_pairs(dc, restrict_to=restricted))
            == list(naive.join_pairs(dc, restrict_to=restricted)))


def test_non_equijoin_fallback_matches_naive_and_counts_pairs():
    rows = [[str(i % 4), str(i % 3)] for i in range(9)]
    dataset = Dataset(Schema(["A", "B"]), rows)
    dc = DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.LT, TupleRef(2, "A")),
        Predicate(TupleRef(1, "B"), Operator.NEQ, TupleRef(2, "B")),
    ], name="no_equijoin")
    detection = ViolationDetector([dc]).detect(dataset)
    naive = PairEnumerator(dataset, {})
    vector = VectorPairEnumerator(Engine(dataset), dataset, {},
                                  chunk_pairs=5)
    for use_partitioning in (False, True):
        expected = list(naive.pairs_for(dc, use_partitioning,
                                        detection.hypergraph))
        assert expected == list(vector.pairs_for(dc, use_partitioning,
                                                 detection.hypergraph))
    # The all-pairs fallback participates in the stats bookkeeping too
    # (size_report's grounding_pairs relies on it).
    total = sum(len(list(naive.pairs_for(dc, p, detection.hypergraph)))
                for p in (False, True))
    assert vector.stats["pairs"] == total > 0


def test_make_pair_enumerator_dispatch(hospital):
    dataset = hospital.dirty
    engine = Engine(dataset)
    assert isinstance(make_pair_enumerator(dataset, {}, engine=engine),
                      VectorPairEnumerator)
    naive = make_pair_enumerator(dataset, {}, engine=None)
    assert type(naive) is PairEnumerator
    # An engine built over a different dataset must not be used.
    other = hospital.clean.copy()
    assert type(make_pair_enumerator(other, {}, engine=engine)) \
        is PairEnumerator


def test_enumerator_rejects_foreign_engine(hospital):
    engine = Engine(hospital.dirty)
    with pytest.raises(ValueError, match="different dataset"):
        VectorPairEnumerator(engine, hospital.clean.copy(), {})


# ---------------------------------------------------------------------------
# Factor graphs: engine grounding must equal naive grounding byte for byte
# ---------------------------------------------------------------------------
def factor_signature(graph):
    return [
        (factor.constraint_name, factor.var_ids, factor.weight,
         factor.table.shape, factor.table.tobytes())
        for factor in graph.factors
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("use_partitioning", [False, True])
def test_factor_graphs_identical(backend, use_partitioning, hospital):
    dataset = hospital.dirty
    detection = ViolationDetector(hospital.constraints).detect(dataset)
    config = HoloCleanConfig(use_dc_factors=True,
                             use_partitioning=use_partitioning,
                             tau=hospital.recommended_tau)
    naive_model = ModelCompiler(dataset, hospital.constraints,
                                config.with_(use_engine=False), detection,
                                engine=None).compile()
    engine = Engine(dataset, backend=backend)
    engine_model = ModelCompiler(dataset, hospital.constraints,
                                 config.with_(engine_backend=backend),
                                 detection, engine=engine).compile()
    naive_factors = factor_signature(naive_model.graph)
    engine_factors = factor_signature(engine_model.graph)
    assert len(naive_factors) > 0
    # Same factors, same order — the grounded graphs are byte-identical.
    assert engine_factors == naive_factors
    assert engine_model.skipped_factors == naive_model.skipped_factors
    assert engine_model.grounding["pairs"] == naive_model.grounding["pairs"]
    assert engine_model.grounding["enumerator"] == "VectorPairEnumerator"
    assert naive_model.grounding["enumerator"] == "PairEnumerator"
    # Every enumerated pair went through the batched table builder (no
    # silent fallback to the per-pair loop).
    assert (engine_model.grounding["table_pairs"]
            == engine_model.grounding["pairs"] > 0)


# ---------------------------------------------------------------------------
# Vectorized factor-table construction: byte-identical grounded graphs
# ---------------------------------------------------------------------------
# Values mix numerics, strings, and numeric-looking strings whose numeric
# and lexicographic orders disagree ("10" < "9" as strings) — the
# adversarial cases for code-space inequality evaluation — plus NULLs.
TABLE_VALUE = st.sampled_from(["1", "2", "10", "9", "5a", None])
TABLE_ROWS = st.lists(st.tuples(TABLE_VALUE, TABLE_VALUE, TABLE_VALUE),
                      min_size=2, max_size=14)

TABLE_DCS = [
    # FD-style symmetric join with inequality residual.
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "A")),
        Predicate(TupleRef(1, "B"), Operator.NEQ, TupleRef(2, "B")),
    ], name="fd_a_b"),
    # Ordering predicate across tuples (OrderKeys, mixed coercion).
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "A")),
        Predicate(TupleRef(1, "C"), Operator.LT, TupleRef(2, "C")),
    ], name="ord_c"),
    # Cross-attribute join plus a constant ordering predicate.
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "B")),
        Predicate(TupleRef(1, "C"), Operator.GTE, Const("2")),
    ], name="cross_const"),
    # Same-tuple ordering inside a two-tuple constraint.
    DenialConstraint([
        Predicate(TupleRef(1, "B"), Operator.EQ, TupleRef(2, "B")),
        Predicate(TupleRef(1, "A"), Operator.GT, TupleRef(1, "C")),
    ], name="same_tuple_ord"),
    # Single-tuple constraint (grounded per tuple, not per pair).
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(1, "B")),
    ], name="single_ab"),
]


@settings(max_examples=30, deadline=None)
@given(rows=TABLE_ROWS, max_table=st.sampled_from([1, 6, 4096]),
       use_partitioning=st.booleans())
def test_vectorized_tables_match_naive(rows, max_table, use_partitioning):
    """Engine-grounded factor graphs equal the per-pair oracle byte for
    byte — table contents, var-id order, and skip counts — across NULLs,
    inequality predicates, single-tuple DCs, and ``max_factor_table``
    caps."""
    dataset = Dataset(Schema(["A", "B", "C"]), [list(r) for r in rows])
    detection = ViolationDetector(TABLE_DCS).detect(dataset)
    config = HoloCleanConfig(use_dc_factors=True,
                             use_partitioning=use_partitioning,
                             tau=0.1, max_factor_table=max_table)
    naive_model = ModelCompiler(dataset, TABLE_DCS,
                                config.with_(use_engine=False), detection,
                                engine=None).compile()
    expected = factor_signature(naive_model.graph)
    for backend in BACKENDS:
        engine = Engine(dataset, backend=backend)
        engine_model = ModelCompiler(dataset, TABLE_DCS,
                                     config.with_(engine_backend=backend),
                                     detection, engine=engine).compile()
        assert factor_signature(engine_model.graph) == expected, \
            (backend, max_table, use_partitioning)
        assert engine_model.skipped_factors == naive_model.skipped_factors
        assert (engine_model.grounding["pairs"]
                == naive_model.grounding["pairs"])


def test_binary_similarity_falls_back_to_oracle():
    """Constraints the builder cannot vectorize (binary similarity) still
    ground identically through the per-pair fallback."""
    rows = [["x", "Chicago"], ["x", "Chicagoo"], ["x", "Boston"],
            ["y", "Chicago"], ["y", "Chicagoo"], ["x", None]]
    dataset = Dataset(Schema(["A", "B"]), rows)
    dc = DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "A")),
        Predicate(TupleRef(1, "B"), Operator.SIM, TupleRef(2, "B")),
        Predicate(TupleRef(1, "B"), Operator.NEQ, TupleRef(2, "B")),
    ], name="sim_dc")
    detection = ViolationDetector([dc]).detect(dataset)
    config = HoloCleanConfig(use_dc_factors=True, tau=0.1)
    naive_model = ModelCompiler(dataset, [dc],
                                config.with_(use_engine=False), detection,
                                engine=None).compile()
    engine_model = ModelCompiler(dataset, [dc], config, detection,
                                 engine=Engine(dataset)).compile()
    assert factor_signature(engine_model.graph) \
        == factor_signature(naive_model.graph)
    assert len(engine_model.graph.factors) > 0
    # The vectorized builder never saw these pairs.
    assert engine_model.grounding["table_pairs"] == 0
    assert engine_model.grounding["pairs"] > 0


# ---------------------------------------------------------------------------
# Adversarial random datasets (property tests)
# ---------------------------------------------------------------------------
VALUE = st.sampled_from(["a", "b", "c", "d", None])
ROWS = st.lists(st.tuples(VALUE, VALUE, VALUE), min_size=0, max_size=12)
# Random candidate domains, including values absent from the dataset.
DOMAIN_VALUE = st.sampled_from(["a", "b", "c", "d", "zz-unseen"])
DOMAINS = st.dictionaries(
    st.tuples(st.integers(min_value=0, max_value=11),
              st.sampled_from(["A", "B", "C"])),
    st.lists(DOMAIN_VALUE, min_size=0, max_size=3, unique=True),
    max_size=8)

RANDOM_DCS = [
    # FD-style symmetric join with inequality residual.
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "A")),
        Predicate(TupleRef(1, "B"), Operator.NEQ, TupleRef(2, "B")),
    ], name="fd_a_b"),
    # Asymmetric join across attributes (exercises shared codebooks).
    DenialConstraint([
        Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "B")),
        Predicate(TupleRef(1, "C"), Operator.NEQ, TupleRef(2, "C")),
    ], name="asym_ab"),
]


@settings(max_examples=40, deadline=None)
@given(rows=ROWS, raw_domains=DOMAINS)
def test_random_datasets_identical(rows, raw_domains):
    dataset = Dataset(Schema(["A", "B", "C"]), [list(r) for r in rows])
    domains = {Cell(tid, attr): list(dom)
               for (tid, attr), dom in raw_domains.items()
               if tid < dataset.num_tuples}
    detection = ViolationDetector(RANDOM_DCS).detect(dataset)
    naive = PairEnumerator(dataset, domains)
    for backend in BACKENDS:
        engine = Engine(dataset, backend=backend)
        vector = VectorPairEnumerator(engine, dataset, domains)
        chunked = VectorPairEnumerator(engine, dataset, domains,
                                       chunk_pairs=3, stream_budget=1)
        for dc in RANDOM_DCS:
            for use_partitioning in (False, True):
                expected = list(naive.pairs_for(dc, use_partitioning,
                                                detection.hypergraph))
                assert expected == list(vector.pairs_for(
                    dc, use_partitioning, detection.hypergraph)), \
                    (backend, dc.name, use_partitioning)
                assert expected == list(chunked.pairs_for(
                    dc, use_partitioning, detection.hypergraph)), \
                    (backend, dc.name, use_partitioning, "chunked")


# ---------------------------------------------------------------------------
# The engine pipeline end to end with DC factors on
# ---------------------------------------------------------------------------
def test_grounding_report_in_size_report(hospital):
    from repro.core.pipeline import HoloClean

    config = HoloCleanConfig(use_dc_factors=True, use_partitioning=True,
                             tau=hospital.recommended_tau, epochs=5,
                             gibbs_burn_in=2, gibbs_sweeps=4)
    result = HoloClean(config).repair(hospital.dirty, hospital.constraints)
    assert result.size_report["grounding_enumerator"] == "VectorPairEnumerator"
    assert result.size_report["grounding_pairs"] > 0
