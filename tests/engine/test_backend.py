"""Backend interchangeability: NumPy and SQLite must agree byte-for-byte."""

import numpy as np
import pytest

from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.engine import Engine, make_backend
from repro.engine.backend import Backend, NumpyBackend, SQLiteBackend
from repro.engine.store import ColumnStore


@pytest.fixture
def dataset() -> Dataset:
    return Dataset(Schema(["Zip", "City", "State"]), [
        ["60608", "Chicago", "IL"],
        ["60608", "Chicago", "IL"],
        ["60608", "Cicago", "IL"],
        ["02134", "Boston", "MA"],
        [None, "Boston", "MA"],
        ["02134", None, "MA"],
        ["60601", "Chicago", "IL"],
    ])


@pytest.fixture
def backends(dataset):
    store = ColumnStore(dataset)
    return NumpyBackend(store), SQLiteBackend(store)


class TestAgreement:
    def test_value_counts_agree(self, dataset, backends):
        np_be, sql_be = backends
        for attr in dataset.schema.names:
            assert np.array_equal(np_be.value_counts(attr),
                                  sql_be.value_counts(attr)), attr

    def test_pair_value_counts_agree(self, dataset, backends):
        np_be, sql_be = backends
        names = dataset.schema.names
        for a in names:
            for b in names:
                if a == b:
                    continue
                assert np.array_equal(np_be.pair_value_counts(a, b),
                                      sql_be.pair_value_counts(a, b)), (a, b)

    def test_symmetric_join_pairs_agree(self, backends):
        np_be, sql_be = backends
        for attrs in ([("Zip", "Zip")], [("City", "City")],
                      [("Zip", "Zip"), ("City", "City")]):
            np_pairs = np_be.join_pairs(attrs)
            sql_pairs = sql_be.join_pairs(attrs)
            assert np.array_equal(np_pairs[0], sql_pairs[0]), attrs
            assert np.array_equal(np_pairs[1], sql_pairs[1]), attrs

    def test_asymmetric_join_pairs_agree(self, backends):
        np_be, sql_be = backends
        for attrs in ([("Zip", "City")], [("City", "State")],
                      [("Zip", "City"), ("City", "Zip")]):
            np_pairs = np_be.join_pairs(attrs)
            sql_pairs = sql_be.join_pairs(attrs)
            assert np.array_equal(np_pairs[0], sql_pairs[0]), attrs
            assert np.array_equal(np_pairs[1], sql_pairs[1]), attrs


class TestSemantics:
    def test_symmetric_pairs_skip_null_keys(self, backends):
        for backend in backends:
            left, right = backend.join_pairs([("Zip", "Zip")])
            pairs = set(zip(left.tolist(), right.tolist()))
            # Row 4 has a NULL zip: it must never join.
            assert all(4 not in pair for pair in pairs)
            assert (0, 1) in pairs and (3, 5) in pairs

    def test_counts_exclude_nulls(self, backends):
        for backend in backends:
            counts = backend.value_counts("Zip")
            assert int(counts.sum()) == 6  # 7 rows, one NULL


class TestFactory:
    def test_make_backend_names(self, dataset):
        store = ColumnStore(dataset)
        assert isinstance(make_backend(store, "numpy"), NumpyBackend)
        assert isinstance(make_backend(store, "sqlite"), SQLiteBackend)

    def test_unknown_backend_raises(self, dataset):
        store = ColumnStore(dataset)
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_backend(store, "postgres")

    def test_backends_satisfy_protocol(self, backends):
        for backend in backends:
            assert isinstance(backend, Backend)

    def test_engine_validates_backend_name(self, dataset):
        with pytest.raises(ValueError, match="unknown engine backend"):
            Engine(dataset, backend="duckdb")


class TestEngineFacade:
    def test_lazy_build_and_refresh(self, dataset):
        engine = Engine(dataset)
        store = engine.store
        assert engine.store is store  # cached
        engine.refresh()
        assert engine.store is not store  # re-encoded

    def test_statistics_shared_instance(self, dataset):
        engine = Engine(dataset)
        assert engine.statistics() is engine.statistics()
