"""Byte-equality of the vectorized Algorithm 2 path against its oracles.

:class:`VectorDomainPruner` (plus the weak-label vote and evidence
negative-merge helpers in ``core/vector_domain.py``) must reproduce the
naive per-cell implementations *exactly* — same candidate sets, same
ordering, same tie-breaks — on NULL-heavy data, score ties, ``max_domain``
truncation displacing the observed value, the ``active`` strategy, and
the empty-domain most-common fallback.  A full-pipeline test pins the
``vector_domains`` knob end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HoloCleanConfig, RepairContext, RepairPlan
from repro.core.compiler import ModelCompiler
from repro.core.domain import DomainPruner
from repro.core.featurize import FeaturizationContext
from repro.core.vector_domain import (
    EntityVoteModes,
    VectorDomainPruner,
    _lex_rank_table,
    merged_negative_domains,
)
from repro.data.generators.flights import generate_flights
from repro.data.generators.hospital import generate_hospital
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.dataset.stats import Statistics
from repro.detect.violations import ViolationDetector
from repro.engine import Engine

# Few distinct values over few attributes: ties, NULL-heavy tuples, and
# shared co-occurrence structure are all likely under sampling.
VALUE = st.sampled_from(["a", "b", "c", "10", "9", None])
ROWS = st.lists(st.tuples(VALUE, VALUE, VALUE), min_size=1, max_size=24)


def all_cells(dataset):
    return [
        Cell(tid, attr)
        for tid in range(dataset.num_tuples)
        for attr in dataset.schema.data_attributes
    ]


def naive_for(dataset, **knobs):
    return DomainPruner(dataset, Statistics(dataset), **knobs)


class TestByteEquality:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=ROWS,
        tau=st.sampled_from([0.0, 0.3, 0.5, 0.9, 1.0]),
        max_domain=st.integers(min_value=1, max_value=5),
        strategy=st.sampled_from(["cooccurrence", "active"]),
    )
    def test_matches_naive_oracle(self, rows, tau, max_domain, strategy):
        dataset = Dataset(Schema(["A", "B", "C"]), [list(r) for r in rows])
        naive = naive_for(dataset, tau=tau, max_domain=max_domain, strategy=strategy)
        vector = VectorDomainPruner(
            Engine(dataset),
            tau=tau,
            max_domain=max_domain,
            strategy=strategy,
        )
        cells = all_cells(dataset)
        assert vector.prune(cells) == [naive.candidates(c) for c in cells]
        assert vector.domains(cells) == naive.domains(cells)

    def test_score_ties_break_lexicographically(self):
        # Pr[x|k] = Pr[y|k] = 1/3: the tie must break on the value string.
        dataset = Dataset(Schema(["K", "V"]), [["k", "y"], ["k", "x"], ["k", None]])
        naive = naive_for(dataset, tau=0.1)
        vector = VectorDomainPruner(Engine(dataset), tau=0.1)
        cell = Cell(2, "V")  # no init: only the tied conditionals remain
        assert naive.candidates(cell) == ["x", "y"]
        assert vector.candidates(cell) == ["x", "y"]
        cell = Cell(0, "V")  # init "y" at 1.0 outranks the tie
        expected = naive.candidates(cell)
        assert expected == ["y", "x"]
        assert vector.candidates(cell) == expected

    def test_truncation_displacing_init(self):
        rows = [["k", f"v{i}"] for i in range(10) for _ in range(2)]
        rows.append(["k", "rare"])
        dataset = Dataset(Schema(["K", "V"]), rows)
        naive = naive_for(dataset, tau=0.0, max_domain=3)
        vector = VectorDomainPruner(Engine(dataset), tau=0.0, max_domain=3)
        cell = Cell(20, "V")  # "rare" ranks past the cut; forced back
        expected = naive.candidates(cell)
        assert len(expected) == 3 and "rare" in expected
        assert vector.candidates(cell) == expected

    def test_null_context_most_common_fallback(self):
        dataset = Dataset(
            Schema(["A", "B"]),
            [["x", "common"], ["x", "common"], ["x", "rare"], [None, None]],
        )
        naive = naive_for(dataset, tau=0.5)
        vector = VectorDomainPruner(Engine(dataset), tau=0.5)
        cell = Cell(3, "B")  # no init, no context: most-common fallback
        assert naive.candidates(cell) == ["common"]
        assert vector.candidates(cell) == ["common"]

    def test_fully_null_attribute_prunes_to_nothing(self):
        dataset = Dataset(Schema(["A", "B"]), [["x", None], ["y", None]])
        naive = naive_for(dataset, tau=0.5)
        vector = VectorDomainPruner(Engine(dataset), tau=0.5)
        cells = [Cell(0, "B"), Cell(1, "B")]
        assert vector.prune(cells) == [naive.candidates(c) for c in cells]
        assert vector.domains(cells) == {} == naive.domains(cells)

    def test_active_strategy_generators(self):
        for generated in (
            generate_hospital(num_rows=80),
            generate_flights(num_flights=5),
        ):
            dataset = generated.dirty
            naive = naive_for(dataset, strategy="active", max_domain=6)
            vector = VectorDomainPruner(
                Engine(dataset),
                strategy="active",
                max_domain=6,
            )
            cells = all_cells(dataset)
            assert vector.prune(cells) == [naive.candidates(c) for c in cells]

    def test_unknown_strategy_rejected(self):
        dataset = Dataset(Schema(["A"]), [["x"]])
        with pytest.raises(ValueError, match="unknown domain strategy"):
            VectorDomainPruner(Engine(dataset), strategy="oracle")

    def test_prune_counters_accumulate(self):
        generated = generate_hospital(num_rows=60)
        vector = VectorDomainPruner(Engine(generated.dirty))
        cells = all_cells(generated.dirty)[:40]
        pruned = vector.prune(cells)
        assert vector.stats["prune_path"] == "vector"
        assert vector.stats["prune_cells"] == 40
        assert vector.stats["prune_candidates"] == sum(len(d) for d in pruned)


class TestWeakLabelVotes:
    def test_modes_match_entity_group_plurality(self):
        generated = generate_flights(num_flights=8)
        dataset = generated.dirty
        config = HoloCleanConfig(
            tau=generated.recommended_tau,
            source_entity_attributes=generated.source_entity_attributes,
        )
        engine = Engine(dataset)
        context = FeaturizationContext(dataset, engine.statistics(), config)
        voter = EntityVoteModes(engine, list(config.source_entity_attributes))
        store = engine.store
        for attr in dataset.schema.data_attributes:
            tids = np.arange(dataset.num_tuples)
            modes = voter.modes(attr, tids, _lex_rank_table(store.values(attr)))
            values = store.values(attr)
            index = dataset.schema.index_of(attr)
            for tid, code in zip(tids.tolist(), modes.tolist()):
                group = context.entity_group_of(int(tid))
                expected = None
                if len(group) >= 3:
                    votes: dict[str, int] = {}
                    for member in group:
                        value = dataset.row_ref(member)[index]
                        if value is not None:
                            votes[value] = votes.get(value, 0) + 1
                    if votes:
                        expected = max(sorted(votes), key=lambda v: votes[v])
                assert (values[code] if code >= 0 else None) == expected


class TestNegativeMerge:
    @settings(max_examples=25, deadline=None)
    @given(
        rows=ROWS,
        wanted=st.integers(min_value=0, max_value=4),
        max_domain=st.integers(min_value=1, max_value=6),
    )
    def test_matches_with_negatives(self, rows, wanted, max_domain):
        dataset = Dataset(Schema(["A", "B", "C"]), [list(r) for r in rows])
        engine = Engine(dataset)
        stats = engine.statistics()
        config = HoloCleanConfig(evidence_negatives=wanted, max_domain=max_domain)
        compiler = ModelCompiler(
            dataset,
            [],
            config,
            ViolationDetector([]).detect(dataset),
            engine=engine,
        )
        pruner = VectorDomainPruner(engine, tau=0.3, max_domain=max_domain)
        cells = all_cells(dataset)
        domains = pruner.prune(cells)
        expected = [
            compiler._with_negatives(cell, list(domain))
            for cell, domain in zip(cells, domains)
        ]
        merged = merged_negative_domains(
            engine,
            stats,
            cells,
            [list(d) for d in domains],
            wanted,
            max_domain,
        )
        assert merged == expected


class TestPipelineParity:
    @pytest.fixture(scope="class")
    def hospital(self):
        return generate_hospital(num_rows=120)

    def _run(self, generated, **knobs):
        context = RepairContext(
            generated.dirty.copy(name="hospital"),
            list(generated.constraints),
            HoloCleanConfig(tau=generated.recommended_tau, **knobs),
        )
        context = RepairPlan.default().run(context)
        try:
            snapshot = (
                [
                    (cell, inf.chosen_value, tuple(inf.domain), inf.marginal.tobytes())
                    for cell, inf in context.result.inferences.items()
                ],
                context.result.repaired._rows,
            )
            return snapshot, context.model.size_report()
        finally:
            if context.engine is not None:
                context.engine.close()

    def test_vector_domains_off_is_byte_identical(self, hospital):
        vector, vector_report = self._run(hospital)
        naive, naive_report = self._run(hospital, vector_domains=False)
        assert vector == naive
        assert vector_report["grounding_prune_path"] == "vector"
        assert vector_report["grounding_prune_cells"] > 0
        assert vector_report["grounding_prune_candidates"] > 0
        assert "grounding_prune_path" not in naive_report

    def test_parallel_workers_share_prune_counters(self, hospital):
        serial, serial_report = self._run(hospital)
        parallel, parallel_report = self._run(hospital, parallel_workers=2)
        assert parallel == serial
        for key in (
            "grounding_prune_path",
            "grounding_prune_cells",
            "grounding_prune_candidates",
        ):
            assert parallel_report[key] == serial_report[key]
