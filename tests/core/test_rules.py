"""Tests for the DDlog rule rendering (Algorithm 1 / Example 4 / Example 6)."""

from repro.constraints.parser import parse_dc
from repro.core import rules


class TestBasicRules:
    def test_random_variable_rule(self):
        assert rules.random_variable_rule() == \
            "Value?(t, a, d) :- Domain(t, a, d)"

    def test_quantitative_rule_has_parameterised_weight(self):
        assert "weight = w(d, f)" in rules.quantitative_statistics_rule()

    def test_external_rule_weight_per_dictionary(self):
        assert "weight = w(k)" in rules.external_data_rule()

    def test_minimality_rule_constant_weight(self):
        assert rules.minimality_rule().endswith("weight = w")


class TestDcFactorRule:
    def test_example4_structure(self):
        dc = parse_dc("t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.State,t2.State)")
        rule = rules.dc_factor_rule(dc, weight=2.0)
        assert rule.startswith("!(")
        assert "Value?(t1, Zip, v1)" in rule
        assert "Value?(t2, Zip, v2)" in rule
        assert "Value?(t1, State, v3)" in rule
        assert "Value?(t2, State, v4)" in rule
        assert "Tuple(t1), Tuple(t2)" in rule
        assert "v1 = v2" in rule and "v3 != v4" in rule
        assert rule.endswith("weight = 2.0")

    def test_constant_predicate(self):
        dc = parse_dc('t1&EQ(t1.State,"XX")')
        rule = rules.dc_factor_rule(dc)
        assert 'v1 = "XX"' in rule
        assert "Tuple(t2)" not in rule


class TestRelaxedRules:
    def test_example6_one_rule_per_cell_reference(self):
        dc = parse_dc("t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.State,t2.State)")
        relaxed = rules.relaxed_dc_rules(dc)
        # Four Value? atoms in Example 4 → four relaxed rules.
        assert len(relaxed) == 4
        heads = [r.split(" :- ")[0] for r in relaxed]
        assert "!Value?(t1, Zip, v1)" in heads
        assert "!Value?(t2, State" in " ".join(heads)

    def test_relaxed_rules_use_init_value_bodies(self):
        dc = parse_dc("t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.State,t2.State)")
        first = rules.relaxed_dc_rules(dc)[0]
        assert first.count("InitValue(") == 3  # all other cells
        assert "t1 != t2" in first
        assert first.endswith("weight = w")  # learnable


class TestProgram:
    def test_composition_flags(self):
        dc = parse_dc("t1&t2&EQ(t1.A,t2.A)&IQ(t1.B,t2.B)")
        program = rules.compile_program(
            [dc], use_dc_feats=True, use_dc_factors=True,
            use_external=True, use_minimality=True, dc_factor_weight=3.0)
        text = "\n".join(program)
        assert "Matched" in text
        assert "InitValue(t, a, d)" in text
        assert "weight = 3.0" in text
        assert text.count("!Value?") == 4  # relaxed rules

    def test_minimal_program(self):
        program = rules.compile_program([], use_minimality=False)
        assert len(program) == 2  # variable rule + statistics rule
