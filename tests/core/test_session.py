"""Tests for the interactive repair session (Section 2.2 feedback loop)."""

import numpy as np
import pytest

from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.core.session import RepairSession
from repro.dataset.dataset import Cell


@pytest.fixture
def session(figure1_dataset, figure1_constraints):
    return RepairSession(figure1_dataset, figure1_constraints,
                         config=HoloCleanConfig(tau=0.3, epochs=30, seed=1))


class TestRun:
    def test_run_matches_pipeline_behaviour(self, session):
        result = session.run()
        assert result.inferences[Cell(0, "Zip")].chosen_value == "60608"
        assert result.inferences[Cell(3, "City")].chosen_value == "Chicago"

    def test_rerun_without_run_runs(self, session):
        result = session.rerun()
        assert result.inferences

    def test_run_identical_to_facade(self, session, figure1_dataset,
                                     figure1_constraints):
        """A feedback-free session is byte-identical to HoloClean.repair()."""
        mine = session.run()
        theirs = HoloClean(session.config).repair(figure1_dataset,
                                                  figure1_constraints)
        assert set(mine.inferences) == set(theirs.inferences)
        for cell, want in theirs.inferences.items():
            got = mine.inferences[cell]
            assert got.chosen_value == want.chosen_value
            assert got.confidence == want.confidence
            assert got.domain == want.domain
            np.testing.assert_array_equal(got.marginal, want.marginal)
        assert mine.repaired == theirs.repaired
        assert mine.size_report == theirs.size_report
        assert mine.training_losses == theirs.training_losses

    def test_session_uses_engine_fast_path(self, session):
        """Sessions thread the Engine into detection/compilation/featurization
        — pinned by the grounding counters only the engine path emits."""
        result = session.run()
        assert session.context.engine is not None
        assert any(str(key).startswith("grounding_")
                   for key in result.size_report)

    def test_results_report_phase_timings(self, session):
        first = session.run()
        assert set(first.timings) == {"detect", "compile", "repair"}
        assert all(t >= 0 for t in first.timings.values())
        session.feedback(Cell(0, "Zip"), "60608")
        second = session.rerun()
        # Re-runs keep the detect/compile wall-clock of the original run
        # and refresh the learning+inference phase.
        assert set(second.timings) == {"detect", "compile", "repair"}
        assert second.timings["detect"] == first.timings["detect"]

    def test_rerun_reuses_detection_and_model(self, session):
        session.run()
        detection = session.context.detection
        model = session.context.model
        session.rerun()
        assert session.context.detection is detection
        assert session.context.model is model


class TestReviewQueue:
    def test_low_confidence_requires_run(self, session):
        with pytest.raises(RuntimeError, match="run"):
            session.low_confidence()

    def test_low_confidence_sorted_ascending(self, session):
        session.run()
        queue = session.low_confidence(below=1.01)
        confidences = [inf.confidence for inf in queue]
        assert confidences == sorted(confidences)

    def test_threshold_filters(self, session):
        session.run()
        assert all(inf.confidence < 0.9
                   for inf in session.low_confidence(below=0.9))


class TestFeedback:
    def test_feedback_clamps_cell(self, session):
        session.run()
        cell = Cell(0, "Zip")
        session.feedback(cell, "60609")  # user insists the original is right
        result = session.rerun()
        assert result.inferences[cell].chosen_value == "60609"
        assert result.inferences[cell].confidence == 1.0
        assert result.repaired.value(0, "Zip") == "60609"

    def test_feedback_outside_domain_applied_directly(self, session):
        session.run()
        cell = Cell(3, "City")
        session.feedback(cell, "Evanston")  # not a candidate
        result = session.rerun()
        assert result.repaired.value(3, "City") == "Evanston"
        assert result.inferences[cell].confidence == 1.0

    def test_feedback_on_unknown_cell_rejected(self, session):
        session.run()
        with pytest.raises(KeyError, match="not a noisy cell"):
            session.feedback(Cell(5, "State"), "IL")

    def test_feedback_count(self, session):
        session.run()
        assert session.feedback_count == 0
        session.feedback(Cell(0, "Zip"), "60608")
        assert session.feedback_count == 1

    def test_feedback_retrains_other_cells(self, session):
        """Verified labels act as evidence for the remaining queries."""
        first = session.run()
        session.feedback(Cell(0, "Zip"), "60608")
        second = session.rerun()
        # All other inferences still produced, distributions intact.
        assert set(second.inferences) == set(first.inferences)
        for cell, inf in second.inferences.items():
            assert inf.marginal.sum() == pytest.approx(1.0)
