"""Tests for repair-result objects."""

import numpy as np
import pytest

from repro.core.repair import CellInference, RepairResult
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema


def inference(cell, init, chosen, domain, probs):
    marginal = np.asarray(probs)
    return CellInference(cell=cell, init_value=init, chosen_value=chosen,
                         confidence=float(marginal.max()), domain=domain,
                         marginal=marginal)


class TestCellInference:
    def test_is_repair(self):
        inf = inference(Cell(0, "A"), "x", "y", ["x", "y"], [0.3, 0.7])
        assert inf.is_repair
        same = inference(Cell(0, "A"), "x", "x", ["x", "y"], [0.7, 0.3])
        assert not same.is_repair

    def test_null_init_counts_as_repair(self):
        inf = inference(Cell(0, "A"), None, "x", ["x"], [1.0])
        assert inf.is_repair

    def test_probability_of(self):
        inf = inference(Cell(0, "A"), "x", "y", ["x", "y"], [0.3, 0.7])
        assert inf.probability_of("x") == pytest.approx(0.3)
        assert inf.probability_of("unknown") == 0.0


class TestRepairResult:
    @pytest.fixture
    def result(self):
        ds = Dataset(Schema(["A"]), [["y"], ["x"]])
        inferences = {
            Cell(0, "A"): inference(Cell(0, "A"), "x", "y", ["x", "y"],
                                    [0.2, 0.8]),
            Cell(1, "A"): inference(Cell(1, "A"), "x", "x", ["x", "y"],
                                    [0.9, 0.1]),
        }
        return RepairResult(repaired=ds, inferences=inferences,
                            timings={"detect": 0.1, "compile": 0.2,
                                     "repair": 0.3})

    def test_repairs_subset(self, result):
        assert set(result.repairs) == {Cell(0, "A")}
        assert result.num_repairs == 1

    def test_total_runtime(self, result):
        assert result.total_runtime == pytest.approx(0.6)

    def test_summary(self, result):
        text = result.summary()
        assert "1 repairs" in text and "2 noisy cells" in text
