"""Tests for the active-domain strategy and strategy validation."""

import pytest

from repro.core.domain import DomainPruner
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema


@pytest.fixture
def data():
    schema = Schema(["Zip", "City"])
    rows = [["60608", "Chicago"]] * 6 + [["02134", "Boston"]] * 3
    rows.append(["99999", "Cicago"])
    return Dataset(schema, rows)


class TestActiveDomainStrategy:
    def test_returns_all_attribute_values(self, data):
        pruner = DomainPruner(data, strategy="active", max_domain=10)
        cands = pruner.candidates(Cell(9, "City"))
        assert set(cands) == {"Chicago", "Boston", "Cicago"}

    def test_most_frequent_first(self, data):
        pruner = DomainPruner(data, strategy="active", max_domain=10)
        assert pruner.candidates(Cell(9, "City"))[0] == "Chicago"

    def test_cap_keeps_init(self, data):
        pruner = DomainPruner(data, strategy="active", max_domain=2)
        cands = pruner.candidates(Cell(9, "City"))
        assert len(cands) == 2
        assert "Cicago" in cands  # init forced back in

    def test_ignores_tau(self, data):
        loose = DomainPruner(data, strategy="active", tau=0.1)
        tight = DomainPruner(data, strategy="active", tau=0.9)
        cell = Cell(9, "City")
        assert loose.candidates(cell) == tight.candidates(cell)

    def test_active_superset_of_cooccurrence(self, data):
        cell = Cell(9, "City")
        active = set(DomainPruner(data, strategy="active",
                                  max_domain=50).candidates(cell))
        pruned = set(DomainPruner(data, tau=0.3,
                                  max_domain=50).candidates(cell))
        assert pruned <= active

    def test_unknown_strategy_rejected(self, data):
        with pytest.raises(ValueError, match="strategy"):
            DomainPruner(data, strategy="bogus")


class TestConfigIntegration:
    def test_pipeline_accepts_active_strategy(self, figure1_dataset,
                                              figure1_constraints):
        from repro.core.config import HoloCleanConfig
        from repro.core.pipeline import HoloClean
        config = HoloCleanConfig(domain_strategy="active", epochs=10, seed=1)
        result = HoloClean(config).repair(figure1_dataset,
                                          figure1_constraints)
        assert result.inferences
