"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.dataset.csv_io import read_csv, write_csv


@pytest.fixture
def workspace(tmp_path, figure1_dataset):
    input_csv = tmp_path / "dirty.csv"
    write_csv(figure1_dataset, input_csv)
    dcs = tmp_path / "constraints.txt"
    dcs.write_text(
        "# Figure 1 constraints\n"
        "t1&t2&EQ(t1.DBAName,t2.DBAName)&IQ(t1.Zip,t2.Zip)\n"
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n"
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.State,t2.State)\n")
    return tmp_path, input_csv, dcs


class TestCli:
    def test_end_to_end_repair(self, workspace):
        tmp_path, input_csv, dcs = workspace
        output = tmp_path / "repaired.csv"
        report = tmp_path / "repairs.txt"
        code = main(["--input", str(input_csv), "--output", str(output),
                     "--constraints", str(dcs), "--tau", "0.3",
                     "--epochs", "30", "--seed", "1",
                     "--report", str(report)])
        assert code == 0
        repaired = read_csv(output)
        assert repaired.value(0, "Zip") == "60608"
        assert "t0.Zip" in report.read_text()

    def test_fd_flag(self, workspace):
        tmp_path, input_csv, _ = workspace
        output = tmp_path / "repaired.csv"
        code = main(["--input", str(input_csv), "--output", str(output),
                     "--fd", "Zip -> City,State", "--fd", "DBAName -> Zip",
                     "--tau", "0.3", "--epochs", "30", "--seed", "1",
                     "--report", str(tmp_path / "r.txt")])
        assert code == 0
        assert read_csv(output).value(0, "Zip") == "60608"

    @pytest.mark.parametrize("engine", ["numpy", "sqlite", "off"])
    def test_engine_choices_agree(self, workspace, engine):
        tmp_path, input_csv, dcs = workspace
        output = tmp_path / f"repaired-{engine}.csv"
        code = main(["--input", str(input_csv), "--output", str(output),
                     "--constraints", str(dcs), "--tau", "0.3",
                     "--epochs", "30", "--seed", "1", "--engine", engine,
                     "--report", str(tmp_path / f"r-{engine}.txt")])
        assert code == 0
        # Every backend (and the naive path) repairs the Figure 1 zip.
        assert read_csv(output).value(0, "Zip") == "60608"

    def test_no_constraints_is_an_error(self, workspace, capsys):
        tmp_path, input_csv, _ = workspace
        code = main(["--input", str(input_csv),
                     "--output", str(tmp_path / "out.csv")])
        assert code == 2
        assert "no constraints" in capsys.readouterr().err

    def test_min_confidence_floor(self, workspace):
        tmp_path, input_csv, dcs = workspace
        output = tmp_path / "repaired.csv"
        code = main(["--input", str(input_csv), "--output", str(output),
                     "--constraints", str(dcs), "--tau", "0.3",
                     "--epochs", "30", "--seed", "1",
                     "--min-confidence", "1.1",
                     "--report", str(tmp_path / "r.txt")])
        assert code == 0
        # Nothing clears an impossible confidence bar: output == input.
        assert read_csv(output) == read_csv(input_csv)

    def test_discover_fds_flag(self, workspace, capsys):
        tmp_path, input_csv, _ = workspace
        output = tmp_path / "repaired.csv"
        code = main(["--input", str(input_csv), "--output", str(output),
                     "--discover-fds", "--discover-confidence", "0.85",
                     "--tau", "0.3", "--epochs", "20", "--seed", "1",
                     "--report", str(tmp_path / "r.txt")])
        assert code == 0
        assert "discovered:" in capsys.readouterr().err

    def test_variant_flag(self, workspace):
        tmp_path, input_csv, dcs = workspace
        output = tmp_path / "repaired.csv"
        code = main(["--input", str(input_csv), "--output", str(output),
                     "--constraints", str(dcs), "--variant",
                     "dc-feats+dc-factors", "--tau", "0.3",
                     "--epochs", "10", "--seed", "1",
                     "--report", str(tmp_path / "r.txt")])
        assert code == 0
