"""Tests for Algorithm 3 and DC-factor pair enumeration."""

import pytest

from repro.constraints.fd import parse_fd
from repro.core.partition import PairEnumerator, tuple_groups
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.detect.violations import ViolationDetector


@pytest.fixture
def data():
    schema = Schema(["Zip", "City"])
    return Dataset(schema, [
        ["1", "A"], ["1", "B"],        # conflict component {0, 1}
        ["2", "C"], ["2", "D"],        # conflict component {2, 3}
        ["3", "E"], ["3", "E"],        # consistent: no component
    ])


@pytest.fixture
def dc():
    return parse_fd("Zip -> City").to_denial_constraints()[0]


class TestTupleGroups:
    def test_groups_follow_components(self, data, dc):
        hypergraph = ViolationDetector([dc]).detect(data).hypergraph
        groups = tuple_groups(hypergraph)
        tid_sets = sorted(sorted(g.tids) for g in groups)
        assert tid_sets == [[0, 1], [2, 3]]
        assert all(g.constraint_name == dc.name for g in groups)


class TestPairEnumerator:
    def test_join_pairs_from_shared_candidates(self, data, dc):
        domains = {Cell(0, "Zip"): ["1"], Cell(1, "Zip"): ["1"]}
        enumerator = PairEnumerator(data, domains)
        pairs = set(enumerator.join_pairs(dc))
        assert (0, 1) in pairs
        assert (4, 5) in pairs  # share init zip "3"
        assert (0, 2) not in pairs

    def test_candidate_overlap_creates_pairs(self, data, dc):
        # Give tuple 0 a candidate zip "2": it may now conflict with 2, 3.
        domains = {Cell(0, "Zip"): ["1", "2"]}
        enumerator = PairEnumerator(data, domains)
        pairs = set(enumerator.join_pairs(dc))
        assert (0, 2) in pairs and (0, 3) in pairs

    def test_restrict_to_component(self, data, dc):
        enumerator = PairEnumerator(data, {})
        pairs = set(enumerator.join_pairs(dc, restrict_to=frozenset({0, 1})))
        assert pairs == {(0, 1)}

    def test_max_pairs_cap(self, data, dc):
        rows = [["z", f"c{i}"] for i in range(20)]
        ds = Dataset(Schema(["Zip", "City"]), rows)
        enumerator = PairEnumerator(ds, {}, max_pairs=7)
        assert len(list(enumerator.join_pairs(dc))) == 7

    def test_partitioned_pairs(self, data, dc):
        hypergraph = ViolationDetector([dc]).detect(data).hypergraph
        enumerator = PairEnumerator(data, {})
        pairs = set(enumerator.pairs_for(dc, use_partitioning=True,
                                         hypergraph=hypergraph))
        # Partitioning drops the consistent pair (4, 5).
        assert pairs == {(0, 1), (2, 3)}

    def test_unpartitioned_includes_consistent_pairs(self, data, dc):
        enumerator = PairEnumerator(data, {})
        pairs = set(enumerator.pairs_for(dc, use_partitioning=False,
                                         hypergraph=None))
        assert (4, 5) in pairs

    def test_no_join_constraint_uses_all_pairs_within_group(self, data):
        from repro.constraints.denial import DenialConstraint
        from repro.constraints.predicates import Operator, Predicate, TupleRef
        dc = DenialConstraint([
            Predicate(TupleRef(1, "City"), Operator.GT, TupleRef(2, "City"))])
        enumerator = PairEnumerator(data, {}, max_pairs=100)
        pairs = list(enumerator.join_pairs(dc, restrict_to=frozenset({0, 1, 2})))
        assert len(pairs) == 3
