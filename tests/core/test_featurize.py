"""Tests for the signal featurizers (Section 4.2 groundings)."""

import pytest

from repro.constraints.fd import parse_fd
from repro.core.config import HoloCleanConfig
from repro.core.featurize import (
    ConstraintFeaturizer,
    CooccurFeaturizer,
    ExternalMatchFeaturizer,
    FeaturizationContext,
    FrequencyFeaturizer,
    MinimalityFeaturizer,
    SourceFeaturizer,
    default_featurizers,
)
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Attribute, Schema
from repro.dataset.stats import Statistics
from repro.external.matcher import Match, MatchedRelation


def make_context(dataset, config=None, matched=None):
    return FeaturizationContext(dataset, Statistics(dataset),
                                config or HoloCleanConfig(),
                                matched=matched or [])


@pytest.fixture
def city_data():
    schema = Schema(["Zip", "City"])
    rows = [["60608", "Chicago"]] * 8 + [["60608", "Cicago"]]
    return Dataset(schema, rows)


class TestMinimalityFeaturizer:
    def test_fires_only_on_init_value(self, city_data):
        ctx = make_context(city_data)
        feats = MinimalityFeaturizer(ctx).features(
            Cell(8, "City"), ["Cicago", "Chicago"])
        assert feats[0] == [(("minimality",), 1.0)]
        assert feats[1] == []


class TestFrequencyFeaturizer:
    def test_leave_one_out(self, city_data):
        ctx = make_context(city_data)
        feats = FrequencyFeaturizer(ctx).features(
            Cell(8, "City"), ["Cicago", "Chicago"])
        # Cicago appears once; its own cell must not count: (1-1)/(9-1)=0.
        assert feats[0][0] == (("freq", "City"), 0.0)
        # Chicago: 8/(9-1) = 1.0.
        assert feats[1][0] == (("freq", "City"), 1.0)

    def test_emits_global_backoff(self, city_data):
        ctx = make_context(city_data)
        feats = FrequencyFeaturizer(ctx).features(Cell(0, "City"), ["Chicago"])
        keys = [k for k, _ in feats[0]]
        assert ("freq*",) in keys


class TestCooccurFeaturizer:
    def test_pair_tying_value_is_conditional(self, city_data):
        config = HoloCleanConfig(cooccur_smoothing=0.0)
        ctx = make_context(city_data, config)
        feats = CooccurFeaturizer(ctx).features(
            Cell(8, "City"), ["Cicago", "Chicago"])
        by_key_cicago = dict(feats[0])
        by_key_chicago = dict(feats[1])
        # Leave-one-out: Pr[Cicago | 60608] = (1-1)/(9-1) = 0 → no entry.
        assert ("cooc", "City", "Zip") not in by_key_cicago
        # Pr[Chicago | 60608] = 8/8 = 1.0.
        assert by_key_chicago[("cooc", "City", "Zip")] == pytest.approx(1.0)

    def test_smoothing_discounts(self, city_data):
        config = HoloCleanConfig(cooccur_smoothing=2.0)
        ctx = make_context(city_data, config)
        feats = CooccurFeaturizer(ctx).features(Cell(8, "City"), ["Chicago"])
        value = dict(feats[0])[("cooc", "City", "Zip")]
        assert value == pytest.approx(8 / (8 + 2))

    def test_value_tying_paper_literal(self, city_data):
        config = HoloCleanConfig(cooccur_tying="value")
        ctx = make_context(city_data, config)
        feats = CooccurFeaturizer(ctx).features(Cell(8, "City"), ["Chicago"])
        assert (("cooc", "City", "Chicago", "Zip", "60608"), 1.0) in feats[0]

    def test_null_context_skipped(self):
        ds = Dataset(Schema(["A", "B"]), [[None, "x"], ["v", "x"]])
        ctx = make_context(ds)
        feats = CooccurFeaturizer(ctx).features(Cell(0, "B"), ["x"])
        # Only co-occurrence with non-null attributes contributes — A of
        # tuple 0 is NULL, so nothing fires for pair (B, A).
        keys = [k for k, _ in feats[0]]
        assert ("cooc", "B", "A") not in keys


class TestSourceFeaturizer:
    @pytest.fixture
    def flights(self):
        schema = Schema([Attribute("Source", role="source"),
                         Attribute("Flight"), Attribute("Dep")])
        return Dataset(schema, [
            ["s1", "F1", "10:00"],
            ["s2", "F1", "10:00"],
            ["s3", "F1", "11:00"],
            ["s1", "F2", "09:00"],
        ])

    def test_votes_by_source(self, flights):
        config = HoloCleanConfig(source_entity_attributes=("Flight",))
        ctx = make_context(flights, config)
        feats = SourceFeaturizer(ctx).features(
            Cell(2, "Dep"), ["11:00", "10:00"])
        own = dict(feats[0])
        other = dict(feats[1])
        # Leave-one-out: s3's own vote for 11:00 is excluded.
        assert own == {}
        assert other == {("src", "s1"): 1.0, ("src", "s2"): 1.0}

    def test_no_entity_attrs_no_features(self, flights):
        ctx = make_context(flights, HoloCleanConfig())
        feats = SourceFeaturizer(ctx).features(Cell(0, "Dep"), ["10:00"])
        assert feats == [[]]

    def test_cross_entity_isolation(self, flights):
        config = HoloCleanConfig(source_entity_attributes=("Flight",))
        ctx = make_context(flights, config)
        feats = SourceFeaturizer(ctx).features(Cell(3, "Dep"), ["10:00"])
        # F2's group has only its own tuple: leave-one-out leaves nothing.
        assert feats == [[]]


class TestExternalMatchFeaturizer:
    def test_fires_on_matched_value(self, city_data):
        matched = MatchedRelation()
        matched.add(Match(Cell(8, "City"), "Chicago", "dict-a"))
        ctx = make_context(city_data, matched=[matched])
        feats = ExternalMatchFeaturizer(ctx).features(
            Cell(8, "City"), ["Cicago", "Chicago"])
        assert feats[0] == []
        assert feats[1] == [(("ext", "dict-a"), 1.0)]


class TestConstraintFeaturizer:
    @pytest.fixture
    def setup(self):
        schema = Schema(["Zip", "City"])
        rows = [["60608", "Chicago"]] * 5 + [["60608", "Cicago"]]
        ds = Dataset(schema, rows)
        dcs = parse_fd("Zip -> City").to_denial_constraints()
        ctx = make_context(ds)
        return ds, ConstraintFeaturizer(ctx, dcs)

    def test_counts_violations_against_init_values(self, setup):
        ds, featurizer = setup
        feats = featurizer.features(Cell(5, "City"), ["Cicago", "Chicago"])
        cap = HoloCleanConfig().dc_feature_cap
        # Keeping "Cicago" violates against the 5 Chicago partners
        # in both tuple positions: count 10, capped then normalised.
        assert dict(feats[0])[("dc", "fd_Zip__City")] == pytest.approx(
            min(10.0, cap) / cap)
        # "Chicago" creates no violations.
        assert feats[1] == []

    def test_irrelevant_attribute_untouched(self, setup):
        _, featurizer = setup
        schema_attr_feats = featurizer.features(Cell(0, "Zip"), ["60608"])
        # Zip participates in the FD: keeping 60608 violates with the
        # Cicago tuple (both orders), so the feature fires.
        assert dict(schema_attr_feats[0])[("dc", "fd_Zip__City")] > 0

    def test_single_tuple_constraint(self):
        from repro.constraints.parser import parse_dc
        ds = Dataset(Schema(["State"]), [["XX"], ["IL"]])
        dc = parse_dc('t1&EQ(t1.State,"XX")', name="no_xx")
        ctx = make_context(ds)
        featurizer = ConstraintFeaturizer(ctx, [dc])
        feats = featurizer.features(Cell(0, "State"), ["XX", "IL"])
        assert dict(feats[0])[("dc", "no_xx")] == 1.0
        assert feats[1] == []

    def test_partner_cap_limits_count(self):
        schema = Schema(["Zip", "City"])
        rows = [["60608", "Chicago"]] * 50 + [["60608", "Cicago"]]
        ds = Dataset(schema, rows)
        dcs = parse_fd("Zip -> City").to_denial_constraints()
        config = HoloCleanConfig(max_dc_feature_partners=5,
                                 dc_feature_cap=1000.0)
        ctx = make_context(ds, config)
        featurizer = ConstraintFeaturizer(ctx, dcs)
        feats = featurizer.features(Cell(50, "City"), ["Cicago"])
        value = dict(feats[0])[("dc", "fd_Zip__City")]
        assert value <= 10 / 1000.0  # 5 partners per position max


class TestDefaultStack:
    def test_config_toggles(self, city_data):
        ctx = make_context(city_data, HoloCleanConfig(
            use_minimality=False, use_frequency=False))
        stack = default_featurizers(ctx, [])
        names = [f.name for f in stack]
        assert "minimality" not in names
        assert "frequency" not in names
        assert "cooccur" in names

    def test_external_requires_matches(self, city_data):
        ctx = make_context(city_data)
        stack = default_featurizers(ctx, [])
        assert "external" not in [f.name for f in stack]
