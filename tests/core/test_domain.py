"""Tests for Algorithm 2: domain pruning."""

import pytest

from repro.core.domain import DomainPruner
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema


@pytest.fixture
def city_data():
    schema = Schema(["Zip", "City"])
    rows = [["60608", "Chicago"]] * 8 + [["60608", "Cicago"]] * 2
    rows += [["02134", "Boston"]] * 5
    return Dataset(schema, rows)


class TestCandidates:
    def test_threshold_filters(self, city_data):
        # Pr[Chicago | 60608] = 0.8, Pr[Cicago | 60608] = 0.2.
        pruner = DomainPruner(city_data, tau=0.5)
        cell = Cell(9, "City")  # a Cicago cell
        assert pruner.candidates(cell) == ["Cicago", "Chicago"]
        strict = DomainPruner(city_data, tau=0.9)
        # Chicago (0.8) now pruned; init value survives regardless.
        assert strict.candidates(cell) == ["Cicago"]

    def test_init_value_always_kept(self, city_data):
        pruner = DomainPruner(city_data, tau=0.99)
        assert pruner.candidates(Cell(9, "City")) == ["Cicago"]

    def test_candidates_ranked_by_conditional(self, city_data):
        pruner = DomainPruner(city_data, tau=0.1)
        cands = pruner.candidates(Cell(0, "City"))
        assert cands[0] == "Chicago"  # init (scored 1.0) first

    def test_cross_city_values_not_included(self, city_data):
        pruner = DomainPruner(city_data, tau=0.1)
        assert "Boston" not in pruner.candidates(Cell(0, "City"))

    def test_max_domain_truncates_but_keeps_init(self):
        schema = Schema(["K", "V"])
        rows = [["k", f"v{i}"] for i in range(10) for _ in range(2)]
        rows.append(["k", "rare"])
        ds = Dataset(schema, rows)
        pruner = DomainPruner(ds, tau=0.0, max_domain=3)
        cands = pruner.candidates(Cell(20, "V"))  # the "rare" cell
        assert len(cands) == 3
        assert "rare" in cands

    def test_monotone_in_tau(self, city_data):
        loose = DomainPruner(city_data, tau=0.1)
        tight = DomainPruner(city_data, tau=0.7)
        cell = Cell(9, "City")
        assert set(tight.candidates(cell)) <= set(loose.candidates(cell))

    def test_null_context_falls_back_to_most_frequent(self):
        schema = Schema(["A", "B"])
        ds = Dataset(schema, [["x", "common"], ["x", "common"],
                              ["x", "rare"], [None, None]])
        pruner = DomainPruner(ds, tau=0.5)
        assert pruner.candidates(Cell(3, "B")) == ["common"]

    def test_null_init_not_in_domain(self, city_data):
        city_data.set_value(0, "City", None)
        pruner = DomainPruner(city_data, tau=0.5)
        cands = pruner.candidates(Cell(0, "City"))
        assert None not in cands
        assert "Chicago" in cands


class TestDomains:
    def test_domains_many_cells(self, city_data):
        pruner = DomainPruner(city_data, tau=0.5)
        cells = [Cell(0, "City"), Cell(9, "City")]
        domains = pruner.domains(cells)
        assert set(domains) == set(cells)
        for domain in domains.values():
            assert domain

    def test_respects_attribute_filter(self, city_data):
        pruner = DomainPruner(city_data, tau=0.1, attributes=["City"])
        # Zip is not among the context attributes, so City candidates come
        # only from... (still from Zip? no — context excludes non-listed).
        cands = pruner.candidates(Cell(0, "City"))
        assert "Chicago" in cands
