"""End-to-end pipeline tests on the Figure 1 running example."""

import pytest

from repro.core.config import VARIANTS, HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.dataset.dataset import Cell
from repro.detect.violations import ViolationDetector


@pytest.fixture
def result(figure1_dataset, figure1_constraints):
    hc = HoloClean(HoloCleanConfig(tau=0.3, epochs=40, seed=1))
    return hc.repair(figure1_dataset, figure1_constraints)


class TestRepairResult:
    def test_repairs_figure1_zip(self, result):
        repair = result.inferences[Cell(0, "Zip")]
        assert repair.chosen_value == "60608"
        assert repair.is_repair

    def test_repairs_figure1_city(self, result):
        repair = result.inferences[Cell(3, "City")]
        assert repair.chosen_value == "Chicago"

    def test_input_not_mutated(self, figure1_dataset, figure1_constraints):
        before = figure1_dataset.copy()
        HoloClean(HoloCleanConfig(tau=0.3, epochs=10, seed=1)).repair(
            figure1_dataset, figure1_constraints)
        assert figure1_dataset == before

    def test_repaired_dataset_reflects_repairs(self, result, figure1_dataset):
        for cell, inference in result.repairs.items():
            assert result.repaired.cell_value(cell) == inference.chosen_value
        # Non-repaired cells unchanged.
        untouched = [c for c in figure1_dataset.cells()
                     if c not in result.repairs]
        for cell in untouched[:50]:
            assert result.repaired.cell_value(cell) == \
                figure1_dataset.cell_value(cell)

    def test_marginals_are_distributions(self, result):
        for inference in result.inferences.values():
            assert inference.marginal.sum() == pytest.approx(1.0)
            assert inference.confidence == pytest.approx(
                inference.marginal.max())

    def test_timings_cover_three_phases(self, result):
        assert set(result.timings) == {"detect", "compile", "repair"}
        assert all(t >= 0 for t in result.timings.values())

    def test_summary_mentions_repairs(self, result):
        assert "repairs" in result.summary()

    def test_confidence_of(self, result):
        cell = Cell(0, "Zip")
        assert result.confidence_of(cell) == result.inferences[cell].confidence


class TestVariants:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_variants_repair_the_running_example(
            self, variant, figure1_dataset, figure1_constraints):
        config = HoloCleanConfig.variant(
            variant, tau=0.3, epochs=40, seed=1,
            gibbs_burn_in=5, gibbs_sweeps=20)
        result = HoloClean(config).repair(figure1_dataset, figure1_constraints)
        assert result.inferences[Cell(0, "Zip")].chosen_value == "60608"

    def test_factor_variants_ground_factors(self, figure1_dataset,
                                            figure1_constraints):
        config = HoloCleanConfig.variant(
            "dc-factors", tau=0.3, epochs=10, seed=1,
            gibbs_burn_in=2, gibbs_sweeps=5)
        result = HoloClean(config).repair(figure1_dataset, figure1_constraints)
        assert result.size_report["constraint_factors"] > 0


class TestPrecomputedDetection:
    def test_detection_can_be_shared(self, figure1_dataset, figure1_constraints):
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        hc = HoloClean(HoloCleanConfig(tau=0.3, epochs=10, seed=1))
        result = hc.repair(figure1_dataset, figure1_constraints,
                           detection=detection)
        assert result.timings["detect"] < 0.05  # skipped
        assert result.inferences
