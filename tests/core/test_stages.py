"""Equivalence and re-entry tests for the staged repair API.

The oracle below is the pre-refactor monolithic ``HoloClean.repair()``
(engine build → detect → compile → learn → infer → apply, kept
verbatim); the staged plan must reproduce its ``RepairResult``
byte-for-byte — inferences, marginals, repaired dataset, size report,
and training losses — on the Hospital and Flights generators and on
the Figure 1 running example, in both softmax and Gibbs (DC-factor)
variants.  Re-entry tests pin the context-reuse semantics: a reused
detection or a reused compiled model yields the same output as a cold
run.
"""

import numpy as np
import pytest

from repro.core.compiler import ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.core.repair import CellInference, RepairResult
from repro.core.stages import (
    STAGE_ORDER,
    ApplyStage,
    CompileStage,
    DetectStage,
    InferStage,
    LearnStage,
    RepairContext,
    RepairPlan,
)
from repro.data import generate_flights, generate_hospital
from repro.detect.violations import ViolationDetector
from repro.engine import Engine
from repro.inference.gibbs import GibbsSampler
from repro.inference.softmax import SoftmaxTrainer


def legacy_repair(dataset, constraints, config, detection=None):
    """The pre-refactor ``HoloClean.repair()``, inlined as the oracle."""
    timings = {}
    engine = (Engine(dataset, backend=config.engine_backend)
              if config.use_engine else None)

    if detection is None:
        detection = ViolationDetector(constraints, engine=engine).detect(dataset)
    timings["detect"] = 0.0

    compiler = ModelCompiler(dataset, constraints, config, detection,
                             engine=engine)
    model = compiler.compile()
    timings["compile"] = 0.0

    space = model.graph.space
    fixed = space.fixed_weights
    minimality_idx = space.get(("minimality",))
    if minimality_idx is not None:
        fixed[minimality_idx] = 0.0
    trainer = SoftmaxTrainer(
        model.graph.matrix, epochs=config.epochs,
        learning_rate=config.learning_rate, l2=config.l2,
        max_training_vars=config.max_training_cells, seed=config.seed,
        fixed_weights=fixed)
    outcome = trainer.train(model.evidence_ids, model.evidence_labels)
    weights = outcome.weights
    if minimality_idx is not None:
        weights[minimality_idx] = config.minimality_weight

    if model.graph.factors:
        sampler = GibbsSampler(model.graph, weights, seed=config.seed)
        marginals = sampler.run(burn_in=config.gibbs_burn_in,
                                sweeps=config.gibbs_sweeps).marginals
    else:
        marginals = SoftmaxTrainer(model.graph.matrix).marginals(
            weights, model.query_ids)

    repaired = dataset.copy(name=f"{dataset.name}-repaired")
    inferences = {}
    for vid in model.query_ids:
        info = model.graph.variables[vid]
        marginal = marginals[vid]
        best = int(np.argmax(marginal))
        chosen = info.domain[best]
        inference = CellInference(
            cell=info.cell,
            init_value=dataset.cell_value(info.cell),
            chosen_value=chosen,
            confidence=float(marginal[best]),
            domain=list(info.domain),
            marginal=np.asarray(marginal, dtype=np.float64))
        inferences[info.cell] = inference
        if inference.is_repair:
            repaired.set_value(info.cell.tid, info.cell.attribute, chosen)
    timings["repair"] = 0.0
    result = RepairResult(repaired=repaired, inferences=inferences)
    result.timings = timings
    result.size_report = model.size_report()
    result.training_losses = outcome.losses
    result.config = config
    return result


def assert_results_equal(actual: RepairResult, oracle: RepairResult):
    """Byte-identity of everything except wall-clock values."""
    assert set(actual.inferences) == set(oracle.inferences)
    for cell in oracle.inferences:
        got, want = actual.inferences[cell], oracle.inferences[cell]
        assert got.cell == want.cell
        assert got.init_value == want.init_value
        assert got.chosen_value == want.chosen_value
        assert got.confidence == want.confidence
        assert got.domain == want.domain
        np.testing.assert_array_equal(got.marginal, want.marginal)
    assert actual.repaired == oracle.repaired
    assert actual.size_report == oracle.size_report
    assert actual.training_losses == oracle.training_losses
    assert set(actual.timings) == set(oracle.timings)


@pytest.fixture(scope="module")
def hospital():
    return generate_hospital(num_rows=80)


@pytest.fixture(scope="module")
def flights():
    return generate_flights(num_flights=5)


def config_for(generated, **overrides):
    fields = dict(tau=generated.recommended_tau,
                  source_entity_attributes=generated.source_entity_attributes,
                  epochs=12, seed=3)
    fields.update(overrides)
    return HoloCleanConfig(**fields)


class TestFacadeEquivalence:
    """`HoloClean.repair()` ≡ pre-refactor output, per the redesign pledge."""

    def test_hospital(self, hospital):
        config = config_for(hospital)
        oracle = legacy_repair(hospital.dirty, hospital.constraints, config)
        result = HoloClean(config).repair(hospital.dirty, hospital.constraints)
        assert_results_equal(result, oracle)

    def test_flights(self, flights):
        config = config_for(flights)
        oracle = legacy_repair(flights.dirty, flights.constraints, config)
        result = HoloClean(config).repair(flights.dirty, flights.constraints)
        assert_results_equal(result, oracle)

    def test_figure1_gibbs_variant(self, figure1_dataset, figure1_constraints):
        config = HoloCleanConfig.variant(
            "dc-factors", tau=0.3, epochs=10, seed=1,
            gibbs_burn_in=2, gibbs_sweeps=5)
        oracle = legacy_repair(figure1_dataset, figure1_constraints, config)
        result = HoloClean(config).repair(figure1_dataset, figure1_constraints)
        assert_results_equal(result, oracle)
        assert result.size_report["constraint_factors"] > 0

    def test_precomputed_detection(self, figure1_dataset, figure1_constraints):
        config = HoloCleanConfig(tau=0.3, epochs=10, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        oracle = legacy_repair(figure1_dataset, figure1_constraints, config,
                               detection=detection)
        result = HoloClean(config).repair(figure1_dataset, figure1_constraints,
                                          detection=detection)
        assert_results_equal(result, oracle)


class TestPlanExecution:
    def test_default_plan_order(self):
        assert tuple(RepairPlan.default().stage_names) == STAGE_ORDER

    def test_stages_record_timings(self, figure1_dataset, figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints,
                            config=HoloCleanConfig(tau=0.3, epochs=5, seed=1))
        ctx = RepairPlan.default().run(ctx)
        assert set(ctx.timings) == set(STAGE_ORDER)
        assert all(t >= 0 for t in ctx.timings.values())

    def test_result_timings_are_three_phases(self, figure1_dataset,
                                             figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints,
                            config=HoloCleanConfig(tau=0.3, epochs=5, seed=1))
        ctx = RepairPlan.default().run(ctx)
        assert set(ctx.result.timings) == {"detect", "compile", "repair"}
        # The repair phase folds learn + infer + apply, apply included.
        repair = sum(ctx.timings[n] for n in ("learn", "infer", "apply"))
        assert ctx.result.timings["repair"] == pytest.approx(repair)

    def test_stages_run_individually(self, figure1_dataset, figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints,
                            config=HoloCleanConfig(tau=0.3, epochs=5, seed=1))
        for stage in (DetectStage(), CompileStage(), LearnStage(),
                      InferStage(), ApplyStage()):
            ctx = stage(ctx)
        assert ctx.detection is not None
        assert ctx.model is not None
        assert ctx.weights is not None
        assert ctx.marginals is not None
        assert ctx.result is not None
        # Calling ApplyStage as a callable dispatches to its own run(),
        # so the repair phase includes the apply stage's wall-clock.
        repair = sum(ctx.timings[n] for n in ("learn", "infer", "apply"))
        assert ctx.result.timings["repair"] == pytest.approx(repair)

    def test_engine_is_shared_across_stages(self, figure1_dataset,
                                            figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints,
                            config=HoloCleanConfig(tau=0.3, epochs=5, seed=1))
        ctx = RepairPlan.default().run(ctx)
        assert ctx.engine is not None
        assert any(str(k).startswith("grounding_")
                   for k in ctx.result.size_report)

    def test_engine_off_builds_no_engine(self, figure1_dataset,
                                         figure1_constraints):
        ctx = RepairContext(
            dataset=figure1_dataset, constraints=figure1_constraints,
            config=HoloCleanConfig(tau=0.3, epochs=5, seed=1,
                                   use_engine=False))
        ctx = RepairPlan.default().run(ctx)
        assert ctx.engine is None
        assert ctx.result is not None


class TestReentry:
    def test_reused_detection_same_output(self, hospital):
        config = config_for(hospital)
        plan = RepairPlan.default()
        cold = plan.run(RepairContext(dataset=hospital.dirty,
                                      constraints=hospital.constraints,
                                      config=config))
        warm = plan.run(RepairContext(dataset=hospital.dirty,
                                      constraints=hospital.constraints,
                                      config=config,
                                      detection=cold.detection))
        assert_results_equal(warm.result, cold.result)

    def test_reused_model_same_output(self, hospital):
        config = config_for(hospital)
        ctx = RepairPlan.default().run(
            RepairContext(dataset=hospital.dirty,
                          constraints=hospital.constraints, config=config))
        first = ctx.result
        model = ctx.model
        ctx = RepairPlan.default().starting_at("learn").run(ctx)
        assert ctx.model is model  # compile not repeated
        assert_results_equal(ctx.result, first)

    def test_full_plan_on_warm_context_skips_producers(self, hospital):
        config = config_for(hospital)
        ctx = RepairPlan.default().run(
            RepairContext(dataset=hospital.dirty,
                          constraints=hospital.constraints, config=config))
        first = ctx.result
        detection, model = ctx.detection, ctx.model
        detect_time = ctx.timings["detect"]
        compile_time = ctx.timings["compile"]
        ctx = RepairPlan.default().run(ctx)
        assert ctx.detection is detection
        assert ctx.model is model
        # Skipped stages leave the originally recorded wall-clock intact.
        assert ctx.timings["detect"] == detect_time
        assert ctx.timings["compile"] == compile_time
        assert_results_equal(ctx.result, first)

    def test_clearing_model_forces_recompile(self, figure1_dataset,
                                             figure1_constraints):
        config = HoloCleanConfig(tau=0.3, epochs=5, seed=1)
        ctx = RepairPlan.default().run(
            RepairContext(dataset=figure1_dataset,
                          constraints=figure1_constraints, config=config))
        model = ctx.model
        ctx.model = None
        ctx = RepairPlan.default().run(ctx)
        assert ctx.model is not None and ctx.model is not model


class TestPhaseTimings:
    def test_missing_keys_fold_to_zero(self, figure1_dataset,
                                       figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints)
        assert ctx.phase_timings() == {"detect": 0.0, "compile": 0.0,
                                       "repair": 0.0}

    def test_partial_run_leaves_later_phases_zero(self, figure1_dataset,
                                                  figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints,
                            config=HoloCleanConfig(tau=0.3, epochs=5, seed=1))
        ctx = DetectStage()(ctx)
        phases = ctx.phase_timings()
        assert phases["detect"] == ctx.timings["detect"]
        assert phases["compile"] == 0.0
        assert phases["repair"] == 0.0

    def test_starting_at_reentry_keeps_producer_timings(self, hospital):
        config = config_for(hospital)
        ctx = RepairPlan.default().run(
            RepairContext(dataset=hospital.dirty,
                          constraints=hospital.constraints, config=config))
        detect_time = ctx.timings["detect"]
        compile_time = ctx.timings["compile"]
        ctx = RepairPlan.default().starting_at("learn").run(ctx)
        phases = ctx.phase_timings()
        # The re-entry reruns only the repair phase; the producers'
        # timings survive and keep folding into their phases.
        assert phases["detect"] == detect_time
        assert phases["compile"] == compile_time
        repair = sum(ctx.timings[n] for n in ("learn", "infer", "apply"))
        assert phases["repair"] == pytest.approx(repair)
        assert ctx.result.timings == phases

    def test_result_timings_folded_after_apply(self, figure1_dataset,
                                               figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints,
                            config=HoloCleanConfig(tau=0.3, epochs=5, seed=1))
        ctx = RepairPlan.default().run(ctx)
        # The result's timings are the context's folded phases, apply's
        # own wall-clock included (i.e. folded after ApplyStage ran).
        assert ctx.result.timings == ctx.phase_timings()
        assert ctx.result.timings["repair"] >= ctx.timings["apply"]


class TestTelemetry:
    """Stage status, run reports, and the tracing byte-identity pledge."""

    def run_plan(self, generated, **overrides):
        ctx = RepairContext(dataset=generated.dirty,
                            constraints=generated.constraints,
                            config=config_for(generated, **overrides))
        return RepairPlan.default().run(ctx)

    def test_stage_status_ran_then_skipped(self, hospital):
        ctx = self.run_plan(hospital)
        assert ctx.stage_status == {name: "ran" for name in STAGE_ORDER}
        ctx = RepairPlan.default().run(ctx)
        assert ctx.stage_status["detect"] == "skipped"
        assert ctx.stage_status["compile"] == "skipped"
        later = [ctx.stage_status[n] for n in ("learn", "infer", "apply")]
        assert later == ["ran", "ran", "ran"]

    def test_skipped_stage_fabricates_no_timing(self, figure1_dataset,
                                                figure1_constraints):
        config = HoloCleanConfig(tau=0.3, epochs=5, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints,
                            config=config, detection=detection)
        ctx = RepairPlan.default().run(ctx)
        # Skipped stages leave no timing entry at all (no fake 0.0) and
        # are recorded explicitly in stage_status and the run report.
        assert "detect" not in ctx.timings
        assert ctx.stage_status["detect"] == "skipped"
        assert ctx.result.report.stage_status["detect"] == "skipped"
        assert (ctx.result.report.stage_names_traced()
                == ["compile", "learn", "infer", "apply"])

    def test_run_report_attached_and_covers_stages(self, hospital):
        ctx = self.run_plan(hospital)
        report = ctx.result.report
        assert report is not None
        assert report.stage_names_traced() == list(STAGE_ORDER)
        assert report.fingerprint
        assert report.dataset["rows"] == hospital.dirty.num_tuples
        assert report.phase_timings == ctx.phase_timings()
        gauges = report.metrics["gauges"]
        assert gauges["detect.noisy_cells"] == len(ctx.detection.noisy_cells)
        assert gauges["apply.repairs"] == ctx.result.num_repairs
        # The compile stage ingests the size report verbatim.
        for key, value in ctx.result.size_report.items():
            if isinstance(value, (int, float)):
                assert gauges[f"compile.{key}"] == value
        assert (report.metrics["series"]["learn.epoch_loss"]
                == ctx.result.training_losses)
        # Round-trips through JSON.
        clone = type(report).from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_trace_off_records_no_spans_but_still_reports(self, hospital):
        ctx = self.run_plan(hospital, trace_level="off")
        assert ctx.tracer is None
        report = ctx.result.report
        assert report.trace is None
        assert report.stage_status == {name: "ran" for name in STAGE_ORDER}
        assert (report.metrics["gauges"]["apply.repairs"]
                == ctx.result.num_repairs)

    def test_tracing_is_byte_identical_to_off(self, hospital):
        baseline = self.run_plan(hospital, trace_level="off")
        coarse = self.run_plan(hospital, trace_level="stage")
        deep = self.run_plan(hospital, trace_level="deep")
        # Coarse (the default) and deep tracing leave the repair result
        # and every size-report key byte-identical to tracing disabled.
        assert_results_equal(coarse.result, baseline.result)
        assert_results_equal(deep.result, baseline.result)
        assert (list(coarse.result.size_report)
                == list(baseline.result.size_report))
        assert (list(deep.result.size_report)
                == list(baseline.result.size_report))
        # Deep mode's only difference: child spans under the stage spans.
        stage_spans = coarse.result.report.trace_spans()
        assert all(not s.children for s in stage_spans)
        deep_spans = deep.result.report.trace_spans()
        assert any(s.children for s in deep_spans)

    def test_deep_tracing_gibbs_variant_identical(self, figure1_dataset,
                                                  figure1_constraints):
        def run(level):
            config = HoloCleanConfig.variant(
                "dc-factors", tau=0.3, epochs=10, seed=1,
                gibbs_burn_in=2, gibbs_sweeps=5, trace_level=level)
            ctx = RepairContext(dataset=figure1_dataset,
                                constraints=figure1_constraints, config=config)
            return RepairPlan.default().run(ctx)

        baseline = run("off")
        deep = run("deep")
        assert_results_equal(deep.result, baseline.result)
        names = {s.name for root in deep.result.report.trace_spans()
                 for s in root.walk()}
        assert "infer.gibbs_sweep" in names
        assert deep.result.report.metrics["labels"]["infer.method"] == "gibbs"


class TestStagePreconditions:
    def test_compile_requires_detection(self, figure1_dataset,
                                        figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints)
        with pytest.raises(RuntimeError, match="DetectStage"):
            CompileStage()(ctx)

    def test_learn_requires_model(self, figure1_dataset, figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints)
        with pytest.raises(RuntimeError, match="CompileStage"):
            LearnStage()(ctx)

    def test_infer_requires_weights(self, figure1_dataset, figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints)
        with pytest.raises(RuntimeError, match="LearnStage"):
            InferStage()(ctx)

    def test_apply_requires_marginals(self, figure1_dataset,
                                      figure1_constraints):
        ctx = RepairContext(dataset=figure1_dataset,
                            constraints=figure1_constraints)
        with pytest.raises(RuntimeError, match="InferStage"):
            ApplyStage()(ctx)

    def test_starting_at_unknown_stage(self):
        with pytest.raises(ValueError, match="no stage named"):
            RepairPlan.default().starting_at("ground")


class TestPlanValidation:
    """Re-entry on a context missing its artifacts fails fast (400-able)."""

    def _ctx(self, figure1_dataset, figure1_constraints):
        return RepairContext(dataset=figure1_dataset,
                             constraints=figure1_constraints)

    def test_starting_at_learn_names_missing_model(self, figure1_dataset,
                                                   figure1_constraints):
        plan = RepairPlan.default().starting_at("learn")
        ctx = self._ctx(figure1_dataset, figure1_constraints)
        with pytest.raises(ValueError, match="CompiledModel"):
            plan.run(ctx)
        # The message points at the producing stage and a remedy.
        with pytest.raises(ValueError, match="'compile'"):
            plan.run(ctx)

    def test_starting_at_infer_names_missing_weights(self, figure1_dataset,
                                                     figure1_constraints):
        # With a compiled model present the earliest gap is the weights.
        ctx = RepairPlan([DetectStage(), CompileStage()]).run(
            self._ctx(figure1_dataset, figure1_constraints))
        with pytest.raises(ValueError, match="learned weights"):
            RepairPlan.default().starting_at("infer").run(ctx)

    def test_validate_checks_earliest_gap_first(self, figure1_dataset,
                                                figure1_constraints):
        ctx = self._ctx(figure1_dataset, figure1_constraints)
        missing = RepairPlan.default().starting_at("apply").missing_requirements(ctx)
        assert missing[0][1] == "model"

    def test_full_plan_on_empty_context_is_valid(self, figure1_dataset,
                                                 figure1_constraints):
        ctx = self._ctx(figure1_dataset, figure1_constraints)
        assert RepairPlan.default().missing_requirements(ctx) == []
        RepairPlan.default().validate(ctx)  # must not raise

    def test_warm_context_revalidates(self, figure1_dataset,
                                      figure1_constraints):
        ctx = RepairPlan.default().run(
            self._ctx(figure1_dataset, figure1_constraints))
        for stage in ("learn", "infer", "apply"):
            RepairPlan.default().starting_at(stage).validate(ctx)

    def test_fingerprints_are_stable_and_content_keyed(self, figure1_dataset,
                                                       figure1_constraints):
        a = self._ctx(figure1_dataset, figure1_constraints)
        b = self._ctx(figure1_dataset, figure1_constraints)
        assert a.fingerprints() == b.fingerprints()
        assert a.content_fingerprint() == b.content_fingerprint()
        fewer = RepairContext(dataset=figure1_dataset,
                              constraints=figure1_constraints[:1])
        assert fewer.fingerprints()["constraints"] != a.fingerprints()["constraints"]
        assert fewer.fingerprints()["dataset"] == a.fingerprints()["dataset"]
