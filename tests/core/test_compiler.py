"""Tests for the compilation module (variables, evidence, factors)."""

import pytest

from repro.core.compiler import ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.detect.violations import ViolationDetector


@pytest.fixture
def compiled(figure1_dataset, figure1_constraints):
    config = HoloCleanConfig(tau=0.3, seed=1)
    detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
    compiler = ModelCompiler(figure1_dataset, figure1_constraints, config,
                             detection)
    return compiler.compile(), detection


class TestVariables:
    def test_query_vars_cover_noisy_cells(self, compiled):
        model, detection = compiled
        query_cells = {model.graph.variables[v].cell for v in model.query_ids}
        repairable_noisy = {c for c in detection.noisy_cells}
        assert query_cells == repairable_noisy

    def test_query_domains_contain_init(self, compiled, figure1_dataset):
        model, _ = compiled
        for vid in model.query_ids:
            info = model.graph.variables[vid]
            init = figure1_dataset.cell_value(info.cell)
            if init is not None:
                assert init in info.domain

    def test_evidence_has_valid_labels(self, compiled):
        model, _ = compiled
        for vid, label in zip(model.evidence_ids, model.evidence_labels):
            info = model.graph.variables[vid]
            assert 0 <= label < info.domain_size

    def test_evidence_excludes_noisy_cells(self, compiled, figure1_dataset):
        model, detection = compiled
        # Weak-label ids (query vars reused for training) are allowed;
        # genuine evidence variables must be clean cells.
        for vid in model.evidence_ids:
            info = model.graph.variables[vid]
            if info.is_evidence:
                assert info.cell not in detection.noisy_cells


class TestEvidenceSampling:
    def test_max_training_cells_cap(self, figure1_dataset, figure1_constraints):
        config = HoloCleanConfig(tau=0.3, max_training_cells=10, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        model = ModelCompiler(figure1_dataset, figure1_constraints, config,
                              detection).compile()
        true_evidence = [v for v in model.evidence_ids
                         if model.graph.variables[v].is_evidence]
        assert len(true_evidence) <= 10

    def test_evidence_negatives_extend_domains(self, figure1_dataset,
                                               figure1_constraints):
        config = HoloCleanConfig(tau=0.3, evidence_negatives=2, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        model = ModelCompiler(figure1_dataset, figure1_constraints, config,
                              detection).compile()
        sizes = [model.graph.variables[v].domain_size
                 for v in model.evidence_ids
                 if model.graph.variables[v].is_evidence]
        assert sizes and all(s >= 2 for s in sizes)


class TestFactors:
    def test_no_factors_for_dc_feats(self, compiled):
        model, _ = compiled
        assert model.graph.factors == []

    def test_factors_grounded_for_dc_factors(self, figure1_dataset,
                                             figure1_constraints):
        config = HoloCleanConfig.variant("dc-factors", tau=0.3, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        model = ModelCompiler(figure1_dataset, figure1_constraints, config,
                              detection).compile()
        assert len(model.graph.factors) > 0
        for factor in model.graph.factors:
            # Factors span only query variables.
            for vid in factor.var_ids:
                assert not model.graph.variables[vid].is_evidence
            # Tables are non-constant (constant factors are dropped).
            assert (factor.table == -1).any()
            assert (factor.table == 1).any()

    def test_partitioning_grounds_fewer_or_equal_factors(
            self, figure1_dataset, figure1_constraints):
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        counts = {}
        for name in ("dc-factors", "dc-factors+partitioning"):
            config = HoloCleanConfig.variant(name, tau=0.3, seed=1)
            model = ModelCompiler(figure1_dataset, figure1_constraints,
                                  config, detection).compile()
            counts[name] = len(model.graph.factors)
        assert counts["dc-factors+partitioning"] <= counts["dc-factors"]


class TestProgramAndReport:
    def test_ddlog_program_present(self, compiled):
        model, _ = compiled
        text = "\n".join(model.ddlog_program)
        assert "Value?(t, a, d) :- Domain(t, a, d)" in text
        assert "!Value?" in text  # relaxed rules for dc-feats

    def test_size_report_keys(self, compiled):
        model, _ = compiled
        report = model.size_report()
        for key in ("variables", "query_variables", "feature_entries",
                    "weights", "constraint_factors", "skipped_factors"):
            assert key in report

    def test_minimality_weight_pinned(self, compiled):
        model, _ = compiled
        fixed = model.graph.space.fixed_weights
        idx = model.graph.space.get(("minimality",))
        assert idx is not None and idx in fixed
