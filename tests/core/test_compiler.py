"""Tests for the compilation module (variables, evidence, factors)."""

import pytest

from repro.core.compiler import ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.detect.violations import ViolationDetector


@pytest.fixture
def compiled(figure1_dataset, figure1_constraints):
    config = HoloCleanConfig(tau=0.3, seed=1)
    detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
    compiler = ModelCompiler(figure1_dataset, figure1_constraints, config,
                             detection)
    return compiler.compile(), detection


class TestVariables:
    def test_query_vars_cover_noisy_cells(self, compiled):
        model, detection = compiled
        query_cells = {model.graph.variables[v].cell for v in model.query_ids}
        repairable_noisy = {c for c in detection.noisy_cells}
        assert query_cells == repairable_noisy

    def test_query_domains_contain_init(self, compiled, figure1_dataset):
        model, _ = compiled
        for vid in model.query_ids:
            info = model.graph.variables[vid]
            init = figure1_dataset.cell_value(info.cell)
            if init is not None:
                assert init in info.domain

    def test_evidence_has_valid_labels(self, compiled):
        model, _ = compiled
        for vid, label in zip(model.evidence_ids, model.evidence_labels):
            info = model.graph.variables[vid]
            assert 0 <= label < info.domain_size

    def test_evidence_excludes_noisy_cells(self, compiled, figure1_dataset):
        model, detection = compiled
        # Weak-label ids (query vars reused for training) are allowed;
        # genuine evidence variables must be clean cells.
        for vid in model.evidence_ids:
            info = model.graph.variables[vid]
            if info.is_evidence:
                assert info.cell not in detection.noisy_cells


class TestEvidenceSampling:
    def test_max_training_cells_cap(self, figure1_dataset, figure1_constraints):
        config = HoloCleanConfig(tau=0.3, max_training_cells=10, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        model = ModelCompiler(figure1_dataset, figure1_constraints, config,
                              detection).compile()
        true_evidence = [v for v in model.evidence_ids
                         if model.graph.variables[v].is_evidence]
        assert len(true_evidence) <= 10

    def test_evidence_negatives_extend_domains(self, figure1_dataset,
                                               figure1_constraints):
        config = HoloCleanConfig(tau=0.3, evidence_negatives=2, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        model = ModelCompiler(figure1_dataset, figure1_constraints, config,
                              detection).compile()
        sizes = [model.graph.variables[v].domain_size
                 for v in model.evidence_ids
                 if model.graph.variables[v].is_evidence]
        assert sizes and all(s >= 2 for s in sizes)


class TestFactors:
    def test_no_factors_for_dc_feats(self, compiled):
        model, _ = compiled
        assert model.graph.factors == []

    def test_factors_grounded_for_dc_factors(self, figure1_dataset,
                                             figure1_constraints):
        config = HoloCleanConfig.variant("dc-factors", tau=0.3, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        model = ModelCompiler(figure1_dataset, figure1_constraints, config,
                              detection).compile()
        assert len(model.graph.factors) > 0
        for factor in model.graph.factors:
            # Factors span only query variables.
            for vid in factor.var_ids:
                assert not model.graph.variables[vid].is_evidence
            # Tables are non-constant (constant factors are dropped).
            assert (factor.table == -1).any()
            assert (factor.table == 1).any()

    def test_partitioning_grounds_fewer_or_equal_factors(
            self, figure1_dataset, figure1_constraints):
        detection = ViolationDetector(figure1_constraints).detect(figure1_dataset)
        counts = {}
        for name in ("dc-factors", "dc-factors+partitioning"):
            config = HoloCleanConfig.variant(name, tau=0.3, seed=1)
            model = ModelCompiler(figure1_dataset, figure1_constraints,
                                  config, detection).compile()
            counts[name] = len(model.graph.factors)
        assert counts["dc-factors+partitioning"] <= counts["dc-factors"]


class TestProgramAndReport:
    def test_ddlog_program_present(self, compiled):
        model, _ = compiled
        text = "\n".join(model.ddlog_program)
        assert "Value?(t, a, d) :- Domain(t, a, d)" in text
        assert "!Value?" in text  # relaxed rules for dc-feats

    def test_size_report_keys(self, compiled):
        model, _ = compiled
        report = model.size_report()
        for key in ("variables", "query_variables", "feature_entries",
                    "weights", "constraint_factors", "skipped_factors"):
            assert key in report

    def test_minimality_weight_pinned(self, compiled):
        model, _ = compiled
        fixed = model.graph.space.fixed_weights
        idx = model.graph.space.get(("minimality",))
        assert idx is not None and idx in fixed


class TestEvidenceSampling:
    def test_mask_sampler_matches_reference(self, figure1_dataset,
                                            figure1_constraints):
        """The vectorized clean-cell sampler selects exactly the cells the
        old per-cell list comprehension selected — same order, same RNG
        stream — with and without the training cap."""
        import numpy as np

        from repro.dataset.dataset import Cell

        detection = ViolationDetector(figure1_constraints).detect(
            figure1_dataset)
        repairable = figure1_dataset.schema.data_attributes
        query_cells = {c for c in detection.noisy_cells
                       if c.attribute in set(repairable)}
        for cap in (None, 5, 2):
            config = HoloCleanConfig(tau=0.3, seed=1, max_training_cells=cap)
            compiler = ModelCompiler(figure1_dataset, figure1_constraints,
                                     config, detection)
            reference = [
                Cell(tid, a)
                for tid in figure1_dataset.tuple_ids
                for a in repairable
                if Cell(tid, a) not in detection.noisy_cells
                and Cell(tid, a) not in query_cells
            ]
            if cap is not None and len(reference) > cap:
                rng = np.random.default_rng(config.seed)
                picked = rng.choice(len(reference), size=cap, replace=False)
                reference = [reference[i] for i in sorted(picked)]
            assert compiler._sample_evidence(query_cells) == reference, cap


class TestInitValueRelation:
    def test_relations_materialise_init_values(self, compiled,
                                               figure1_dataset):
        model, _ = compiled
        relations = model.relations
        assert relations.init_values, "InitValue relation not materialised"
        for cell, value in relations.init_values.items():
            assert value == figure1_dataset.cell_value(cell)
            assert relations.init_value(cell) == value

    def test_engine_and_naive_relations_identical(self, figure1_dataset,
                                                  figure1_constraints):
        """The compiler grounds against the engine-decoded InitValue
        relation in production; it must equal the naive probe map, key
        order included."""
        from repro.engine import Engine

        config = HoloCleanConfig(tau=0.3, seed=1)
        detection = ViolationDetector(figure1_constraints).detect(
            figure1_dataset)
        naive = ModelCompiler(figure1_dataset, figure1_constraints,
                              config.with_(use_engine=False), detection,
                              engine=None).compile()
        fast = ModelCompiler(figure1_dataset, figure1_constraints, config,
                             detection,
                             engine=Engine(figure1_dataset)).compile()
        assert fast.relations.init_values == naive.relations.init_values
        assert (list(fast.relations.init_values)
                == list(naive.relations.init_values))
