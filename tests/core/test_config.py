"""Tests for HoloCleanConfig and the Figure 5 variant presets."""

import pytest

from repro.core.config import VARIANTS, HoloCleanConfig


class TestValidation:
    def test_defaults_valid(self):
        config = HoloCleanConfig()
        assert config.tau == 0.5
        assert config.use_dc_feats and not config.use_dc_factors

    @pytest.mark.parametrize("tau", [-0.1, 1.1])
    def test_tau_range(self, tau):
        with pytest.raises(ValueError, match="tau"):
            HoloCleanConfig(tau=tau)

    def test_max_domain_positive(self):
        with pytest.raises(ValueError, match="max_domain"):
            HoloCleanConfig(max_domain=0)

    def test_cooccur_tying_values(self):
        assert HoloCleanConfig(cooccur_tying="value").cooccur_tying == "value"
        with pytest.raises(ValueError, match="cooccur_tying"):
            HoloCleanConfig(cooccur_tying="bogus")

    def test_some_signal_required(self):
        with pytest.raises(ValueError, match="at least one"):
            HoloCleanConfig(use_dc_feats=False, use_dc_factors=False,
                            use_cooccur=False, use_minimality=False,
                            use_frequency=False)


class TestVariants:
    def test_all_variants_construct(self):
        for name in VARIANTS:
            config = HoloCleanConfig.variant(name)
            assert config.variant_name.startswith(name.split("+")[0])

    def test_dc_feats_default(self):
        config = HoloCleanConfig.variant("dc-feats")
        assert config.use_dc_feats
        assert not config.use_dc_factors
        assert not config.use_partitioning

    def test_dc_factors_partitioning(self):
        config = HoloCleanConfig.variant("dc-factors+partitioning")
        assert not config.use_dc_feats
        assert config.use_dc_factors
        assert config.use_partitioning

    def test_full_variant(self):
        config = HoloCleanConfig.variant("dc-feats+dc-factors+partitioning")
        assert config.use_dc_feats and config.use_dc_factors
        assert config.use_partitioning

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            HoloCleanConfig.variant("nope")

    def test_variant_overrides(self):
        config = HoloCleanConfig.variant("dc-feats", tau=0.9)
        assert config.tau == 0.9


class TestWith:
    def test_with_returns_modified_copy(self):
        base = HoloCleanConfig()
        changed = base.with_(tau=0.7)
        assert changed.tau == 0.7
        assert base.tau == 0.5

    def test_with_validates(self):
        with pytest.raises(ValueError):
            HoloCleanConfig().with_(tau=5.0)

    def test_variant_name_roundtrip(self):
        assert HoloCleanConfig.variant("dc-feats").variant_name == "dc-feats"
        full = HoloCleanConfig.variant("dc-feats+dc-factors+partitioning")
        assert full.variant_name == "dc-feats+dc-factors+partitioning"
