"""Tests for approximate FD discovery."""

import pytest

from repro.constraints.discovery import discover_fds, discovered_to_constraints
from repro.data import generate_hospital
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema


@pytest.fixture
def zip_city_data():
    schema = Schema(["Zip", "City", "Noise"])
    rows = []
    for i in range(30):
        zipcode = f"z{i % 5}"
        city = f"city{i % 5}"
        rows.append([zipcode, city, f"n{i}"])
    # One dirty cell: the FD Zip -> City holds at ~97% confidence.
    rows.append(["z0", "WRONG", "x"])
    return Dataset(schema, rows)


class TestDiscoverFds:
    def test_finds_approximate_fd(self, zip_city_data):
        discovered = discover_fds(zip_city_data, max_lhs=1,
                                  min_confidence=0.9, min_support=10)
        as_text = [str(d.fd) for d in discovered]
        assert "Zip -> City" in as_text
        hit = next(d for d in discovered if str(d.fd) == "Zip -> City")
        assert hit.violations == 1
        assert hit.confidence == pytest.approx(30 / 31)

    def test_exact_fd_has_confidence_one(self, zip_city_data):
        discovered = discover_fds(zip_city_data, max_lhs=1,
                                  min_confidence=0.99, min_support=10)
        city_zip = [d for d in discovered if str(d.fd) == "City -> Zip"]
        assert city_zip and city_zip[0].confidence == 1.0

    def test_key_like_lhs_filtered(self, zip_city_data):
        discovered = discover_fds(zip_city_data, max_lhs=1,
                                  min_confidence=0.5, min_support=10)
        assert not any("Noise ->" in str(d.fd) for d in discovered)

    def test_min_support(self, zip_city_data):
        assert discover_fds(zip_city_data, min_support=10_000) == []

    def test_minimality_suppresses_superset_lhs(self, zip_city_data):
        discovered = discover_fds(zip_city_data, max_lhs=2,
                                  min_confidence=0.9, min_support=10)
        # City -> Zip holds, so {City, X} -> Zip must not be reported.
        assert not any(len(d.fd.lhs) == 2 and "Zip" in d.fd.rhs
                       and "City" in d.fd.lhs for d in discovered)

    def test_sorted_by_confidence(self, zip_city_data):
        discovered = discover_fds(zip_city_data, max_lhs=1,
                                  min_confidence=0.5, min_support=10)
        confidences = [d.confidence for d in discovered]
        assert confidences == sorted(confidences, reverse=True)

    def test_str(self, zip_city_data):
        (first, *_rest) = discover_fds(zip_city_data, max_lhs=1,
                                       min_confidence=0.9, min_support=10)
        assert "confidence" in str(first)


class TestOnGeneratedData:
    def test_recovers_hospital_dependencies(self):
        g = generate_hospital(num_rows=300)
        discovered = discover_fds(g.dirty, max_lhs=1, min_confidence=0.9,
                                  min_support=50)
        as_text = {str(d.fd) for d in discovered}
        # The generator's ground-truth FDs should surface despite the noise.
        assert "ZipCode -> City" in as_text
        assert "MeasureCode -> MeasureName" in as_text

    def test_compiles_to_constraints(self, zip_city_data):
        discovered = discover_fds(zip_city_data, max_lhs=1,
                                  min_confidence=0.9, min_support=10)
        constraints = discovered_to_constraints(discovered)
        assert constraints
        assert all(len(dc.predicates) >= 2 for dc in constraints)

    def test_discovered_constraints_drive_repairs(self, zip_city_data):
        """End to end: profile, compile, repair — no hand-written DCs."""
        from repro.core.config import HoloCleanConfig
        from repro.core.pipeline import HoloClean
        discovered = discover_fds(zip_city_data, max_lhs=1,
                                  min_confidence=0.9, min_support=10)
        constraints = discovered_to_constraints(discovered)
        result = HoloClean(HoloCleanConfig(tau=0.3, epochs=30, seed=1)).repair(
            zip_city_data, constraints)
        from repro.dataset.dataset import Cell
        repair = result.inferences.get(Cell(30, "City"))
        assert repair is not None
        assert repair.chosen_value == "city0"
