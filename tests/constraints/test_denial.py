"""Tests for denial constraints (Section 3.1 semantics)."""

import pytest

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, Predicate, TupleRef


@pytest.fixture
def zip_state_dc():
    """Example 2: ¬(t1.Zip = t2.Zip ∧ t1.State ≠ t2.State)."""
    return DenialConstraint([
        Predicate(TupleRef(1, "Zip"), Operator.EQ, TupleRef(2, "Zip")),
        Predicate(TupleRef(1, "State"), Operator.NEQ, TupleRef(2, "State")),
    ], name="zip_state")


class TestStructure:
    def test_needs_predicates(self):
        with pytest.raises(ValueError, match="at least one"):
            DenialConstraint([])

    def test_is_single_tuple(self, zip_state_dc):
        assert not zip_state_dc.is_single_tuple
        single = DenialConstraint([
            Predicate(TupleRef(1, "Age"), Operator.LT, Const("0"))])
        assert single.is_single_tuple

    def test_attributes(self, zip_state_dc):
        assert zip_state_dc.attributes == {"Zip", "State"}

    def test_attributes_of(self, zip_state_dc):
        assert zip_state_dc.attributes_of(1) == {"Zip", "State"}
        assert zip_state_dc.attributes_of(2) == {"Zip", "State"}

    def test_equijoin_and_residual_split(self, zip_state_dc):
        assert len(zip_state_dc.equijoin_predicates) == 1
        assert zip_state_dc.equijoin_predicates[0].left.attribute == "Zip"
        assert len(zip_state_dc.residual_predicates) == 1

    def test_default_name_generated(self):
        dc = DenialConstraint([
            Predicate(TupleRef(1, "Zip"), Operator.EQ, TupleRef(2, "Zip"))])
        assert dc.name


class TestEvaluation:
    def test_violates_when_all_predicates_hold(self, zip_state_dc):
        assert zip_state_dc.violates({"Zip": "1", "State": "IL"},
                                     {"Zip": "1", "State": "MA"})

    def test_no_violation_when_any_predicate_fails(self, zip_state_dc):
        assert not zip_state_dc.violates({"Zip": "1", "State": "IL"},
                                         {"Zip": "2", "State": "MA"})
        assert not zip_state_dc.violates({"Zip": "1", "State": "IL"},
                                         {"Zip": "1", "State": "IL"})

    def test_null_blocks_violation(self, zip_state_dc):
        assert not zip_state_dc.violates({"Zip": None, "State": "IL"},
                                         {"Zip": None, "State": "MA"})

    def test_violates_symmetric(self):
        dc = DenialConstraint([
            Predicate(TupleRef(1, "Sal"), Operator.GT, TupleRef(2, "Sal")),
            Predicate(TupleRef(1, "Rank"), Operator.LT, TupleRef(2, "Rank")),
        ])
        low = {"Sal": "100", "Rank": "1"}
        high = {"Sal": "50", "Rank": "2"}
        assert dc.violates(low, high)
        assert not dc.violates(high, low)
        assert dc.violates_symmetric(high, low)

    def test_single_tuple_violation(self):
        dc = DenialConstraint([
            Predicate(TupleRef(1, "State"), Operator.EQ, Const("IL")),
            Predicate(TupleRef(1, "Zip"), Operator.EQ, Const("99999")),
        ])
        assert dc.violates({"State": "IL", "Zip": "99999"})
        assert not dc.violates({"State": "IL", "Zip": "60608"})

    def test_str_shows_quantifier(self, zip_state_dc):
        assert "∀t1,t2" in str(zip_state_dc)
