"""Tests for denial-constraint predicates."""

import pytest

from repro.constraints.predicates import Const, Operator, Predicate, TupleRef


def pred(op, right=None):
    return Predicate(TupleRef(1, "A"), op, right or TupleRef(2, "A"))


class TestTupleRef:
    def test_valid_indices(self):
        assert TupleRef(1, "A").tuple_index == 1
        assert TupleRef(2, "A").tuple_index == 2

    def test_invalid_index(self):
        with pytest.raises(ValueError, match="1 or 2"):
            TupleRef(3, "A")

    def test_str(self):
        assert str(TupleRef(1, "City")) == "t1.City"
        assert str(Const("IL")) == '"IL"'


class TestEvaluation:
    def test_eq(self):
        assert pred(Operator.EQ).evaluate({"A": "x"}, {"A": "x"})
        assert not pred(Operator.EQ).evaluate({"A": "x"}, {"A": "y"})

    def test_neq(self):
        assert pred(Operator.NEQ).evaluate({"A": "x"}, {"A": "y"})

    def test_numeric_comparison(self):
        assert pred(Operator.LT).evaluate({"A": "9"}, {"A": "10"})
        assert pred(Operator.GT).evaluate({"A": "10"}, {"A": "9"})

    def test_lexicographic_fallback(self):
        # "10" < "9" lexicographically, but "9x" forces string comparison.
        assert pred(Operator.LT).evaluate({"A": "10x"}, {"A": "9x"})

    def test_lte_gte(self):
        assert pred(Operator.LTE).evaluate({"A": "5"}, {"A": "5"})
        assert pred(Operator.GTE).evaluate({"A": "5"}, {"A": "5"})

    def test_similarity_operator(self):
        p = Predicate(TupleRef(1, "A"), Operator.SIM, TupleRef(2, "A"),
                      sim_threshold=0.8)
        assert p.evaluate({"A": "Chicago"}, {"A": "Cicago"})
        assert not p.evaluate({"A": "Chicago"}, {"A": "Boston"})

    def test_constant_operand(self):
        p = Predicate(TupleRef(1, "State"), Operator.EQ, Const("IL"))
        assert p.evaluate({"State": "IL"})
        assert not p.evaluate({"State": "MA"})

    def test_null_never_fires(self):
        assert not pred(Operator.EQ).evaluate({"A": None}, {"A": None})
        assert not pred(Operator.NEQ).evaluate({"A": None}, {"A": "x"})

    def test_missing_second_tuple_raises(self):
        with pytest.raises(ValueError, match="no second tuple"):
            pred(Operator.EQ).evaluate({"A": "x"})

    def test_same_tuple_reference(self):
        p = Predicate(TupleRef(1, "A"), Operator.NEQ, TupleRef(1, "B"))
        assert p.evaluate({"A": "x", "B": "y"})


class TestStructure:
    def test_is_binary(self):
        assert pred(Operator.EQ).is_binary
        p_const = Predicate(TupleRef(1, "A"), Operator.EQ, Const("x"))
        assert not p_const.is_binary
        p_same = Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(1, "B"))
        assert not p_same.is_binary

    def test_is_equijoin(self):
        assert pred(Operator.EQ).is_equijoin
        assert not pred(Operator.NEQ).is_equijoin

    def test_attributes(self):
        p = Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "B"))
        assert p.attributes == {"A", "B"}

    def test_attributes_of_position(self):
        p = Predicate(TupleRef(1, "A"), Operator.EQ, TupleRef(2, "B"))
        assert p.attributes_of(1) == {"A"}
        assert p.attributes_of(2) == {"B"}

    def test_negated_operators(self):
        assert Operator.EQ.negated is Operator.NEQ
        assert Operator.LT.negated is Operator.GTE
        assert Operator.GTE.negated is Operator.LT

    def test_str(self):
        assert str(pred(Operator.EQ)) == "t1.A = t2.A"


class TestCodeSpaceEvaluation:
    """The vectorized evaluators must agree with ``compare`` exactly.

    The value set mixes numerics, strings, and numeric-looking strings
    whose numeric and lexicographic orders disagree ("10" < "9" as
    strings, 9 < 10 as floats), plus ``inf``/``nan`` parses — the cases
    where a rank-based "ordered codebook" would get pairwise coercion
    wrong.
    """

    VALUES = ["10", "9", "5a", "", "nan", "inf", "2.50", "2.5", "b", "-3"]

    @pytest.mark.parametrize("op", [Operator.EQ, Operator.NEQ, Operator.LT,
                                    Operator.GT, Operator.LTE, Operator.GTE])
    def test_compare_coded_matches_compare(self, op):
        import itertools

        import numpy as np

        from repro.constraints.predicates import OrderKeys

        predicate = pred(op)
        keys = OrderKeys.from_values(self.VALUES)
        pairs = list(itertools.product(range(len(self.VALUES)), repeat=2))
        left = np.array([a for a, _ in pairs])
        right = np.array([b for _, b in pairs])
        coded = predicate.compare_coded(left, right, keys)
        for (a, b), got in zip(pairs, coded.tolist()):
            expected = predicate.compare(self.VALUES[a], self.VALUES[b])
            assert got == expected, (self.VALUES[a], op, self.VALUES[b])

    def test_null_codes_never_satisfy(self):
        import numpy as np

        from repro.constraints.predicates import OrderKeys

        keys = OrderKeys.from_values(self.VALUES)
        left = np.array([-1, 0, -1])
        right = np.array([0, -1, -1])
        for op in (Operator.EQ, Operator.NEQ, Operator.LT, Operator.GTE):
            assert not pred(op).compare_coded(left, right, keys).any()

    @pytest.mark.parametrize("op", [Operator.EQ, Operator.NEQ, Operator.LT,
                                    Operator.GTE, Operator.SIM,
                                    Operator.NSIM])
    def test_constant_mask_matches_compare(self, op):
        predicate = Predicate(TupleRef(1, "A"), op, Const("2.5"))
        mask = predicate.constant_mask(self.VALUES)
        for code, value in enumerate(self.VALUES):
            assert mask[code] == predicate.compare(value, "2.5"), (value, op)

    def test_binary_similarity_is_not_code_comparable(self):
        assert not pred(Operator.SIM).is_code_comparable
        assert not pred(Operator.NSIM).is_code_comparable
        assert pred(Operator.LT).is_code_comparable
        const_sim = Predicate(TupleRef(1, "A"), Operator.SIM, Const("x"))
        assert const_sim.is_code_comparable

    def test_order_without_keys_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="code-comparable"):
            pred(Operator.LT).compare_coded(np.array([0]), np.array([1]))
