"""Tests for the textual denial-constraint format."""

import pytest

from repro.constraints.parser import DCParseError, format_dc, parse_dc, parse_dcs
from repro.constraints.predicates import Const, Operator, TupleRef


class TestParse:
    def test_fd_style(self):
        dc = parse_dc("t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)")
        assert len(dc.predicates) == 2
        assert dc.predicates[0].op is Operator.EQ
        assert dc.predicates[1].op is Operator.NEQ
        assert not dc.is_single_tuple

    def test_all_operators(self):
        text = ("t1&t2&EQ(t1.A,t2.A)&IQ(t1.B,t2.B)&LT(t1.C,t2.C)"
                "&GT(t1.D,t2.D)&LTE(t1.E,t2.E)&GTE(t1.F,t2.F)&SIM(t1.G,t2.G)")
        dc = parse_dc(text)
        ops = [p.op for p in dc.predicates]
        assert ops == [Operator.EQ, Operator.NEQ, Operator.LT, Operator.GT,
                       Operator.LTE, Operator.GTE, Operator.SIM]

    def test_quoted_constant(self):
        dc = parse_dc('t1&EQ(t1.State,"IL")')
        assert dc.predicates[0].right == Const("IL")
        assert dc.is_single_tuple

    def test_bare_constant(self):
        dc = parse_dc("t1&EQ(t1.State,IL)")
        assert dc.predicates[0].right == Const("IL")

    def test_constant_with_comma_inside_quotes(self):
        dc = parse_dc('t1&EQ(t1.City,"Chicago, IL")')
        assert dc.predicates[0].right == Const("Chicago, IL")

    def test_constant_first_is_flipped(self):
        dc = parse_dc('t1&LT("5",t1.Age)')
        p = dc.predicates[0]
        assert isinstance(p.left, TupleRef)
        assert p.op is Operator.GT  # 5 < Age became Age > 5
        assert p.right == Const("5")

    def test_attribute_with_dots(self):
        dc = parse_dc("t1&t2&EQ(t1.a.b,t2.a.b)")
        assert dc.predicates[0].left.attribute == "a.b"

    def test_sim_threshold_propagated(self):
        dc = parse_dc("t1&t2&SIM(t1.A,t2.A)", sim_threshold=0.5)
        assert dc.predicates[0].sim_threshold == 0.5


class TestParseErrors:
    def test_empty(self):
        with pytest.raises(DCParseError):
            parse_dc("")

    def test_no_predicates(self):
        with pytest.raises(DCParseError, match="no predicates"):
            parse_dc("t1&t2")

    def test_unknown_operator(self):
        with pytest.raises(DCParseError, match="unknown operator"):
            parse_dc("t1&t2&XX(t1.A,t2.A)")

    def test_malformed_predicate(self):
        with pytest.raises(DCParseError, match="malformed"):
            parse_dc("t1&t2&EQ[t1.A,t2.A]")

    def test_one_operand(self):
        with pytest.raises(DCParseError, match="two operands"):
            parse_dc("t1&EQ(t1.A)")

    def test_two_constants(self):
        with pytest.raises(DCParseError, match="tuple attribute"):
            parse_dc('t1&EQ("a","b")')


class TestParseMany:
    def test_skips_comments_and_blanks(self):
        dcs = parse_dcs([
            "# a comment",
            "",
            "t1&t2&EQ(t1.A,t2.A)&IQ(t1.B,t2.B)",
            "t1&t2&EQ(t1.C,t2.C)&IQ(t1.D,t2.D)",
        ])
        assert len(dcs) == 2
        assert dcs[0].name == "dc0"
        assert dcs[1].name == "dc1"


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)",
        't1&EQ(t1.State,"IL")',
        "t1&t2&EQ(t1.A,t2.A)&LT(t1.B,t2.B)&SIM(t1.C,t2.C)",
    ])
    def test_format_then_parse(self, text):
        dc = parse_dc(text)
        assert format_dc(parse_dc(format_dc(dc))) == format_dc(dc)
