"""Tests for functional dependencies → denial constraints (Example 2)."""

import pytest

from repro.constraints.fd import FunctionalDependency, parse_fd
from repro.constraints.predicates import Operator


class TestFunctionalDependency:
    def test_example2_conversion(self):
        fd = FunctionalDependency(["Zip"], ["City", "State"])
        dcs = fd.to_denial_constraints()
        assert len(dcs) == 2
        for dc, target in zip(dcs, ["City", "State"]):
            assert len(dc.predicates) == 2
            join, neq = dc.predicates
            assert join.op is Operator.EQ and join.left.attribute == "Zip"
            assert neq.op is Operator.NEQ and neq.left.attribute == target

    def test_composite_lhs(self):
        fd = FunctionalDependency(["City", "State", "Address"], ["Zip"])
        (dc,) = fd.to_denial_constraints()
        assert len(dc.equijoin_predicates) == 3
        assert len(dc.residual_predicates) == 1

    def test_empty_sides_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependency([], ["A"])
        with pytest.raises(ValueError):
            FunctionalDependency(["A"], [])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="both sides"):
            FunctionalDependency(["A"], ["A", "B"])

    def test_str(self):
        assert str(FunctionalDependency(["Zip"], ["City"])) == "Zip -> City"


class TestParseFd:
    def test_simple(self):
        fd = parse_fd("Zip -> City,State")
        assert fd.lhs == ("Zip",)
        assert fd.rhs == ("City", "State")

    def test_whitespace_tolerant(self):
        fd = parse_fd("  City , State ->  Zip ")
        assert fd.lhs == ("City", "State")
        assert fd.rhs == ("Zip",)

    def test_missing_arrow(self):
        with pytest.raises(ValueError, match="->"):
            parse_fd("Zip City")

    def test_constraint_names_are_distinct(self):
        dcs = parse_fd("Zip -> City,State").to_denial_constraints()
        assert len({dc.name for dc in dcs}) == 2
