"""Tests for the string-similarity library behind the ≈ operator."""

import pytest

from repro.constraints.similarity import (
    jaccard,
    levenshtein,
    normalized_similarity,
    similar,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_vs_nonempty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_insertion_deletion(self):
        assert levenshtein("abc", "abxc") == 1
        assert levenshtein("abxc", "abc") == 1

    def test_symmetric(self):
        assert levenshtein("chicago", "cicago") == levenshtein("cicago", "chicago")

    def test_early_exit_returns_bound_plus_one(self):
        assert levenshtein("aaaa", "zzzz", max_distance=1) == 2

    def test_early_exit_length_gap(self):
        assert levenshtein("a", "aaaaaa", max_distance=2) == 3

    def test_early_exit_does_not_change_small_distances(self):
        assert levenshtein("abc", "abd", max_distance=5) == 1


class TestNormalizedSimilarity:
    def test_identical(self):
        assert normalized_similarity("abc", "abc") == 1.0

    def test_disjoint(self):
        assert normalized_similarity("abc", "xyz") == 0.0

    def test_both_empty(self):
        assert normalized_similarity("", "") == 1.0

    def test_paper_example(self):
        # "Cicago" vs "Chicago": one insertion over 7 chars.
        assert normalized_similarity("Cicago", "Chicago") == pytest.approx(6 / 7)


class TestJaccard:
    def test_identical_tokens(self):
        assert jaccard("a b c", "c b a") == 1.0

    def test_partial_overlap(self):
        assert jaccard("a b", "b c") == pytest.approx(1 / 3)

    def test_empty_both(self):
        assert jaccard("", "") == 1.0

    def test_one_empty(self):
        assert jaccard("a", "") == 0.0


class TestSimilar:
    def test_exact_match(self):
        assert similar("abc", "abc")

    def test_null_similar_to_nothing(self):
        assert not similar(None, "abc")
        assert not similar("abc", None)
        assert not similar(None, None)

    def test_paper_city_match(self):
        assert similar("Cicago", "Chicago", threshold=0.8)

    def test_threshold_rejects_distant(self):
        assert not similar("Chicago", "Boston", threshold=0.8)

    def test_threshold_one_requires_exact(self):
        assert not similar("abc", "abd", threshold=1.0)
        assert similar("abc", "abc", threshold=1.0)

    def test_length_gap_short_circuit(self):
        assert not similar("ab", "abcdefghij", threshold=0.9)
