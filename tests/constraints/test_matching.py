"""Tests for matching dependencies (Figure 1C semantics)."""

import pytest

from repro.constraints.matching import MatchingDependency, MatchPredicate


class TestMatchPredicate:
    def test_exact_match(self):
        p = MatchPredicate("Zip", "Ext_Zip")
        assert p.matches("60608", "60608")
        assert not p.matches("60608", "60609")

    def test_fuzzy_match(self):
        p = MatchPredicate("City", "Ext_City", fuzzy=True)
        assert p.matches("Cicago", "Chicago")
        assert not p.matches("Boston", "Chicago")

    def test_null_never_matches(self):
        p = MatchPredicate("Zip", "Ext_Zip")
        assert not p.matches(None, "60608")
        assert not p.matches("60608", None)

    def test_str_shows_operator(self):
        assert "≈" in str(MatchPredicate("City", "Ext_City", fuzzy=True))
        assert "=" in str(MatchPredicate("Zip", "Ext_Zip"))


class TestMatchingDependency:
    def test_needs_match_predicates(self):
        with pytest.raises(ValueError, match="at least one"):
            MatchingDependency([], "City", "Ext_City")

    def test_entry_matches_all_predicates(self):
        md = MatchingDependency(
            [MatchPredicate("City", "Ext_City"),
             MatchPredicate("State", "Ext_State")],
            "Zip", "Ext_Zip")
        entry = {"Ext_City": "Chicago", "Ext_State": "IL", "Ext_Zip": "60608"}
        assert md.entry_matches({"City": "Chicago", "State": "IL"}, entry)
        assert not md.entry_matches({"City": "Chicago", "State": "MA"}, entry)

    def test_m1_from_paper(self):
        m1 = MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                                "City", "Ext_City", name="m1")
        assert m1.entry_matches({"Zip": "60608"},
                                {"Ext_Zip": "60608", "Ext_City": "Chicago"})

    def test_str(self):
        md = MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                                "City", "Ext_City")
        assert "→" in str(md)
