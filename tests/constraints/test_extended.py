"""Tests for conditional and metric functional dependencies (§3.1)."""

import pytest

from repro.constraints.extended import (
    ConditionalFunctionalDependency,
    MetricFunctionalDependency,
)
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.detect.violations import ViolationDetector


class TestVariableCfd:
    @pytest.fixture
    def cfd(self):
        return ConditionalFunctionalDependency(
            ("Country", "Zip"), "Street", pattern={"Country": "UK"})

    def test_holds_only_inside_pattern(self, cfd):
        ds = Dataset(Schema(["Country", "Zip", "Street"]), [
            ["UK", "EC1", "High St"],
            ["UK", "EC1", "Low St"],    # violates: UK pattern matched
            ["US", "EC1", "Main St"],
            ["US", "EC1", "Other St"],  # no violation: outside pattern
        ])
        (dc,) = cfd.to_denial_constraints()
        detection = ViolationDetector([dc]).detect(ds)
        assert {frozenset(v.tids) for v in detection.hypergraph.violations} \
            == {frozenset({0, 1})}

    def test_pattern_must_bind_lhs(self):
        with pytest.raises(ValueError, match="outside the LHS"):
            ConditionalFunctionalDependency(("A",), "B", pattern={"C": "x"})

    def test_rhs_not_in_lhs(self):
        with pytest.raises(ValueError, match="RHS"):
            ConditionalFunctionalDependency(("A", "B"), "A")

    def test_str(self, cfd):
        assert "Country='UK'" in str(cfd)


class TestConstantCfd:
    def test_single_tuple_constraint(self):
        cfd = ConditionalFunctionalDependency(
            ("Zip",), "City", pattern={"Zip": "60608"},
            rhs_constant="Chicago")
        (dc,) = cfd.to_denial_constraints()
        assert dc.is_single_tuple
        ds = Dataset(Schema(["Zip", "City"]), [
            ["60608", "Chicago"],
            ["60608", "Cicago"],   # violates the constant binding
            ["60609", "Anything"],
        ])
        detection = ViolationDetector([dc]).detect(ds)
        assert {c.tid for c in detection.noisy_cells} == {1}

    def test_repairs_through_pipeline(self):
        from repro.core.config import HoloCleanConfig
        from repro.core.pipeline import HoloClean
        cfd = ConditionalFunctionalDependency(
            ("Zip",), "City", pattern={"Zip": "60608"},
            rhs_constant="Chicago")
        rows = [["60608", "Chicago"]] * 8 + [["60608", "Cicago"]]
        ds = Dataset(Schema(["Zip", "City"]), rows)
        result = HoloClean(HoloCleanConfig(tau=0.3, epochs=30, seed=1)).repair(
            ds, cfd.to_denial_constraints())
        assert result.inferences[Cell(8, "City")].chosen_value == "Chicago"


class TestMetricFd:
    def test_tolerates_similar_values(self):
        mfd = MetricFunctionalDependency(("Flight",), "Gate", threshold=0.75)
        (dc,) = mfd.to_denial_constraints()
        ds = Dataset(Schema(["Flight", "Gate"]), [
            ["F1", "GATE-12A"],
            ["F1", "GATE-12B"],    # similar: no violation
            ["F2", "GATE-1"],
            ["F2", "TERMINAL-9"],  # dissimilar: violation
        ])
        detection = ViolationDetector([dc]).detect(ds)
        assert {frozenset(v.tids) for v in detection.hypergraph.violations} \
            == {frozenset({2, 3})}

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            MetricFunctionalDependency(("A",), "B", threshold=0.0)

    def test_exact_fd_is_the_limit_case(self):
        """At threshold 1.0 the metric FD behaves like an exact FD."""
        mfd = MetricFunctionalDependency(("K",), "V", threshold=1.0)
        (dc,) = mfd.to_denial_constraints()
        ds = Dataset(Schema(["K", "V"]), [["k", "abc"], ["k", "abd"]])
        detection = ViolationDetector([dc]).detect(ds)
        assert len(detection.hypergraph) == 1

    def test_nsim_roundtrips_through_parser(self):
        from repro.constraints.parser import format_dc, parse_dc
        mfd = MetricFunctionalDependency(("K",), "V")
        (dc,) = mfd.to_denial_constraints()
        assert format_dc(parse_dc(format_dc(dc))) == format_dc(dc)
        assert "NSIM" in format_dc(dc)


class TestNsimOperator:
    def test_negation_pairs(self):
        from repro.constraints.predicates import Operator
        assert Operator.SIM.negated is Operator.NSIM
        assert Operator.NSIM.negated is Operator.SIM

    def test_nsim_evaluation(self):
        from repro.constraints.predicates import Operator, Predicate, TupleRef
        p = Predicate(TupleRef(1, "A"), Operator.NSIM, TupleRef(2, "A"),
                      sim_threshold=0.8)
        assert p.evaluate({"A": "Chicago"}, {"A": "Boston"})
        assert not p.evaluate({"A": "Chicago"}, {"A": "Cicago"})
        assert not p.evaluate({"A": None}, {"A": "Boston"})  # NULL blocks
