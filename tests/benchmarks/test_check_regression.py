"""The CI regression gate: compare() math, min_cpus gating, exit codes."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------------------
# compare()
# ---------------------------------------------------------------------------
def test_compare_higher_direction(gate):
    ok, _ = gate.compare(5.0, 5.0, "higher", 0.20)
    assert ok
    ok, _ = gate.compare(4.0, 5.0, "higher", 0.20)  # floor is 4.0
    assert ok
    ok, detail = gate.compare(3.9, 5.0, "higher", 0.20)
    assert not ok
    assert "floor" in detail


def test_compare_lower_direction(gate):
    ok, _ = gate.compare(5.9, 5.0, "lower", 0.20)  # ceiling is 6.0
    assert ok
    ok, detail = gate.compare(6.1, 5.0, "lower", 0.20)
    assert not ok
    assert "ceiling" in detail


def test_compare_unknown_direction_fails(gate):
    ok, detail = gate.compare(1.0, 1.0, "sideways", 0.20)
    assert not ok
    assert "sideways" in detail


# ---------------------------------------------------------------------------
# main()
# ---------------------------------------------------------------------------
def write_setup(tmp_path, baselines, results):
    baselines_path = tmp_path / "baselines.json"
    baselines_path.write_text(json.dumps(baselines))
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    for name, payload in results.items():
        (results_dir / f"BENCH_{name}.json").write_text(json.dumps(payload))
    return ["--baselines", str(baselines_path), "--results", str(results_dir)]


PIN = {"bench": {"metrics": {"speedup": {"value": 5.0, "direction": "higher"}}}}


def test_within_tolerance_exit_zero(gate, tmp_path, capsys):
    argv = write_setup(tmp_path, PIN, {"bench": {"metrics": {"speedup": 4.5}}})
    assert gate.main(argv) == 0
    assert "all 1 pinned metric(s)" in capsys.readouterr().out


def test_regression_exit_one(gate, tmp_path, capsys):
    argv = write_setup(tmp_path, PIN, {"bench": {"metrics": {"speedup": 2.0}}})
    assert gate.main(argv) == 1
    assert "FAIL bench.speedup" in capsys.readouterr().out


def test_custom_tolerance_changes_verdict(gate, tmp_path):
    argv = write_setup(tmp_path, PIN, {"bench": {"metrics": {"speedup": 3.0}}})
    assert gate.main(argv + ["--tolerance", "0.5"]) == 0
    assert gate.main(argv + ["--tolerance", "0.1"]) == 1


def test_missing_result_file_exit_one(gate, tmp_path, capsys):
    argv = write_setup(tmp_path, PIN, {})
    assert gate.main(argv) == 1
    assert "missing result file" in capsys.readouterr().out


def test_missing_metric_key_exit_one(gate, tmp_path, capsys):
    argv = write_setup(tmp_path, PIN, {"bench": {"metrics": {"other": 1.0}}})
    assert gate.main(argv) == 1
    assert "not in BENCH_bench.json" in capsys.readouterr().out


def test_unreadable_baselines_exit_two(gate, tmp_path):
    assert gate.main(["--baselines", str(tmp_path / "absent.json")]) == 2


def test_min_cpus_pin_skipped_on_small_runner(gate, tmp_path, capsys):
    baselines = {
        "bench": {
            "metrics": {
                "speedup": {"value": 5.0, "direction": "higher", "min_cpus": 64}
            }
        }
    }
    results = {"bench": {"metrics": {"speedup": 0.1}, "meta": {"cpus": 2}}}
    argv = write_setup(tmp_path, baselines, results)
    assert gate.main(argv) == 0
    out = capsys.readouterr().out
    assert "skip bench.speedup" in out
    assert "all 0 pinned metric(s)" in out


def test_min_cpus_pin_checked_on_big_runner(gate, tmp_path):
    baselines = {
        "bench": {
            "metrics": {
                "speedup": {"value": 5.0, "direction": "higher", "min_cpus": 2}
            }
        }
    }
    results = {"bench": {"metrics": {"speedup": 0.1}, "meta": {"cpus": 8}}}
    assert gate.main(write_setup(tmp_path, baselines, results)) == 1


def test_min_cpus_pin_skipped_when_cpus_unknown(gate, tmp_path, capsys):
    baselines = {
        "bench": {
            "metrics": {
                "speedup": {"value": 5.0, "direction": "higher", "min_cpus": 2}
            }
        }
    }
    results = {"bench": {"metrics": {"speedup": 0.1}}}
    assert gate.main(write_setup(tmp_path, baselines, results)) == 0
    assert "unknown" in capsys.readouterr().out


def test_repo_baselines_file_is_well_formed(gate):
    baselines = json.loads((REPO_ROOT / "benchmarks" / "baselines.json").read_text())
    for name, spec in baselines.items():
        for metric, pin in spec["metrics"].items():
            assert "value" in pin, (name, metric)
            assert pin.get("direction", "higher") in ("higher", "lower")
