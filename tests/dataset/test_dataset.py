"""Tests for repro.dataset.dataset."""

import pytest

from repro.dataset.dataset import Cell, Dataset, NULL
from repro.dataset.schema import Schema


@pytest.fixture
def schema():
    return Schema(["A", "B"])


class TestCell:
    def test_is_tuple_like(self):
        cell = Cell(3, "City")
        assert cell.tid == 3
        assert cell.attribute == "City"
        assert cell == (3, "City")

    def test_repr(self):
        assert repr(Cell(12, "City")) == "t12.City"

    def test_usable_in_sets(self):
        assert len({Cell(1, "A"), Cell(1, "A"), Cell(2, "A")}) == 2


class TestDatasetConstruction:
    def test_append_returns_tid(self, schema):
        ds = Dataset(schema)
        assert ds.append(["x", "y"]) == 0
        assert ds.append(["z", "w"]) == 1

    def test_row_length_checked(self, schema):
        ds = Dataset(schema)
        with pytest.raises(ValueError, match="schema has 2"):
            ds.append(["only-one"])

    def test_empty_string_normalised_to_null(self, schema):
        ds = Dataset(schema, [["x", ""]])
        assert ds.value(0, "B") is NULL

    def test_whitespace_normalised(self, schema):
        ds = Dataset(schema, [[" x ", "  "]])
        assert ds.value(0, "A") == "x"
        assert ds.value(0, "B") is NULL

    def test_non_string_coerced(self, schema):
        ds = Dataset(schema, [[42, 3.5]])
        assert ds.value(0, "A") == "42"

    def test_from_dicts(self, schema):
        ds = Dataset.from_dicts(schema, [{"A": "x"}, {"B": "y"}])
        assert ds.value(0, "A") == "x"
        assert ds.value(0, "B") is NULL
        assert ds.value(1, "B") == "y"

    def test_from_dicts_rejects_unknown_keys(self, schema):
        with pytest.raises(KeyError, match="not in schema"):
            Dataset.from_dicts(schema, [{"Z": "x"}])


class TestDatasetAccess:
    def test_value_and_set_value(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        ds.set_value(0, "B", "z")
        assert ds.value(0, "B") == "z"

    def test_set_value_normalises(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        ds.set_value(0, "B", "")
        assert ds.value(0, "B") is NULL

    def test_cell_value(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        assert ds.cell_value(Cell(0, "A")) == "x"

    def test_tuple_dict(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        assert ds.tuple_dict(0) == {"A": "x", "B": "y"}

    def test_row_is_copy(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        row = ds.row(0)
        row[0] = "mutated"
        assert ds.value(0, "A") == "x"

    def test_cells_row_major(self, schema):
        ds = Dataset(schema, [["x", "y"], ["z", "w"]])
        assert list(ds.cells()) == [Cell(0, "A"), Cell(0, "B"),
                                    Cell(1, "A"), Cell(1, "B")]

    def test_cells_of(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        assert ds.cells_of(0) == [Cell(0, "A"), Cell(0, "B")]

    def test_num_cells(self, schema):
        ds = Dataset(schema, [["x", "y"], ["z", "w"]])
        assert ds.num_cells == 4


class TestActiveDomain:
    def test_first_seen_order(self, schema):
        ds = Dataset(schema, [["b", "1"], ["a", "2"], ["b", "3"]])
        assert ds.active_domain("A") == ["b", "a"]

    def test_nulls_excluded(self, schema):
        ds = Dataset(schema, [["x", None], ["y", None]])
        assert ds.active_domain("B") == []


class TestCopyAndDiff:
    def test_copy_independent(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        clone = ds.copy()
        clone.set_value(0, "A", "changed")
        assert ds.value(0, "A") == "x"

    def test_diff_lists_changed_cells(self, schema):
        ds = Dataset(schema, [["x", "y"], ["z", "w"]])
        other = ds.copy()
        other.set_value(1, "B", "modified")
        assert ds.diff(other) == [Cell(1, "B")]

    def test_diff_empty_when_equal(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        assert ds.diff(ds.copy()) == []

    def test_diff_shape_mismatch_raises(self, schema):
        ds = Dataset(schema, [["x", "y"]])
        other = Dataset(schema, [["x", "y"], ["z", "w"]])
        with pytest.raises(ValueError, match="identical shape"):
            ds.diff(other)

    def test_equality(self, schema):
        a = Dataset(schema, [["x", "y"]])
        b = Dataset(schema, [["x", "y"]])
        assert a == b
        b.set_value(0, "A", "z")
        assert a != b
