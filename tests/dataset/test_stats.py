"""Tests for repro.dataset.stats — the Algorithm 2 statistics."""

import pytest

from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.dataset.stats import Statistics


@pytest.fixture
def stats():
    schema = Schema(["City", "Zip", "State"])
    ds = Dataset(schema, [
        ["Chicago", "60608", "IL"],
        ["Chicago", "60608", "IL"],
        ["Chicago", "60609", "IL"],
        ["Cicago", "60608", "IL"],
        ["Boston", "02134", "MA"],
        ["Boston", None, "MA"],
    ])
    return Statistics(ds)


class TestSingleCounts:
    def test_counts(self, stats):
        assert stats.counts("City")["Chicago"] == 3
        assert stats.counts("City")["Boston"] == 2

    def test_frequency_missing_value(self, stats):
        assert stats.frequency("City", "Nowhere") == 0

    def test_nulls_not_counted(self, stats):
        assert sum(stats.counts("Zip").values()) == 5

    def test_relative_frequency(self, stats):
        assert stats.relative_frequency("City", "Chicago") == pytest.approx(3 / 6)

    def test_relative_frequency_empty_attribute(self):
        ds = Dataset(Schema(["A"]), [[None], [None]])
        assert Statistics(ds).relative_frequency("A", "x") == 0.0

    def test_num_distinct(self, stats):
        assert stats.num_distinct("State") == 2

    def test_most_common(self, stats):
        assert stats.most_common("City", 1) == [("Chicago", 3)]


class TestPairCounts:
    def test_cooccurrence(self, stats):
        assert stats.cooccurrence("City", "Chicago", "Zip", "60608") == 2

    def test_cooccurrence_is_order_independent(self, stats):
        a = stats.cooccurrence("City", "Chicago", "Zip", "60608")
        b = stats.cooccurrence("Zip", "60608", "City", "Chicago")
        assert a == b == 2

    def test_pair_counts_caller_order(self, stats):
        forward = stats.pair_counts("City", "Zip")
        assert forward[("Chicago", "60608")] == 2
        backward = stats.pair_counts("Zip", "City")
        assert backward[("60608", "Chicago")] == 2

    def test_same_attribute_rejected(self, stats):
        with pytest.raises(ValueError, match="distinct"):
            stats.pair_counts("City", "City")

    def test_null_rows_excluded_from_pairs(self, stats):
        # Boston/None row must not contribute to (City, Zip) pairs.
        assert stats.cooccurrence("City", "Boston", "Zip", "02134") == 1


class TestConditional:
    def test_paper_formula(self, stats):
        # Pr[City=Chicago | Zip=60608] = #(Chicago,60608) / #60608 = 2/3.
        assert stats.conditional("City", "Chicago", "Zip", "60608") == \
            pytest.approx(2 / 3)

    def test_unseen_conditioning_value(self, stats):
        assert stats.conditional("City", "Chicago", "Zip", "99999") == 0.0

    def test_cooccurring_values(self, stats):
        values = stats.cooccurring_values("City", "Zip", "60608")
        assert values == {"Chicago": 2, "Cicago": 1}

    def test_cooccurring_values_reverse_direction(self, stats):
        values = stats.cooccurring_values("Zip", "City", "Chicago")
        assert values == {"60608": 2, "60609": 1}


class TestInvalidation:
    def test_invalidate_after_mutation(self, stats):
        assert stats.frequency("City", "Chicago") == 3
        stats.dataset.set_value(3, "City", "Chicago")  # fix the typo
        stats.invalidate()
        assert stats.frequency("City", "Chicago") == 4


class TestPairCountCaching:
    def test_swapped_orientation_cached(self, stats):
        """Both caller orders are served from cache after the first call.

        The swapped ``Counter`` used to be rebuilt from scratch on every
        call — on Algorithm 2's inner loop and the co-occurrence
        featurizer, once per cell.
        """
        forward = stats.pair_counts("City", "Zip")
        swapped = stats.pair_counts("Zip", "City")
        assert stats.pair_counts("City", "Zip") is forward
        assert stats.pair_counts("Zip", "City") is swapped
        assert swapped == {(b, a): n for (a, b), n in forward.items()}

    def test_swapped_orientation_invalidated(self, stats):
        stats.pair_counts("Zip", "City")
        stats.dataset.set_value(3, "City", "Chicago")
        stats.invalidate()
        after = stats.pair_counts("Zip", "City")
        assert after[("60609", "Chicago")] == 1
