"""Tests for CSV loading/saving."""

import pytest

from repro.dataset.csv_io import read_csv, write_csv
from repro.dataset.dataset import Dataset, NULL
from repro.dataset.schema import Schema


def test_roundtrip(tmp_path):
    schema = Schema(["A", "B"])
    ds = Dataset(schema, [["x", "y"], ["z", None]])
    path = tmp_path / "data.csv"
    write_csv(ds, path)
    loaded = read_csv(path)
    assert loaded == ds


def test_null_written_as_empty_field(tmp_path):
    ds = Dataset(Schema(["A", "B"]), [[None, "x"]])
    path = tmp_path / "data.csv"
    write_csv(ds, path)
    assert path.read_text().splitlines()[1] == ",x"


def test_empty_fields_become_null(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("A,B\nx,\n")
    ds = read_csv(path)
    assert ds.value(0, "B") is NULL


def test_name_defaults_to_stem(tmp_path):
    path = tmp_path / "hospital.csv"
    path.write_text("A\nx\n")
    assert read_csv(path).name == "hospital"


def test_source_attribute_role(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("Src,A\ns1,x\n")
    ds = read_csv(path, source_attribute="Src")
    assert ds.schema.attribute("Src").role == "source"
    assert ds.schema.data_attributes == ["A"]


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="header"):
        read_csv(path)


def test_ragged_row_rejected(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("A,B\nx\n")
    with pytest.raises(ValueError, match="row has 1 fields"):
        read_csv(path)


def test_values_with_commas_roundtrip(tmp_path):
    ds = Dataset(Schema(["A"]), [["hello, world"]])
    path = tmp_path / "data.csv"
    write_csv(ds, path)
    assert read_csv(path).value(0, "A") == "hello, world"
