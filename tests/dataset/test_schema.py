"""Tests for repro.dataset.schema."""

import pytest

from repro.dataset.schema import Attribute, Schema


class TestAttribute:
    def test_default_role_is_data(self):
        assert Attribute("City").role == "data"

    def test_custom_role(self):
        assert Attribute("Source", role="source").role == "source"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Attribute("")

    def test_frozen(self):
        attr = Attribute("City")
        with pytest.raises(AttributeError):
            attr.name = "Town"


class TestSchema:
    def test_from_strings(self):
        schema = Schema(["A", "B"])
        assert schema.names == ["A", "B"]

    def test_from_attributes(self):
        schema = Schema([Attribute("A"), Attribute("B", role="source")])
        assert schema.attribute("B").role == "source"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema(["A", "B", "A"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Schema([])

    def test_index_of(self):
        schema = Schema(["A", "B", "C"])
        assert schema.index_of("B") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(KeyError):
            Schema(["A"]).index_of("Z")

    def test_contains(self):
        schema = Schema(["A", "B"])
        assert "A" in schema
        assert "Z" not in schema

    def test_len_and_iter(self):
        schema = Schema(["A", "B", "C"])
        assert len(schema) == 3
        assert [a.name for a in schema] == ["A", "B", "C"]

    def test_with_role(self):
        schema = Schema([Attribute("S", role="source"), Attribute("A")])
        assert schema.with_role("source") == ["S"]

    def test_data_attributes_excludes_other_roles(self):
        schema = Schema([Attribute("S", role="source"),
                         Attribute("Id", role="id"), Attribute("A")])
        assert schema.data_attributes == ["A"]

    def test_equality_and_hash(self):
        a = Schema(["A", "B"])
        b = Schema(["A", "B"])
        c = Schema(["B", "A"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_respects_roles(self):
        assert Schema([Attribute("A")]) != Schema([Attribute("A", role="id")])

    def test_has(self):
        schema = Schema(["A"])
        assert schema.has("A") and not schema.has("B")

    def test_repr_mentions_names(self):
        assert "'A'" in repr(Schema(["A"]))
