"""Unit tests for `repro.obs.metrics.MetricsRegistry`."""

from repro.obs.metrics import SERIES_CAP, MetricsRegistry


class TestKinds:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("pairs")
        reg.inc("pairs", 4)
        assert reg.counters["pairs"] == 5

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("variables", 10)
        reg.gauge("variables", 12)
        assert reg.gauges["variables"] == 12

    def test_labels_coerce_to_str(self):
        reg = MetricsRegistry()
        reg.label("method", "gibbs")
        reg.label("backend", 42)
        assert reg.labels == {"method": "gibbs", "backend": "42"}

    def test_series_observe_and_extend(self):
        reg = MetricsRegistry()
        reg.observe("loss", 2.0)
        reg.extend("loss", [1.5, 1.0])
        assert reg.series["loss"] == [2.0, 1.5, 1.0]

    def test_series_capped(self):
        reg = MetricsRegistry()
        reg.extend("big", range(SERIES_CAP + 10))
        assert len(reg.series["big"]) == SERIES_CAP
        assert reg.series["big"][0] == 10.0
        assert reg.series["big"][-1] == SERIES_CAP + 9

    def test_len_counts_all_kinds(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.inc("a")
        reg.gauge("b", 1)
        reg.label("c", "x")
        reg.observe("d", 0.5)
        assert len(reg) == 4
        assert "counters=1" in repr(reg)


class TestIngest:
    def test_numbers_become_gauges_strings_become_labels(self):
        reg = MetricsRegistry()
        reg.ingest(
            {
                "variables": 20,
                "ratio": 0.5,
                "streamed": True,
                "enumerator": "VectorPairEnumerator",
            }
        )
        assert reg.gauges["variables"] == 20
        assert reg.gauges["ratio"] == 0.5
        assert reg.gauges["streamed"] == 1
        assert reg.labels["enumerator"] == "VectorPairEnumerator"

    def test_prefix_applied_to_every_key(self):
        reg = MetricsRegistry()
        reg.ingest({"grounding_pairs": 7, "feature_path": "vector"}, prefix="compile.")
        assert reg.gauges["compile.grounding_pairs"] == 7
        assert reg.labels["compile.feature_path"] == "vector"


class TestSummaries:
    def test_summary_statistics(self):
        reg = MetricsRegistry()
        reg.extend("loss", [4.0, 2.0, 3.0])
        summary = reg.summaries()["loss"]
        assert summary == {
            "count": 3,
            "min": 2.0,
            "max": 4.0,
            "mean": 3.0,
            "first": 4.0,
            "last": 3.0,
        }

    def test_as_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.gauge("g", 1.5)
        reg.label("l", "x")
        reg.observe("s", 0.25)
        payload = reg.as_dict()
        assert payload["counters"] == {"n": 1}
        assert payload["gauges"] == {"g": 1.5}
        assert payload["labels"] == {"l": "x"}
        assert payload["series"] == {"s": [0.25]}
        assert payload["series_summary"]["s"]["count"] == 1
        # The snapshot is a copy, not a view.
        payload["gauges"]["g"] = 99
        assert reg.gauges["g"] == 1.5
