"""Unit tests for `repro.obs.report`: fingerprints, round-trips, rendering."""

from dataclasses import dataclass, field

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport, build_run_report, config_fingerprint
from repro.obs.trace import Tracer


@dataclass
class ToyConfig:
    tau: float = 0.5
    seed: int = 1
    extras: list = field(default_factory=list)


class TestConfigFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint(ToyConfig()) == config_fingerprint(ToyConfig())

    def test_sensitive_to_values(self):
        assert config_fingerprint(ToyConfig()) != config_fingerprint(ToyConfig(seed=2))

    def test_accepts_mappings_and_none(self):
        assert config_fingerprint({"tau": 0.5}) == config_fingerprint({"tau": 0.5})
        assert len(config_fingerprint(None)) == 12

    def test_twelve_hex_digits(self):
        token = config_fingerprint(ToyConfig())
        assert len(token) == 12
        int(token, 16)  # raises if not hex


def make_report() -> RunReport:
    tracer = Tracer(level="deep")
    with tracer.span("detect", rows=3):
        pass
    with tracer.span("compile"):
        with tracer.span("ground", level="deep", pairs=2):
            pass
    metrics = MetricsRegistry()
    metrics.gauge("detect.noisy_cells", 4)
    metrics.label("infer.method", "softmax")
    metrics.extend("learn.epoch_loss", [2.0, 1.0])
    return RunReport(
        dataset={"name": "toy", "rows": 3, "attributes": 2},
        config={"tau": 0.5, "seed": 1},
        fingerprint="abc123abc123",
        stage_status={"detect": "ran", "compile": "ran"},
        timings={"detect": 0.25, "compile": 0.5},
        phase_timings={"detect": 0.25, "compile": 0.5, "repair": 0.0},
        metrics=metrics.as_dict(),
        trace=tracer.to_dict(),
    )


class TestRoundTrips:
    def test_json_round_trip(self):
        report = make_report()
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_save_and_load(self, tmp_path):
        report = make_report()
        path = report.save(tmp_path / "run.json")
        assert path.read_text().endswith("\n")
        clone = RunReport.load(path)
        assert clone.to_dict() == report.to_dict()

    def test_trace_spans_rebuilt(self):
        report = make_report()
        roots = report.trace_spans()
        assert report.stage_names_traced() == ["detect", "compile"]
        assert roots[1].children[0].name == "ground"
        assert roots[1].children[0].attributes == {"pairs": 2}

    def test_empty_trace(self):
        report = RunReport()
        assert report.trace_spans() == []
        assert report.stage_names_traced() == []


class TestRenderText:
    def test_render_mentions_everything(self):
        text = make_report().render_text()
        assert "dataset=toy" in text
        assert "config=abc123abc123" in text
        assert "detect=0.250s" in text
        assert "detect:ran" in text
        assert "trace (deep level, 3 spans):" in text
        assert "ground" in text
        assert "[pairs=2]" in text
        assert "detect.noisy_cells = 4" in text
        assert "infer.method = softmax" in text
        assert "learn.epoch_loss: n=2" in text

    def test_render_without_trace_or_metrics(self):
        text = RunReport(phase_timings={"detect": 0.0}).render_text()
        assert "trace" not in text
        assert "metrics" not in text


class _ToySchema:
    names = ("City", "State")


class _ToyDataset:
    name = "toy"
    num_tuples = 5
    schema = _ToySchema()


class _ToyCtx:
    def __init__(self):
        self.dataset = _ToyDataset()
        self.config = ToyConfig(extras=["x"])
        self.stage_status = {"detect": "ran"}
        self.timings = {"detect": 0.125, "learn": 0.25}
        self.metrics = MetricsRegistry()
        self.metrics.gauge("detect.noisy_cells", 2)
        self.tracer = Tracer(level="stage")
        with self.tracer.span("detect"):
            pass

    def phase_timings(self):
        repair = self.timings.get("learn", 0.0)
        return {"detect": self.timings["detect"], "compile": 0.0, "repair": repair}


class TestBuildRunReport:
    def test_duck_typed_assembly(self):
        report = build_run_report(_ToyCtx())
        assert report.dataset == {"name": "toy", "rows": 5, "attributes": 2}
        assert report.config["tau"] == 0.5
        # Non-scalar config values are stringified for JSON safety.
        assert report.config["extras"] == "['x']"
        assert report.fingerprint == config_fingerprint(ToyConfig(extras=["x"]))
        assert report.stage_status == {"detect": "ran"}
        assert report.phase_timings["repair"] == 0.25
        assert report.metrics["gauges"]["detect.noisy_cells"] == 2
        assert report.stage_names_traced() == ["detect"]
        assert report.created_at > 0

    def test_round_trips_after_build(self):
        report = build_run_report(_ToyCtx())
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_tracerless_context(self):
        ctx = _ToyCtx()
        ctx.tracer = None
        report = build_run_report(ctx)
        assert report.trace is None
        assert report.trace_spans() == []


@pytest.mark.parametrize("indent", [None, 2])
def test_to_json_indent_variants(indent):
    report = make_report()
    text = report.to_json(indent=indent) if indent else report.to_json()
    assert RunReport.from_json(text).to_dict() == report.to_dict()
