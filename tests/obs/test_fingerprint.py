"""Content fingerprints: the identity layer under sessions and checkpoints."""

from __future__ import annotations

from repro.constraints.parser import format_dc, parse_dc
from repro.core.config import HoloCleanConfig
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.obs.fingerprint import (
    FINGERPRINT_HEX,
    combine_fingerprints,
    config_fingerprint,
    constraints_fingerprint,
    dataset_fingerprint,
)

_DC = "t1&t2&EQ(t1.City,t2.City)&IQ(t1.State,t2.State)"
_DC2 = "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)"


def _dataset(rows, name="d"):
    return Dataset(Schema(["City", "State"]), rows, name=name)


class TestDatasetFingerprint:
    def test_name_is_not_content(self):
        rows = [["a", "b"], ["c", "d"]]
        assert dataset_fingerprint(_dataset(rows, "x")) == dataset_fingerprint(
            _dataset(rows, "y")
        )

    def test_cell_edit_changes_it(self):
        base = dataset_fingerprint(_dataset([["a", "b"]]))
        edited = dataset_fingerprint(_dataset([["a", "B"]]))
        assert base != edited

    def test_row_order_is_content(self):
        fwd = dataset_fingerprint(_dataset([["a", "b"], ["c", "d"]]))
        rev = dataset_fingerprint(_dataset([["c", "d"], ["a", "b"]]))
        assert fwd != rev

    def test_schema_is_content(self):
        rows = [["a", "b"]]
        other = Dataset(Schema(["City", "Zip"]), rows, name="d")
        assert dataset_fingerprint(_dataset(rows)) != dataset_fingerprint(other)

    def test_stable_across_copies(self):
        rows = [["a", "b"], [None, "d"]]
        assert dataset_fingerprint(_dataset(rows)) == dataset_fingerprint(
            _dataset([list(r) for r in rows])
        )


class TestConstraintsFingerprint:
    def test_round_trips_through_format(self):
        parsed = [parse_dc(_DC)]
        reparsed = [parse_dc(format_dc(dc)) for dc in parsed]
        assert constraints_fingerprint(parsed) == constraints_fingerprint(reparsed)

    def test_order_sensitive(self):
        a, b = parse_dc(_DC), parse_dc(_DC2)
        assert constraints_fingerprint([a, b]) != constraints_fingerprint([b, a])

    def test_extra_constraint_changes_it(self):
        a, b = parse_dc(_DC), parse_dc(_DC2)
        assert constraints_fingerprint([a]) != constraints_fingerprint([a, b])


class TestConfigFingerprint:
    def test_default_config_is_stable(self):
        assert config_fingerprint(HoloCleanConfig()) == config_fingerprint(
            HoloCleanConfig()
        )

    def test_field_change_registers(self):
        assert config_fingerprint(HoloCleanConfig()) != config_fingerprint(
            HoloCleanConfig(epochs=7)
        )

    def test_report_module_reexport(self):
        # config_fingerprint predates the fingerprint module; the old
        # import path must keep working.
        from repro.obs.report import config_fingerprint as legacy

        assert legacy is config_fingerprint


class TestCombine:
    def test_deterministic_and_sized(self):
        token = combine_fingerprints("aa", "bb")
        assert token == combine_fingerprints("aa", "bb")
        assert len(token) == FINGERPRINT_HEX
        assert token != combine_fingerprints("bb", "aa")

    def test_parts_are_delimited(self):
        assert combine_fingerprints("ab", "c") != combine_fingerprints("a", "bc")
