"""Unit tests for the trace-span subsystem (`repro.obs.trace`).

Pins the behaviours the pipeline instrumentation relies on: level
gating (off / stage / deep), parent-child nesting, the module-global
active tracer consulted by `deep_span`, serialization round-trips, and
tracemalloc ownership.
"""

import tracemalloc

import pytest

from repro.obs.trace import (
    TRACE_LEVELS,
    Span,
    Tracer,
    active_tracer,
    deep_enabled,
    deep_span,
)


class TestLevels:
    def test_levels_are_ordered(self):
        assert TRACE_LEVELS["off"] < TRACE_LEVELS["stage"] < TRACE_LEVELS["deep"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown trace level"):
            Tracer(level="verbose")

    def test_off_records_nothing(self):
        tracer = Tracer(level="off")
        with tracer.span("detect") as span:
            assert span is None
        assert tracer.roots == []
        assert tracer.span_count == 0

    def test_stage_level_drops_deep_spans(self):
        tracer = Tracer(level="stage")
        with tracer.span("compile") as outer:
            with tracer.span("engine.join_pairs", level="deep") as inner:
                assert inner is None
        assert outer.children == []
        assert tracer.span_count == 1

    def test_deep_level_records_both(self):
        tracer = Tracer(level="deep")
        with tracer.span("compile"):
            with tracer.span("engine.join_pairs", level="deep") as inner:
                assert inner is not None
        assert [s.name for s in tracer.walk()] == ["compile", "engine.join_pairs"]


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer(level="deep")
        with tracer.span("a") as a:
            with tracer.span("b", level="deep") as b:
                with tracer.span("c", level="deep") as c:
                    pass
            with tracer.span("d", level="deep") as d:
                pass
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id
        assert d.parent_id == a.span_id
        assert [child.name for child in a.children] == ["b", "d"]

    def test_sibling_roots(self):
        tracer = Tracer(level="stage")
        for name in ("detect", "compile"):
            with tracer.span(name):
                pass
        assert [root.name for root in tracer.roots] == ["detect", "compile"]
        assert all(root.parent_id is None for root in tracer.roots)

    def test_durations_nest(self):
        tracer = Tracer(level="deep")
        with tracer.span("outer") as outer:
            with tracer.span("inner", level="deep") as inner:
                pass
        assert outer.duration >= inner.duration >= 0.0

    def test_attributes_and_annotate(self):
        tracer = Tracer(level="stage")
        with tracer.span("detect", rows=10) as span:
            tracer.annotate(noisy=3)
        assert span.attributes == {"rows": 10, "noisy": 3}

    def test_annotate_outside_span_is_noop(self):
        tracer = Tracer(level="stage")
        tracer.annotate(ignored=True)
        assert tracer.roots == []

    def test_span_closes_on_exception(self):
        tracer = Tracer(level="stage")
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("stage failed")
        assert tracer.roots[0].duration >= 0.0
        assert active_tracer() is None


class TestActiveTracer:
    def test_inactive_by_default(self):
        assert active_tracer() is None
        assert not deep_enabled()

    def test_active_only_while_span_open(self):
        tracer = Tracer(level="deep")
        assert active_tracer() is None
        with tracer.span("stage"):
            assert active_tracer() is tracer
            assert deep_enabled()
        assert active_tracer() is None
        assert not deep_enabled()

    def test_deep_span_noop_without_tracer(self):
        with deep_span("engine.join_pairs") as span:
            assert span is None

    def test_deep_span_noop_at_stage_level(self):
        tracer = Tracer(level="stage")
        with tracer.span("compile"):
            assert not deep_enabled()
            with deep_span("engine.join_pairs") as span:
                assert span is None
        assert tracer.span_count == 1

    def test_deep_span_records_under_deep_tracer(self):
        tracer = Tracer(level="deep")
        with tracer.span("compile") as outer:
            with deep_span("engine.join_pairs", backend="numpy") as span:
                assert span is not None
        assert outer.children[0].name == "engine.join_pairs"
        assert outer.children[0].attributes == {"backend": "numpy"}


class TestSerialization:
    def make_trace(self):
        tracer = Tracer(level="deep")
        with tracer.span("compile", rows=4):
            with tracer.span("ground", level="deep", pairs=7):
                pass
        return tracer

    def test_span_round_trip(self):
        tracer = self.make_trace()
        root = tracer.roots[0]
        clone = Span.from_dict(root.to_dict())
        assert clone.name == root.name
        assert clone.span_id == root.span_id
        assert clone.attributes == root.attributes
        assert clone.duration == root.duration
        assert [c.name for c in clone.children] == ["ground"]
        assert clone.children[0].parent_id == root.span_id
        assert clone.children[0].attributes == {"pairs": 7}

    def test_tracer_to_dict(self):
        payload = self.make_trace().to_dict()
        assert payload["level"] == "deep"
        assert payload["span_count"] == 2
        assert [s["name"] for s in payload["spans"]] == ["compile"]

    def test_walk_is_depth_first(self):
        tracer = self.make_trace()
        assert [s.name for s in tracer.walk()] == ["compile", "ground"]


class TestMemoryAccounting:
    def test_memory_tracer_records_heap_peaks(self):
        tracer = Tracer(level="stage", memory=True)
        try:
            with tracer.span("alloc") as span:
                blob = [0] * 50_000
                del blob
            assert span.py_mem_peak is not None
            assert span.py_mem_peak > 0
        finally:
            tracer.shutdown()
        assert not tracemalloc.is_tracing()

    def test_child_peaks_fold_into_parent(self):
        tracer = Tracer(level="deep", memory=True)
        try:
            with tracer.span("outer") as outer:
                with tracer.span("inner", level="deep") as inner:
                    blob = [0] * 50_000
                    del blob
            assert outer.py_mem_peak >= inner.py_mem_peak
        finally:
            tracer.shutdown()

    def test_shutdown_respects_foreign_tracemalloc(self):
        tracemalloc.start()
        try:
            tracer = Tracer(level="stage", memory=True)
            with tracer.span("stage"):
                pass
            tracer.shutdown()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_no_memory_flag_leaves_peaks_unset(self):
        assert not tracemalloc.is_tracing()
        tracer = Tracer(level="stage")
        with tracer.span("stage") as span:
            pass
        assert span.py_mem_peak is None
