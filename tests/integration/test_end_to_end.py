"""Integration tests: full-pipeline scenarios across modules."""

import pytest

from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.data import generate_flights, generate_hospital
from repro.dataset.dataset import Cell
from repro.detect.outliers import OutlierDetector
from repro.eval.buckets import bucket_error_rates
from repro.eval.harness import run_baseline, run_holoclean
from repro.eval.metrics import evaluate_repairs


class TestHospitalEndToEnd:
    @pytest.fixture(scope="class")
    def outcome(self):
        generated = generate_hospital(num_rows=240)
        run, result = run_holoclean(generated, epochs=60)
        return generated, run, result

    def test_quality_above_holistic(self, outcome):
        generated, run, _ = outcome
        holistic = run_baseline("Holistic", generated, time_budget=60)
        assert run.quality.f1 > holistic.quality.f1

    def test_high_precision(self, outcome):
        _, run, _ = outcome
        assert run.quality.precision > 0.9
        assert run.quality.recall > 0.5

    def test_confidences_calibrated_top_bucket_cleanest(self, outcome):
        generated, _, result = outcome
        report = bucket_error_rates(result, generated.clean)
        rates = [r for r in report.error_rates if r is not None]
        if len(rates) >= 2:
            # Top-confidence bucket should not be the worst one.
            assert rates[-1] <= max(rates)

    def test_repaired_dataset_scores_same_as_result(self, outcome):
        generated, run, result = outcome
        q = evaluate_repairs(generated.dirty, result.repaired,
                             generated.clean,
                             error_cells=generated.error_cells)
        assert q.f1 == pytest.approx(run.quality.f1)


class TestFlightsEndToEnd:
    def test_source_reliability_recovers_truth(self):
        generated = generate_flights(num_flights=12)
        run, result = run_holoclean(generated, epochs=80)
        # The headline Flights behaviour: high precision despite most
        # cells being noisy, far above the constraint-only baseline.
        assert run.quality.precision > 0.8
        assert run.quality.recall > 0.5
        holistic = run_baseline("Holistic", generated, time_budget=60)
        assert holistic.quality.f1 < 0.05


class TestExtraDetectors:
    def test_outlier_detector_expands_coverage(self, figure1_dataset,
                                               figure1_constraints):
        hc = HoloClean(HoloCleanConfig(tau=0.3, epochs=30, seed=1))
        plain = hc.repair(figure1_dataset, figure1_constraints)
        with_outliers = hc.repair(
            figure1_dataset, figure1_constraints,
            extra_detectors=[OutlierDetector(max_relative_frequency=0.08)])
        assert len(with_outliers.inferences) >= len(plain.inferences)

    def test_external_dictionary_supports_repairs(self, figure1_dataset,
                                                  figure1_constraints):
        from repro.constraints.matching import MatchingDependency, MatchPredicate
        from repro.external.dictionary import ExternalDictionary
        dictionary = ExternalDictionary("addr", ["Ext_Zip", "Ext_City"], [
            {"Ext_Zip": "60608", "Ext_City": "Chicago"},
            {"Ext_Zip": "60601", "Ext_City": "Chicago"},
        ])
        md = MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                                "City", "Ext_City")
        hc = HoloClean(HoloCleanConfig(tau=0.3, epochs=30, seed=1))
        result = hc.repair(figure1_dataset, figure1_constraints,
                           dictionaries=[dictionary],
                           matching_dependencies=[md])
        assert result.inferences[Cell(3, "City")].chosen_value == "Chicago"


class TestVariantAgreement:
    def test_gibbs_agrees_with_exact_on_independent_model(
            self, figure1_dataset, figure1_constraints):
        """With no factors, Gibbs sampling and the closed-form softmax
        target the same distribution; MAP repairs must coincide."""
        exact_cfg = HoloCleanConfig(tau=0.3, epochs=40, seed=1)
        exact = HoloClean(exact_cfg).repair(figure1_dataset,
                                            figure1_constraints)
        # Same model, marginals estimated by sampling instead.
        import numpy as np
        from repro.core.compiler import ModelCompiler
        from repro.detect.violations import ViolationDetector
        from repro.inference.gibbs import GibbsSampler
        from repro.inference.softmax import SoftmaxTrainer

        detection = ViolationDetector(figure1_constraints).detect(
            figure1_dataset)
        model = ModelCompiler(figure1_dataset, figure1_constraints,
                              exact_cfg, detection).compile()
        fixed = model.graph.space.fixed_weights
        mi = model.graph.space.get(("minimality",))
        fixed[mi] = 0.0
        trainer = SoftmaxTrainer(model.graph.matrix, epochs=40,
                                 fixed_weights=fixed)
        trained = trainer.train(model.evidence_ids, model.evidence_labels)
        trained.weights[mi] = exact_cfg.minimality_weight
        sampler = GibbsSampler(model.graph, trained.weights, seed=5)
        sampled = sampler.run(burn_in=20, sweeps=150)
        agreements = 0
        total = 0
        for vid in model.query_ids:
            info = model.graph.variables[vid]
            exact_choice = exact.inferences[info.cell].chosen_value
            sampled_choice = info.domain[sampled.map_index(vid)]
            total += 1
            agreements += exact_choice == sampled_choice
        assert agreements / total > 0.9
