"""Failure-injection and edge-case integration tests."""

import pytest

from repro.constraints.fd import parse_fd
from repro.core.config import HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Attribute, Schema


class TestCleanInput:
    def test_clean_dataset_yields_no_repairs(self):
        schema = Schema(["Zip", "City"])
        ds = Dataset(schema, [["1", "A"], ["1", "A"], ["2", "B"]])
        dcs = parse_fd("Zip -> City").to_denial_constraints()
        result = HoloClean(HoloCleanConfig(epochs=5, seed=1)).repair(ds, dcs)
        assert result.num_repairs == 0
        assert result.inferences == {}

    def test_no_constraints_no_noisy_cells(self, figure1_dataset):
        result = HoloClean(HoloCleanConfig(epochs=5, seed=1)).repair(
            figure1_dataset, [])
        assert result.num_repairs == 0


class TestDegenerateData:
    def test_all_null_column(self):
        schema = Schema(["Zip", "City", "Empty"])
        rows = [["1", "A", None], ["1", "B", None], ["1", "A", None]]
        ds = Dataset(schema, rows)
        dcs = parse_fd("Zip -> City").to_denial_constraints()
        result = HoloClean(HoloCleanConfig(tau=0.3, epochs=10, seed=1)).repair(
            ds, dcs)
        # The NULL column never blocks the pipeline.
        assert Cell(1, "City") in result.inferences

    def test_single_row_dataset(self):
        ds = Dataset(Schema(["A", "B"]), [["x", "y"]])
        dcs = parse_fd("A -> B").to_denial_constraints()
        result = HoloClean(HoloCleanConfig(epochs=5, seed=1)).repair(ds, dcs)
        assert result.num_repairs == 0

    def test_two_conflicting_rows_only(self):
        """A 50/50 conflict with zero context: any outcome is acceptable,
        but the pipeline must terminate and produce distributions."""
        ds = Dataset(Schema(["Zip", "City"]), [["1", "A"], ["1", "B"]])
        dcs = parse_fd("Zip -> City").to_denial_constraints()
        result = HoloClean(HoloCleanConfig(tau=0.3, epochs=10, seed=1)).repair(
            ds, dcs)
        for inference in result.inferences.values():
            assert inference.marginal.sum() == pytest.approx(1.0)

    def test_id_and_source_roles_never_repaired(self):
        schema = Schema([Attribute("Id", role="id"),
                         Attribute("Src", role="source"),
                         Attribute("Zip"), Attribute("City")])
        rows = [["i1", "s1", "1", "A"], ["i2", "s1", "1", "A"],
                ["i3", "s2", "1", "B"]]
        ds = Dataset(schema, rows)
        dcs = parse_fd("Zip -> City").to_denial_constraints()
        result = HoloClean(HoloCleanConfig(tau=0.3, epochs=10, seed=1)).repair(
            ds, dcs)
        assert all(c.attribute in ("Zip", "City") for c in result.inferences)


class TestDeterminism:
    def test_same_seed_same_repairs(self, figure1_dataset, figure1_constraints):
        config = HoloCleanConfig(tau=0.3, epochs=20, seed=9)
        a = HoloClean(config).repair(figure1_dataset, figure1_constraints)
        b = HoloClean(config).repair(figure1_dataset, figure1_constraints)
        assert {c: i.chosen_value for c, i in a.inferences.items()} == \
            {c: i.chosen_value for c, i in b.inferences.items()}

    def test_gibbs_variant_deterministic(self, figure1_dataset,
                                         figure1_constraints):
        config = HoloCleanConfig.variant(
            "dc-factors", tau=0.3, epochs=10, seed=4,
            gibbs_burn_in=3, gibbs_sweeps=10)
        a = HoloClean(config).repair(figure1_dataset, figure1_constraints)
        b = HoloClean(config).repair(figure1_dataset, figure1_constraints)
        assert {c: i.chosen_value for c, i in a.repairs.items()} == \
            {c: i.chosen_value for c, i in b.repairs.items()}
