"""Tests for data-programming style error detection (§7 direction)."""

import pytest

from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.detect.labeler import (
    ABSTAIN,
    CLEAN,
    ERROR,
    LabelingFunction,
    ProgrammaticDetector,
    lf_allowed_values,
    lf_null,
    lf_pattern,
    lf_rare_value,
)


@pytest.fixture
def dataset():
    schema = Schema(["Zip", "State"])
    return Dataset(schema, [
        ["60608", "IL"],
        ["6x608", "IL"],     # malformed zip
        ["60609", "ZZ"],     # bad state
        [None, "IL"],        # missing zip
    ])


class TestLabelingFunction:
    def test_invalid_verdict_rejected(self, dataset):
        lf = LabelingFunction("bad", lambda ds, c: 42)
        with pytest.raises(ValueError, match="expected ERROR"):
            lf(dataset, Cell(0, "Zip"))

    def test_valid_verdicts_pass(self, dataset):
        for verdict in (ERROR, CLEAN, ABSTAIN):
            lf = LabelingFunction("ok", lambda ds, c, v=verdict: v)
            assert lf(dataset, Cell(0, "Zip")) == verdict


class TestBuilders:
    def test_lf_null(self, dataset):
        lf = lf_null()
        assert lf(dataset, Cell(3, "Zip")) == ERROR
        assert lf(dataset, Cell(0, "Zip")) == ABSTAIN

    def test_lf_pattern_format_check(self, dataset):
        lf = lf_pattern("Zip", r"\d{5}")
        assert lf(dataset, Cell(0, "Zip")) == CLEAN
        assert lf(dataset, Cell(1, "Zip")) == ERROR
        assert lf(dataset, Cell(0, "State")) == ABSTAIN

    def test_lf_pattern_denylist(self, dataset):
        lf = lf_pattern("State", r"Z+", matches_are_clean=False)
        assert lf(dataset, Cell(2, "State")) == ERROR
        assert lf(dataset, Cell(0, "State")) == CLEAN

    def test_lf_allowed_values(self, dataset):
        lf = lf_allowed_values("State", {"IL", "MA"})
        assert lf(dataset, Cell(0, "State")) == CLEAN
        assert lf(dataset, Cell(2, "State")) == ERROR

    def test_lf_rare_value(self):
        ds = Dataset(Schema(["A"]), [["common"]] * 9 + [["rare"]])
        lf = lf_rare_value("A", max_count=1)
        assert lf(ds, Cell(9, "A")) == ERROR
        assert lf(ds, Cell(0, "A")) == ABSTAIN


class TestProgrammaticDetector:
    def test_needs_functions(self):
        with pytest.raises(ValueError, match="at least one"):
            ProgrammaticDetector([])

    def test_single_function_detection(self, dataset):
        detector = ProgrammaticDetector([lf_pattern("Zip", r"\d{5}")])
        result = detector.detect(dataset)
        assert result.noisy_cells == {Cell(1, "Zip")}

    def test_votes_combine(self, dataset):
        detector = ProgrammaticDetector([
            lf_pattern("Zip", r"\d{5}"),
            lf_null(),
            lf_allowed_values("State", {"IL"}),
        ])
        result = detector.detect(dataset)
        assert result.noisy_cells == {Cell(1, "Zip"), Cell(3, "Zip"),
                                      Cell(2, "State")}

    def test_clean_votes_veto(self, dataset):
        """A heavier CLEAN vote suppresses a lighter ERROR vote."""
        always_error = LabelingFunction(
            "paranoid", lambda ds, c: ERROR, weight=1.0)
        trusted_format = LabelingFunction(
            "format", lambda ds, c: CLEAN
            if (ds.cell_value(c) or "").isdigit() else ABSTAIN, weight=2.0)
        detector = ProgrammaticDetector([always_error, trusted_format],
                                        attributes=["Zip"])
        result = detector.detect(dataset)
        assert Cell(0, "Zip") not in result.noisy_cells  # digits: vetoed
        assert Cell(1, "Zip") in result.noisy_cells      # "6x608": flagged

    def test_feeds_pipeline_as_extra_detector(self, figure1_dataset,
                                              figure1_constraints):
        from repro.core.config import HoloCleanConfig
        from repro.core.pipeline import HoloClean
        detector = ProgrammaticDetector(
            [lf_allowed_values("City", {"Chicago"})])
        hc = HoloClean(HoloCleanConfig(tau=0.3, epochs=20, seed=1))
        result = hc.repair(figure1_dataset, figure1_constraints,
                           extra_detectors=[detector])
        assert Cell(3, "City") in result.inferences
