"""Tests for the outlier, null, external, and ensemble detectors."""

import pytest

from repro.constraints.fd import parse_fd
from repro.constraints.matching import MatchingDependency, MatchPredicate
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Attribute, Schema
from repro.detect.ensemble import EnsembleDetector
from repro.detect.external import ExternalDetector
from repro.detect.nulls import NullDetector
from repro.detect.outliers import OutlierDetector
from repro.detect.violations import ViolationDetector
from repro.external.dictionary import ExternalDictionary


class TestOutlierDetector:
    def test_flags_rare_value_in_concentrated_attribute(self):
        rows = [["Chicago"]] * 50 + [["Chicagx"]]
        ds = Dataset(Schema(["City"]), rows)
        result = OutlierDetector(max_relative_frequency=0.05).detect(ds)
        assert result.noisy_cells == {Cell(50, "City")}

    def test_diverse_attribute_not_flagged(self):
        rows = [[f"value-{i}"] for i in range(50)]
        ds = Dataset(Schema(["Name"]), rows)
        result = OutlierDetector().detect(ds)
        assert not result.noisy_cells

    def test_respects_attribute_list(self):
        rows = [["Chicago", "x1"]] * 50 + [["Chicagx", "x2"]]
        ds = Dataset(Schema(["City", "Other"]), rows)
        result = OutlierDetector(attributes=["Other"]).detect(ds)
        assert all(c.attribute == "Other" for c in result.noisy_cells)

    def test_max_count_guard(self):
        rows = [["a"]] * 10 + [["b"]] * 5
        ds = Dataset(Schema(["X"]), rows)
        result = OutlierDetector(max_count=3,
                                 max_relative_frequency=0.5).detect(ds)
        assert not result.noisy_cells  # "b" occurs 5 > max_count times


class TestNullDetector:
    def test_flags_nulls(self):
        ds = Dataset(Schema(["A", "B"]), [["x", None], [None, "y"]])
        result = NullDetector().detect(ds)
        assert result.noisy_cells == {Cell(0, "B"), Cell(1, "A")}

    def test_attribute_filter(self):
        ds = Dataset(Schema(["A", "B"]), [[None, None]])
        result = NullDetector(attributes=["A"]).detect(ds)
        assert result.noisy_cells == {Cell(0, "A")}

    def test_skips_non_data_roles(self):
        schema = Schema([Attribute("Id", role="id"), Attribute("A")])
        ds = Dataset(schema, [[None, None]])
        result = NullDetector().detect(ds)
        assert result.noisy_cells == {Cell(0, "A")}


class TestExternalDetector:
    @pytest.fixture
    def dictionary(self):
        return ExternalDictionary("d", ["Ext_Zip", "Ext_City"], [
            {"Ext_Zip": "60608", "Ext_City": "Chicago"},
        ])

    @pytest.fixture
    def md(self):
        return MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                                  "City", "Ext_City")

    def test_flags_disagreement(self, dictionary, md):
        ds = Dataset(Schema(["Zip", "City"]),
                     [["60608", "Cicago"], ["60608", "Chicago"]])
        result = ExternalDetector(dictionary, [md]).detect(ds)
        assert result.noisy_cells == {Cell(0, "City")}

    def test_unmatched_tuples_untouched(self, dictionary, md):
        ds = Dataset(Schema(["Zip", "City"]), [["99999", "Nowhere"]])
        result = ExternalDetector(dictionary, [md]).detect(ds)
        assert not result.noisy_cells

    def test_null_target_flagged(self, dictionary, md):
        ds = Dataset(Schema(["Zip", "City"]), [["60608", None]])
        result = ExternalDetector(dictionary, [md]).detect(ds)
        assert result.noisy_cells == {Cell(0, "City")}


class TestEnsembleDetector:
    def test_union_of_findings(self):
        ds = Dataset(Schema(["Zip", "City"]), [
            ["60608", "Chicago"],
            ["60608", "Cicago"],
            [None, "Boston"],
        ])
        dc = parse_fd("Zip -> City").to_denial_constraints()[0]
        ensemble = EnsembleDetector([ViolationDetector([dc]), NullDetector()])
        result = ensemble.detect(ds)
        assert Cell(2, "Zip") in result.noisy_cells       # from NullDetector
        assert Cell(1, "City") in result.noisy_cells      # from violations
        assert len(result.hypergraph) == 1                # hypergraph merged

    def test_requires_detectors(self):
        with pytest.raises(ValueError, match="at least one"):
            EnsembleDetector([])
