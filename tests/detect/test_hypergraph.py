"""Tests for the conflict hypergraph and Algorithm 3 components."""

import pytest

from repro.dataset.dataset import Cell
from repro.detect.hypergraph import ConflictHypergraph, Violation


def v(name, *tids):
    cells = tuple(Cell(t, "A") for t in tids)
    return Violation(name, tuple(tids), cells)


class TestViolation:
    def test_requires_tuples(self):
        with pytest.raises(ValueError, match="at least one"):
            Violation("dc", (), ())

    def test_frozen(self):
        violation = v("dc", 1, 2)
        with pytest.raises(AttributeError):
            violation.tids = (3,)


class TestConflictHypergraph:
    def test_add_and_count(self):
        h = ConflictHypergraph()
        h.add(v("dc1", 1, 2))
        h.add(v("dc2", 3))
        assert len(h) == 2
        assert h.violation_count("dc1") == 1
        assert h.violation_count() == 2

    def test_by_constraint(self):
        h = ConflictHypergraph()
        h.add(v("dc1", 1, 2))
        h.add(v("dc1", 2, 3))
        h.add(v("dc2", 9, 10))
        assert len(h.by_constraint("dc1")) == 2
        assert h.by_constraint("missing") == []

    def test_cells_union(self):
        h = ConflictHypergraph()
        h.add(v("dc1", 1, 2))
        h.add(v("dc1", 2, 3))
        assert h.cells() == {Cell(1, "A"), Cell(2, "A"), Cell(3, "A")}

    def test_tuples(self):
        h = ConflictHypergraph()
        h.add(v("dc1", 1, 2))
        h.add(v("dc2", 7))
        assert h.tuples() == {1, 2, 7}

    def test_merge(self):
        a, b = ConflictHypergraph(), ConflictHypergraph()
        a.add(v("dc1", 1, 2))
        b.add(v("dc2", 3, 4))
        a.merge(b)
        assert len(a) == 2
        assert set(a.constraint_names) == {"dc1", "dc2"}


class TestTupleComponents:
    def test_transitive_grouping(self):
        h = ConflictHypergraph()
        h.add(v("dc", 1, 2))
        h.add(v("dc", 2, 3))
        h.add(v("dc", 7, 8))
        components = h.tuple_components("dc")
        as_sets = sorted(sorted(c) for c in components)
        assert as_sets == [[1, 2, 3], [7, 8]]

    def test_per_constraint_isolation(self):
        h = ConflictHypergraph()
        h.add(v("dc1", 1, 2))
        h.add(v("dc2", 2, 3))
        assert sorted(sorted(c) for c in h.tuple_components("dc1")) == [[1, 2]]
        assert sorted(sorted(c) for c in h.tuple_components("dc2")) == [[2, 3]]

    def test_single_tuple_violation_is_singleton_component(self):
        h = ConflictHypergraph()
        h.add(v("dc", 5))
        assert h.tuple_components("dc") == [{5}]

    def test_all_components(self):
        h = ConflictHypergraph()
        h.add(v("dc1", 1, 2))
        h.add(v("dc2", 3))
        grouped = h.all_components()
        assert set(grouped) == {"dc1", "dc2"}
