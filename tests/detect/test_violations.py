"""Tests for the denial-constraint violation detector."""

import pytest

from repro.constraints.denial import DenialConstraint
from repro.constraints.fd import parse_fd
from repro.constraints.parser import parse_dc
from repro.constraints.predicates import Operator, Predicate, TupleRef
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.detect.violations import QuadraticScanError, ViolationDetector


@pytest.fixture
def zip_city_data():
    schema = Schema(["Zip", "City"])
    return Dataset(schema, [
        ["60608", "Chicago"],
        ["60608", "Chicago"],
        ["60608", "Cicago"],   # violates Zip -> City against t0/t1
        ["02134", "Boston"],
    ])


@pytest.fixture
def zip_city_dc():
    return parse_fd("Zip -> City").to_denial_constraints()[0]


class TestFdViolations:
    def test_detects_violating_pairs(self, zip_city_data, zip_city_dc):
        result = ViolationDetector([zip_city_dc]).detect(zip_city_data)
        assert len(result.hypergraph) == 2  # (0,2) and (1,2)
        tids = {frozenset(v.tids) for v in result.hypergraph.violations}
        assert tids == {frozenset({0, 2}), frozenset({1, 2})}

    def test_noisy_cells_cover_both_sides(self, zip_city_data, zip_city_dc):
        result = ViolationDetector([zip_city_dc]).detect(zip_city_data)
        assert Cell(2, "City") in result.noisy_cells
        assert Cell(0, "City") in result.noisy_cells
        assert Cell(0, "Zip") in result.noisy_cells
        assert Cell(3, "City") not in result.noisy_cells

    def test_clean_dataset_yields_nothing(self, zip_city_dc):
        ds = Dataset(Schema(["Zip", "City"]),
                     [["1", "A"], ["1", "A"], ["2", "B"]])
        result = ViolationDetector([zip_city_dc]).detect(ds)
        assert len(result.hypergraph) == 0
        assert not result.noisy_cells

    def test_null_join_keys_skipped(self, zip_city_dc):
        ds = Dataset(Schema(["Zip", "City"]),
                     [[None, "A"], [None, "B"], ["1", "C"]])
        result = ViolationDetector([zip_city_dc]).detect(ds)
        assert len(result.hypergraph) == 0

    def test_composite_join(self):
        dc = parse_fd("City,State -> Zip").to_denial_constraints()[0]
        ds = Dataset(Schema(["City", "State", "Zip"]), [
            ["Chicago", "IL", "60608"],
            ["Chicago", "IL", "60609"],
            ["Chicago", "MA", "60610"],   # different state: no violation
        ])
        result = ViolationDetector([dc]).detect(ds)
        assert {frozenset(v.tids) for v in result.hypergraph.violations} == \
            {frozenset({0, 1})}


class TestSingleTupleConstraints:
    def test_constant_predicate(self):
        dc = parse_dc('t1&EQ(t1.State,"XX")')
        ds = Dataset(Schema(["State"]), [["XX"], ["IL"]])
        result = ViolationDetector([dc]).detect(ds)
        assert result.noisy_cells == {Cell(0, "State")}

    def test_intra_tuple_comparison(self):
        dc = DenialConstraint([
            Predicate(TupleRef(1, "Start"), Operator.GT, TupleRef(1, "End"))])
        ds = Dataset(Schema(["Start", "End"]), [["5", "3"], ["1", "9"]])
        result = ViolationDetector([dc]).detect(ds)
        assert {c.tid for c in result.noisy_cells} == {0}


class TestOrderSensitivePredicates:
    def test_both_directions_checked(self):
        # ¬(t1.Grp = t2.Grp ∧ t1.Sal > t2.Sal ∧ t1.Rank < t2.Rank)
        dc = DenialConstraint([
            Predicate(TupleRef(1, "Grp"), Operator.EQ, TupleRef(2, "Grp")),
            Predicate(TupleRef(1, "Sal"), Operator.GT, TupleRef(2, "Sal")),
            Predicate(TupleRef(1, "Rank"), Operator.LT, TupleRef(2, "Rank")),
        ])
        ds = Dataset(Schema(["Grp", "Sal", "Rank"]), [
            ["g", "50", "2"],   # lower salary, higher rank
            ["g", "100", "1"],  # violates as t1 against t0? 100>50 and 1<2 ✓
        ])
        result = ViolationDetector([dc]).detect(ds)
        assert len(result.hypergraph) == 1

    def test_quadratic_guard(self):
        dc = DenialConstraint([
            Predicate(TupleRef(1, "A"), Operator.GT, TupleRef(2, "A"))])
        ds = Dataset(Schema(["A"]), [[str(i)] for i in range(30)])
        detector = ViolationDetector([dc], max_quadratic_tuples=10)
        with pytest.raises(QuadraticScanError):
            detector.detect(ds)

    def test_quadratic_allowed_when_small(self):
        dc = DenialConstraint([
            Predicate(TupleRef(1, "A"), Operator.GT, TupleRef(2, "A")),
            Predicate(TupleRef(1, "B"), Operator.LT, TupleRef(2, "B"))])
        ds = Dataset(Schema(["A", "B"]), [["2", "1"], ["1", "2"]])
        result = ViolationDetector([dc], max_quadratic_tuples=10).detect(ds)
        assert len(result.hypergraph) == 1


class TestCaps:
    def test_max_pairs_cap(self, zip_city_dc):
        rows = [["1", f"city{i}"] for i in range(10)]  # all conflict pairwise
        ds = Dataset(Schema(["Zip", "City"]), rows)
        detector = ViolationDetector([zip_city_dc],
                                     max_pairs_per_constraint=5)
        result = detector.detect(ds)
        assert len(result.hypergraph) == 5
