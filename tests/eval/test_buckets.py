"""Tests for the Figure 6 calibration buckets."""

import numpy as np
import pytest

from repro.core.repair import CellInference, RepairResult
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.eval.buckets import BucketReport, bucket_error_rates


def make_result(entries):
    """entries: list of (confidence, chosen, truth)."""
    schema = Schema(["A"])
    clean_rows, inferences = [], {}
    for i, (confidence, chosen, truth) in enumerate(entries):
        clean_rows.append([truth])
        cell = Cell(i, "A")
        inferences[cell] = CellInference(
            cell=cell, init_value="init", chosen_value=chosen,
            confidence=confidence, domain=[chosen, "init"],
            marginal=np.array([confidence, 1 - confidence]))
    clean = Dataset(schema, clean_rows)
    repaired = Dataset(schema, [[e[1]] for e in entries])
    return RepairResult(repaired=repaired, inferences=inferences), clean


class TestBucketErrorRates:
    def test_bucketing_and_error_rates(self):
        result, clean = make_result([
            (0.55, "v", "v"),        # bucket 0, correct
            (0.55, "v", "other"),    # bucket 0, error
            (0.95, "v", "v"),        # bucket 4, correct
        ])
        report = bucket_error_rates(result, clean)
        assert report.counts == [2, 0, 0, 0, 1]
        assert report.errors == [1, 0, 0, 0, 0]
        rates = report.error_rates
        assert rates[0] == pytest.approx(0.5)
        assert rates[4] == 0.0
        assert rates[1] is None  # empty bucket

    def test_confidence_one_lands_in_top_bucket(self):
        result, clean = make_result([(1.0, "v", "v")])
        report = bucket_error_rates(result, clean)
        assert report.counts[4] == 1

    def test_non_repairs_excluded(self):
        result, clean = make_result([(0.9, "init", "init")])
        report = bucket_error_rates(result, clean)
        assert sum(report.counts) == 0

    def test_labels(self):
        report = BucketReport(counts=[0] * 5, errors=[0] * 5)
        labels = report.labels()
        assert labels[0] == "[0.5-0.6)"
        assert len(labels) == 5


class TestMerge:
    def test_merge_accumulates(self):
        r1, c1 = make_result([(0.55, "v", "v")])
        r2, c2 = make_result([(0.55, "v", "x")])
        a = bucket_error_rates(r1, c1)
        b = bucket_error_rates(r2, c2)
        a.merge(b)
        assert a.counts[0] == 2
        assert a.errors[0] == 1

    def test_merge_into_empty(self):
        r1, c1 = make_result([(0.75, "v", "v")])
        empty = BucketReport()
        empty.merge(bucket_error_rates(r1, c1))
        assert empty.counts[2] == 1
