"""Tests for the repair-quality metrics (Section 6.1 methodology)."""

import pytest

from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema
from repro.eval.metrics import evaluate_method_result, evaluate_repairs


@pytest.fixture
def world():
    schema = Schema(["A"])
    clean = Dataset(schema, [["t"], ["t"], ["t"], ["t"]])
    dirty = clean.copy()
    dirty.set_value(0, "A", "e0")   # two injected errors
    dirty.set_value(1, "A", "e1")
    return schema, clean, dirty


class TestEvaluateRepairs:
    def test_perfect_repair(self, world):
        schema, clean, dirty = world
        repaired = clean.copy()
        q = evaluate_repairs(dirty, repaired, clean)
        assert q.precision == 1.0 and q.recall == 1.0 and q.f1 == 1.0
        assert q.correct_repairs == 2 and q.total_errors == 2

    def test_partial_recall(self, world):
        schema, clean, dirty = world
        repaired = dirty.copy()
        repaired.set_value(0, "A", "t")  # fix only one error
        q = evaluate_repairs(dirty, repaired, clean)
        assert q.precision == 1.0
        assert q.recall == pytest.approx(0.5)
        assert q.f1 == pytest.approx(2 / 3)

    def test_wrong_repair_hurts_precision(self, world):
        schema, clean, dirty = world
        repaired = dirty.copy()
        repaired.set_value(0, "A", "still-wrong")
        q = evaluate_repairs(dirty, repaired, clean)
        assert q.precision == 0.0 and q.recall == 0.0

    def test_repairing_clean_cell_counts_against_precision(self, world):
        schema, clean, dirty = world
        repaired = dirty.copy()
        repaired.set_value(0, "A", "t")       # correct
        repaired.set_value(2, "A", "bogus")   # damaged a clean cell
        q = evaluate_repairs(dirty, repaired, clean)
        assert q.total_repairs == 2
        assert q.precision == pytest.approx(0.5)

    def test_no_repairs_zero_by_convention(self, world):
        schema, clean, dirty = world
        q = evaluate_repairs(dirty, dirty.copy(), clean)
        assert q.precision == 0.0 and q.recall == 0.0 and q.f1 == 0.0

    def test_explicit_error_cells_override_diff(self, world):
        schema, clean, dirty = world
        repaired = clean.copy()
        q = evaluate_repairs(dirty, repaired, clean,
                             error_cells={Cell(0, "A")})
        assert q.recall == 2.0  # 2 correct repairs over 1 "known" error
        assert q.total_errors == 1

    def test_str_contains_counts(self, world):
        schema, clean, dirty = world
        q = evaluate_repairs(dirty, clean.copy(), clean)
        assert "2/2 repairs" in str(q)


class TestEvaluateMethodResult:
    def test_accepts_objects_with_repaired(self, world):
        schema, clean, dirty = world

        class FakeResult:
            repaired = clean.copy()

        q = evaluate_method_result(dirty, FakeResult(), clean)
        assert q.f1 == 1.0

    def test_rejects_objects_without_repaired(self, world):
        schema, clean, dirty = world
        with pytest.raises(TypeError, match="repaired"):
            evaluate_method_result(dirty, object(), clean)
