"""Tests for report rendering and the experiment harness."""

import pytest

from repro.data import generate_flights, generate_hospital
from repro.eval.harness import (
    holoclean_config_for,
    make_baseline,
    run_baseline,
    run_holoclean,
)
from repro.eval.report import render_series, render_table


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(["name", "value"], [["a", 1.23456], ["bb", None]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.235" in text
        assert "-" in lines[-1]  # None rendered as dash

    def test_title(self):
        text = render_table(["h"], [["x"]], title="Table 3")
        assert text.startswith("Table 3")


class TestRenderSeries:
    def test_pairs(self):
        text = render_series("precision", [0.3, 0.5], [0.9, 1.0])
        assert "precision:" in text
        assert "0.300→0.900" in text


class TestHarness:
    def test_config_applies_dataset_hints(self):
        g = generate_flights(num_flights=4)
        config = holoclean_config_for(g)
        assert config.tau == g.recommended_tau
        assert config.source_entity_attributes == ("Flight",)

    def test_config_overrides_win(self):
        g = generate_flights(num_flights=4)
        config = holoclean_config_for(g, tau=0.9)
        assert config.tau == 0.9

    def test_run_holoclean_returns_quality(self):
        g = generate_hospital(num_rows=80)
        run, result = run_holoclean(g, epochs=5)
        assert run.method == "HoloClean"
        assert run.quality is not None
        assert 0.0 <= run.quality.f1 <= 1.0
        assert result.repaired.num_tuples == 80

    def test_run_baseline_timeout_becomes_dnf(self):
        g = generate_hospital(num_rows=80)
        run = run_baseline("SCARE", g, time_budget=0.0)
        assert run.timed_out
        assert run.table3_cells() == [None, None, None]

    def test_katara_not_applicable_without_dictionary(self):
        g = generate_flights(num_flights=4)
        run = run_baseline("KATARA", g)
        assert run.quality is None and not run.timed_out

    def test_unknown_baseline_rejected(self):
        g = generate_hospital(num_rows=80)
        with pytest.raises(ValueError, match="unknown baseline"):
            make_baseline("Mystery", g)
