"""RepairService behaviour: paths, feedback, errors, admission control."""

from __future__ import annotations

import pytest

from repro.core.config import HoloCleanConfig
from repro.serve.service import (
    BadRequest,
    NotFound,
    RepairService,
    Saturated,
)

from tests.serve.conftest import payload_for


@pytest.fixture
def service(tmp_path):
    svc = RepairService(
        HoloCleanConfig(serve_workers=0, serve_checkpoint_dir=str(tmp_path))
    )
    yield svc
    svc.close()


@pytest.fixture
def ephemeral_service():
    svc = RepairService(HoloCleanConfig(serve_workers=0))
    yield svc
    svc.close()


class TestRepairPaths:
    def test_cold_then_warm(self, service, hospital):
        payload = payload_for(hospital)
        first = service.repair(payload)
        assert first["path"] == "cold"
        assert first["num_repairs"] > 0
        assert first["stage_status"]["compile"] == "ran"

        second = service.repair(payload)
        assert second["path"] == "warm"
        assert second["session"] == first["session"]
        assert second["stage_status"]["detect"] == "skipped"
        assert second["stage_status"]["compile"] == "skipped"
        assert second["repairs"] == first["repairs"]

    def test_session_id_is_content_keyed(self, service, hospital):
        renamed = payload_for(hospital)
        renamed["dataset"]["name"] = "same-rows-other-name"
        base = service.repair(payload_for(hospital))
        again = service.repair(renamed)
        assert again["session"] == base["session"]
        assert again["path"] == "warm"

    def test_config_change_stays_warm(self, service, hospital):
        base = service.repair(payload_for(hospital))
        retuned = service.repair(payload_for(hospital, epochs=14))
        assert retuned["session"] == base["session"]
        assert retuned["path"] == "warm"
        assert retuned["stage_status"]["compile"] == "skipped"

    def test_recompile_flag_forces_compile(self, service, hospital):
        service.repair(payload_for(hospital))
        payload = payload_for(hospital, tau=0.9)
        payload["recompile"] = True
        redone = service.repair(payload)
        assert redone["path"] == "warm"
        assert redone["stage_status"]["compile"] == "ran"
        assert redone["stage_status"]["detect"] == "skipped"

    def test_evict_then_rehydrate_identical(self, service, hospital):
        payload = payload_for(hospital)
        warm = service.repair(payload)
        sid = warm["session"]
        gone = service.delete_session(sid)
        assert gone["evicted"] and gone["checkpointed"]

        back = service.repair(payload)
        assert back["path"] == "rehydrated"
        assert back["stage_status"]["compile"] == "skipped"
        assert back["repairs"] == warm["repairs"]

    def test_purged_session_pays_cold(self, ephemeral_service, hospital):
        payload = payload_for(hospital)
        first = ephemeral_service.repair(payload)
        ephemeral_service.delete_session(first["session"], checkpoint=False)
        again = ephemeral_service.repair(payload)
        assert again["path"] == "cold"

    def test_report_on_request(self, service, hospital):
        payload = payload_for(hospital)
        payload["report"] = True
        response = service.repair(payload)
        assert response["report"]["stage_status"]["apply"] == "ran"
        assert response["report"]["fingerprint"]


class TestFeedback:
    def test_feedback_clamps_choice(self, service, hospital):
        payload = payload_for(hospital)
        first = service.repair(payload)
        sid = first["session"]
        cells = service.marginals(sid)["cells"]
        target = cells[0]
        verified = target["domain"][-1]
        response = service.feedback(
            sid,
            {
                "cells": [
                    {
                        "tid": target["tid"],
                        "attribute": target["attribute"],
                        "value": verified,
                    }
                ]
            },
        )
        assert response["path"] == "warm"
        assert response["feedback_count"] == 1
        after = service.marginals(sid, tid=target["tid"], attribute=target["attribute"])
        assert after["cells"]

    def test_feedback_on_unmodeled_cell_rejected(self, service, flights):
        sid = service.repair(payload_for(flights))["session"]
        # The source column carries provenance, not data: it never gets
        # a factor-graph variable, so feedback on it is meaningless.
        source = flights.dirty.schema.with_role("source")[0]
        with pytest.raises(BadRequest, match="not a noisy cell"):
            service.feedback(
                sid,
                {"cells": [{"tid": 0, "attribute": source, "value": "x"}]},
            )

    def test_feedback_needs_cells(self, service, hospital):
        sid = service.repair(payload_for(hospital))["session"]
        with pytest.raises(BadRequest, match="cells"):
            service.feedback(sid, {})

    def test_feedback_unknown_session(self, service):
        with pytest.raises(NotFound):
            service.feedback("feedbeefcafe", {"cells": [{}]})


class TestMarginals:
    def test_filters(self, service, hospital):
        sid = service.repair(payload_for(hospital))["session"]
        everything = service.marginals(sid)["cells"]
        tid = everything[0]["tid"]
        subset = service.marginals(sid, tid=tid)["cells"]
        assert subset and all(c["tid"] == tid for c in subset)
        for cell in subset:
            assert cell["confidence"] == max(cell["marginal"])

    def test_unknown_session(self, service):
        with pytest.raises(NotFound):
            service.marginals("feedbeefcafe")

    def test_rehydrates_from_checkpoint(self, service, hospital):
        sid = service.repair(payload_for(hospital))["session"]
        before = service.marginals(sid)["cells"]
        service.delete_session(sid)  # evict but keep the checkpoint
        after = service.marginals(sid)["cells"]
        assert after == before


class TestValidation:
    def test_missing_dataset(self, ephemeral_service):
        with pytest.raises(BadRequest, match="dataset"):
            ephemeral_service.repair({"constraints": []})

    def test_ragged_rows(self, ephemeral_service):
        with pytest.raises(BadRequest, match="values"):
            ephemeral_service.repair(
                {
                    "dataset": {"columns": ["A", "B"], "rows": [["x"]]},
                    "constraints": ["t1&t2&EQ(t1.A,t2.A)&IQ(t1.B,t2.B)"],
                }
            )

    def test_bad_constraint_text(self, ephemeral_service):
        with pytest.raises(BadRequest, match="constraint"):
            ephemeral_service.repair(
                {
                    "dataset": {"columns": ["A"], "rows": [["x"]]},
                    "constraints": ["NOT A DC"],
                }
            )

    def test_no_constraints(self, ephemeral_service):
        with pytest.raises(BadRequest, match="constraints"):
            ephemeral_service.repair({"dataset": {"columns": ["A"], "rows": [["x"]]}})

    def test_unknown_config_field(self, ephemeral_service, hospital):
        payload = payload_for(hospital)
        payload["config"]["no_such_knob"] = 1
        with pytest.raises(BadRequest, match="config"):
            ephemeral_service.repair(payload)

    def test_serve_knobs_are_operator_only(self, ephemeral_service, hospital):
        payload = payload_for(hospital)
        payload["config"]["serve_workers"] = 64
        with pytest.raises(BadRequest, match="operator-only"):
            ephemeral_service.repair(payload)

    def test_delete_unknown_session(self, ephemeral_service):
        with pytest.raises(NotFound):
            ephemeral_service.delete_session("feedbeefcafe")


class TestAdmissionControl:
    def test_saturation_raises_429(self, hospital):
        svc = RepairService(HoloCleanConfig(serve_workers=0, serve_queue_depth=0))
        try:
            svc._admit()  # the single slot is now taken
            with pytest.raises(Saturated):
                svc.submit_repair(payload_for(hospital))
            assert svc._counts["rejected"] == 1
            with svc._gate:
                svc._inflight -= 1
        finally:
            svc.close()

    def test_slots_released_after_job(self, ephemeral_service, hospital):
        ephemeral_service.repair(payload_for(hospital))
        assert ephemeral_service._inflight == 0


class TestLifecycle:
    def test_eviction_checkpoints(self, tmp_path, hospital, flights):
        svc = RepairService(
            HoloCleanConfig(
                serve_workers=0,
                serve_max_sessions=1,
                serve_checkpoint_dir=str(tmp_path),
            )
        )
        try:
            first = svc.repair(payload_for(hospital))
            svc.repair(payload_for(flights))  # displaces the hospital session
            assert len(svc.store) == 1
            assert svc.checkpoints.has(first["session"])
            back = svc.repair(payload_for(hospital))
            assert back["path"] == "rehydrated"
        finally:
            svc.close()

    def test_close_checkpoints_warm_sessions(self, tmp_path, hospital):
        svc = RepairService(
            HoloCleanConfig(serve_workers=0, serve_checkpoint_dir=str(tmp_path))
        )
        sid = svc.repair(payload_for(hospital))["session"]
        svc.close()
        assert svc.checkpoints.has(sid)

    def test_metrics_snapshot(self, service, hospital):
        service.repair(payload_for(hospital))
        service.repair(payload_for(hospital))
        snapshot = service.metrics_snapshot()
        gauges = snapshot["gauges"]
        assert gauges["serve.requests_total"] == 2
        assert gauges["serve.cold_total"] == 1
        assert gauges["serve.warm_total"] == 1
        assert gauges["serve.sessions"] == 1
        assert snapshot["labels"]["serve.last_path"] == "warm"
        assert len(snapshot["series"]["serve.job_seconds"]) == 2

    def test_health(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["checkpointing"] is True


class TestProcessPool:
    def test_cold_runs_through_pool(self, hospital):
        svc = RepairService(HoloCleanConfig(serve_workers=1))
        try:
            if svc._process_pool() is None:
                pytest.skip("fork-based pool unavailable on this platform")
            cold = svc.repair(payload_for(hospital))
            assert cold["path"] == "cold"
            warm = svc.repair(payload_for(hospital))
            assert warm["path"] == "warm"
            assert warm["repairs"] == cold["repairs"]
        finally:
            svc.close()

    def test_pool_output_matches_inline(self, hospital):
        pooled = RepairService(HoloCleanConfig(serve_workers=1))
        inline = RepairService(HoloCleanConfig(serve_workers=0))
        try:
            if pooled._process_pool() is None:
                pytest.skip("fork-based pool unavailable on this platform")
            a = pooled.repair(payload_for(hospital))
            b = inline.repair(payload_for(hospital))
            assert a["repairs"] == b["repairs"]
            assert a["session"] == b["session"]
        finally:
            pooled.close()
            inline.close()
