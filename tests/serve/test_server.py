"""HTTP front-end tests: routing, error mapping, end-to-end repairs.

No HTTP client library ships in the container, so requests go over a
raw asyncio stream — which also exercises the hand-rolled HTTP/1.1
parsing in :mod:`repro.serve.server` from the wire up.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.config import HoloCleanConfig
from repro.serve.server import RepairServer
from repro.serve.service import RepairService

from tests.serve.conftest import payload_for


async def _request(port, method, path, body=None, raw: bytes | None = None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        if raw is None:
            payload = b"" if body is None else json.dumps(body).encode()
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: t\r\nContent-Length: {len(payload)}\r\n\r\n"
            )
            writer.write(head.encode() + payload)
        else:
            writer.write(raw)
        await writer.drain()
        response = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body_bytes = response.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_bytes)


def serve(test_body, config=None):
    """Run ``await test_body(server)`` against a live ephemeral server."""

    async def scenario():
        service = RepairService(config or HoloCleanConfig(serve_workers=0))
        server = RepairServer(service, port=0)
        await server.start()
        try:
            return await test_body(server)
        finally:
            await server.stop()

    return asyncio.run(scenario())


class TestRoutes:
    def test_healthz(self):
        async def body(server):
            status, _, payload = await _request(server.port, "GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["sessions"] == 0

        serve(body)

    def test_repair_cold_then_warm(self, hospital):
        async def body(server):
            status, _, first = await _request(
                server.port, "POST", "/repair", payload_for(hospital)
            )
            assert status == 200
            assert first["path"] == "cold"
            assert first["num_repairs"] > 0

            status, _, second = await _request(
                server.port, "POST", "/repair", payload_for(hospital)
            )
            assert status == 200
            assert second["path"] == "warm"
            assert second["repairs"] == first["repairs"]
            return first["session"]

        serve(body)

    def test_feedback_and_marginals(self, hospital):
        async def body(server):
            _, _, first = await _request(
                server.port, "POST", "/repair", payload_for(hospital)
            )
            sid = first["session"]

            status, _, marginals = await _request(
                server.port, "GET", f"/sessions/{sid}/marginals"
            )
            assert status == 200 and marginals["cells"]
            target = marginals["cells"][0]

            status, _, filtered = await _request(
                server.port,
                "GET",
                f"/sessions/{sid}/marginals"
                f"?tid={target['tid']}&attribute={target['attribute']}",
            )
            assert status == 200
            assert {(c["tid"], c["attribute"]) for c in filtered["cells"]} == {
                (target["tid"], target["attribute"])
            }

            status, _, response = await _request(
                server.port,
                "POST",
                f"/sessions/{sid}/feedback",
                {
                    "cells": [
                        {
                            "tid": target["tid"],
                            "attribute": target["attribute"],
                            "value": target["domain"][-1],
                        }
                    ]
                },
            )
            assert status == 200
            assert response["feedback_count"] == 1
            assert response["path"] == "warm"

        serve(body)

    def test_delete_then_404(self, hospital):
        async def body(server):
            _, _, first = await _request(
                server.port, "POST", "/repair", payload_for(hospital)
            )
            sid = first["session"]
            status, _, gone = await _request(
                server.port, "DELETE", f"/sessions/{sid}?checkpoint=0"
            )
            assert status == 200 and gone["evicted"]
            status, _, _ = await _request(
                server.port, "DELETE", f"/sessions/{sid}?checkpoint=0"
            )
            assert status == 404

        serve(body)

    def test_metricsz_counts_requests(self, hospital):
        async def body(server):
            await _request(server.port, "POST", "/repair", payload_for(hospital))
            await _request(server.port, "POST", "/repair", payload_for(hospital))
            status, _, snapshot = await _request(server.port, "GET", "/metricsz")
            assert status == 200
            assert snapshot["gauges"]["serve.requests_total"] == 2
            assert snapshot["gauges"]["serve.warm_total"] == 1
            assert snapshot["labels"]["serve.last_path"] == "warm"

        serve(body)


class TestErrorMapping:
    def test_unknown_route_404(self):
        async def body(server):
            status, _, payload = await _request(server.port, "GET", "/nope")
            assert status == 404 and "no route" in payload["error"]

        serve(body)

    def test_wrong_method_405(self):
        async def body(server):
            status, _, _ = await _request(server.port, "GET", "/repair")
            assert status == 405

        serve(body)

    def test_bad_payload_400(self):
        async def body(server):
            status, _, payload = await _request(
                server.port, "POST", "/repair", {"constraints": ["x"]}
            )
            assert status == 400 and "dataset" in payload["error"]

        serve(body)

    def test_invalid_json_400(self):
        async def body(server):
            raw = (
                b"POST /repair HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 9\r\n\r\nnot-json!"
            )
            status, _, payload = await _request(server.port, "POST", "/repair", raw=raw)
            assert status == 400 and "JSON" in payload["error"]

        serve(body)

    def test_unknown_session_404(self):
        async def body(server):
            status, _, _ = await _request(
                server.port, "GET", "/sessions/feedbeefcafe/marginals"
            )
            assert status == 404

        serve(body)

    def test_saturated_429_with_retry_after(self, hospital):
        async def body(server):
            service = server.service
            with service._gate:
                service._inflight = max(1, service.workers) + service.queue_depth
            try:
                status, headers, payload = await _request(
                    server.port, "POST", "/repair", payload_for(hospital)
                )
            finally:
                with service._gate:
                    service._inflight = 0
            assert status == 429
            assert headers["retry-after"] == "1"
            assert "retry" in payload["error"]

        serve(body)

    def test_job_timeout_504(self, hospital):
        async def body(server):
            status, _, payload = await _request(
                server.port, "POST", "/repair", payload_for(hospital)
            )
            assert status == 504 and "budget" in payload["error"]
            assert server.service._counts["timeouts"] == 1

        serve(body, HoloCleanConfig(serve_workers=0, serve_job_timeout=0.001))


class TestRehydration:
    def test_restart_rehydrates_from_checkpoint(self, tmp_path, hospital):
        """A brand-new server process picks up the old server's session."""
        config = HoloCleanConfig(serve_workers=0, serve_checkpoint_dir=str(tmp_path))

        async def first_life(server):
            _, _, response = await _request(
                server.port, "POST", "/repair", payload_for(hospital)
            )
            assert response["path"] == "cold"
            return response

        async def second_life(server):
            _, _, response = await _request(
                server.port, "POST", "/repair", payload_for(hospital)
            )
            return response

        before = serve(first_life, config)
        after = serve(second_life, config)
        assert after["path"] == "rehydrated"
        assert after["session"] == before["session"]
        assert after["repairs"] == before["repairs"]


def test_cli_parser_defaults():
    from repro.serve.server import build_parser

    args = build_parser().parse_args(["--port", "0", "--workers", "0"])
    assert args.port == 0
    assert args.workers == 0
    assert args.max_sessions == 16
    assert args.queue_depth == 8
    assert args.job_timeout == 300.0
    assert args.checkpoint_dir is None
