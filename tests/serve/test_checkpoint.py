"""Checkpoint round-trips: rehydrated sessions must be indistinguishable.

The serving pledge (ROADMAP item 3): a session serialized to disk,
evicted, and rehydrated must re-enter the staged plan at ``learn`` or
``infer`` and produce *marginal-identical* results versus the session
that stayed warm in memory the whole time — on Hospital and Flights,
and through the feedback path too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stages import (
    CompileStage,
    DetectStage,
    RepairContext,
    RepairPlan,
)
from repro.serve.checkpoint import CheckpointError, CheckpointStore

from tests.serve.conftest import config_for


def _fresh_ctx(generated) -> RepairContext:
    return RepairContext(
        dataset=generated.dirty,
        constraints=list(generated.constraints),
        config=config_for(generated),
    )


def _assert_same_outcome(warm: RepairContext, rehydrated: RepairContext):
    """Byte-equality of weights, marginals, and the applied repairs."""
    np.testing.assert_array_equal(warm.weights, rehydrated.weights)
    assert warm.losses == rehydrated.losses
    assert set(warm.marginals) == set(rehydrated.marginals)
    for vid in warm.marginals:
        np.testing.assert_array_equal(warm.marginals[vid], rehydrated.marginals[vid])
    assert warm.result is not None and rehydrated.result is not None
    assert set(warm.result.inferences) == set(rehydrated.result.inferences)
    for cell, want in warm.result.inferences.items():
        got = rehydrated.result.inferences[cell]
        assert got.chosen_value == want.chosen_value
        assert got.confidence == want.confidence
        np.testing.assert_array_equal(got.marginal, want.marginal)
    assert warm.result.repaired == rehydrated.result.repaired


@pytest.mark.parametrize("dataset_fixture", ["hospital", "flights"])
class TestRoundTrip:
    def test_reenter_at_learn_matches_warm(self, dataset_fixture, request, tmp_path):
        generated = request.getfixturevalue(dataset_fixture)
        warm = RepairPlan.default().run(_fresh_ctx(generated))
        store = CheckpointStore(tmp_path)
        store.save("sid", warm)

        rehydrated = store.load("sid")
        assert rehydrated is not None
        assert rehydrated.engine is None and rehydrated.tracer is None
        np.testing.assert_array_equal(rehydrated.weights, warm.weights)

        # Re-enter at learn on both; detect/compile artifacts survived
        # the trip, so only the learning half runs again.
        plan = RepairPlan.default().starting_at("learn")
        warm = plan.run(warm)
        rehydrated = plan.run(rehydrated)
        assert rehydrated.stage_status["learn"] == "ran"
        _assert_same_outcome(warm, rehydrated)

    def test_reenter_at_infer_matches_warm(self, dataset_fixture, request, tmp_path):
        generated = request.getfixturevalue(dataset_fixture)
        warm = RepairPlan.default().run(_fresh_ctx(generated))
        store = CheckpointStore(tmp_path)
        store.save("sid", warm)
        rehydrated = store.load("sid")

        plan = RepairPlan.default().starting_at("infer")
        warm = plan.run(warm)
        rehydrated = plan.run(rehydrated)
        _assert_same_outcome(warm, rehydrated)

    def test_feedback_path_matches_warm(self, dataset_fixture, request, tmp_path):
        generated = request.getfixturevalue(dataset_fixture)
        warm = RepairPlan.default().run(_fresh_ctx(generated))
        store = CheckpointStore(tmp_path)
        store.save("sid", warm)
        rehydrated = store.load("sid")

        # The same user verification lands on both contexts.
        info = warm.model.graph.variables[warm.model.query_ids[0]]
        verified = info.domain[-1]
        plan = RepairPlan.default().starting_at("learn")
        warm.feedback[info.cell] = verified
        rehydrated.feedback[info.cell] = verified
        warm = plan.run(warm)
        rehydrated = plan.run(rehydrated)
        _assert_same_outcome(warm, rehydrated)
        assert warm.result.inferences[info.cell].chosen_value == verified

    def test_feedback_survives_the_checkpoint_itself(
        self, dataset_fixture, request, tmp_path
    ):
        generated = request.getfixturevalue(dataset_fixture)
        warm = RepairPlan.default().run(_fresh_ctx(generated))
        info = warm.model.graph.variables[warm.model.query_ids[0]]
        verified = info.domain[-1]
        warm.feedback[info.cell] = verified
        plan = RepairPlan.default().starting_at("learn")
        warm = plan.run(warm)

        store = CheckpointStore(tmp_path)
        store.save("sid", warm)
        rehydrated = store.load("sid")
        assert rehydrated.feedback == {info.cell: verified}
        rehydrated = plan.run(rehydrated)
        warm = plan.run(warm)
        _assert_same_outcome(warm, rehydrated)


class TestMidPipelineCheckpoint:
    def test_compile_only_checkpoint_resumes(self, hospital, tmp_path):
        """A session checkpointed before learn resumes mid-pipeline."""
        partial = RepairPlan([DetectStage(), CompileStage()]).run(_fresh_ctx(hospital))
        store = CheckpointStore(tmp_path)
        store.save("sid", partial)

        rehydrated = store.load("sid")
        assert rehydrated.model is not None
        assert rehydrated.weights is None
        assert not (store.path("sid") / "learn.pkl").exists()

        warm = RepairPlan.default().run(_fresh_ctx(hospital))
        rehydrated = RepairPlan.default().run(rehydrated)
        assert rehydrated.stage_status["detect"] == "skipped"
        assert rehydrated.stage_status["compile"] == "skipped"
        _assert_same_outcome(warm, rehydrated)


class TestStoreMechanics:
    def test_load_missing_returns_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nope") is None

    def test_has_delete_and_listing(self, hospital, tmp_path):
        ctx = RepairPlan.default().run(_fresh_ctx(hospital))
        store = CheckpointStore(tmp_path)
        store.save("aaa", ctx)
        store.save("bbb", ctx)
        assert store.has("aaa")
        assert store.session_ids() == ["aaa", "bbb"]
        assert store.delete("aaa")
        assert not store.has("aaa")
        assert not store.delete("aaa")

    def test_version_mismatch_rejected(self, hospital, tmp_path):
        ctx = RepairPlan.default().run(_fresh_ctx(hospital))
        store = CheckpointStore(tmp_path)
        store.save("sid", ctx)
        meta = store.path("sid") / "meta.json"
        meta.write_text(meta.read_text().replace('"version": 1', '"version": 99'))
        with pytest.raises(CheckpointError, match="format version"):
            store.load("sid")

    def test_fingerprint_tamper_rejected(self, hospital, tmp_path):
        ctx = RepairPlan.default().run(_fresh_ctx(hospital))
        store = CheckpointStore(tmp_path)
        store.save("sid", ctx)
        meta = store.path("sid") / "meta.json"
        tampered = meta.read_text().replace(ctx.fingerprints()["dataset"], "0" * 12)
        meta.write_text(tampered)
        with pytest.raises(CheckpointError, match="fingerprint"):
            store.load("sid")

    def test_save_overwrites_atomically(self, hospital, tmp_path):
        ctx = RepairPlan.default().run(_fresh_ctx(hospital))
        store = CheckpointStore(tmp_path)
        store.save("sid", ctx)
        first = (store.path("sid") / "meta.json").read_text()
        store.save("sid", ctx)
        assert (store.path("sid") / "meta.json").read_text() == first
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
        assert leftovers == []
