"""LRU and keying semantics of the serving session store."""

from __future__ import annotations

import pytest

from repro.core.stages import RepairContext
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema
from repro.serve.store import SessionKey, SessionStore


def _ctx(tag: str) -> RepairContext:
    dataset = Dataset(Schema(["A"]), [[tag]], name=tag)
    return RepairContext(dataset=dataset, constraints=[])


def _key(tag: str) -> SessionKey:
    return SessionKey(dataset=f"d-{tag}", constraints=f"c-{tag}")


class TestSessionKey:
    def test_session_id_deterministic(self):
        assert _key("x").session_id == _key("x").session_id
        assert _key("x").session_id != _key("y").session_id

    def test_for_context_matches_fingerprints(self):
        ctx = _ctx("a")
        key = SessionKey.for_context(ctx)
        parts = ctx.fingerprints()
        assert key.dataset == parts["dataset"]
        assert key.constraints == parts["constraints"]

    def test_config_not_part_of_key(self):
        ctx = _ctx("a")
        recooked = RepairContext(
            dataset=ctx.dataset,
            constraints=ctx.constraints,
            config=ctx.config.with_(epochs=3),
        )
        assert SessionKey.for_context(ctx) == SessionKey.for_context(recooked)


class TestSessionStore:
    def test_admit_and_lookup(self):
        store = SessionStore(capacity=2)
        key = _key("a")
        session = store.admit(key, _ctx("a"))
        assert store.lookup(key) is session
        assert store.get(session.sid) is session
        assert len(store) == 1

    def test_miss_counts(self):
        store = SessionStore(capacity=2)
        assert store.get("feedbeefcafe") is None
        assert store.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        evicted = []
        store = SessionStore(capacity=2, on_evict=lambda s: evicted.append(s.sid))
        a = store.admit(_key("a"), _ctx("a"))
        store.admit(_key("b"), _ctx("b"))
        store.get(a.sid)  # refresh a; b becomes LRU
        store.admit(_key("c"), _ctx("c"))
        assert evicted == [_key("b").session_id]
        assert a.sid in store
        assert _key("c").session_id in store

    def test_remove_skips_on_evict(self):
        evicted = []
        store = SessionStore(capacity=2, on_evict=lambda s: evicted.append(s.sid))
        session = store.admit(_key("a"), _ctx("a"))
        assert store.remove(session.sid) is session
        assert evicted == []
        assert store.remove(session.sid) is None

    def test_evict_invokes_callback(self):
        evicted = []
        store = SessionStore(capacity=2, on_evict=lambda s: evicted.append(s.sid))
        session = store.admit(_key("a"), _ctx("a"))
        assert store.evict(session.sid) is session
        assert evicted == [session.sid]

    def test_readmit_same_key_replaces(self):
        store = SessionStore(capacity=2)
        first = store.admit(_key("a"), _ctx("a"))
        second = store.admit(_key("a"), _ctx("a2"))
        assert first is not second
        assert len(store) == 1
        assert store.get(second.sid) is second

    def test_touch_tracks_requests(self):
        store = SessionStore(capacity=2)
        session = store.admit(_key("a"), _ctx("a"))
        before = session.requests
        store.get(session.sid)
        assert session.requests == before + 1

    def test_clear_with_evict(self):
        evicted = []
        store = SessionStore(capacity=4, on_evict=lambda s: evicted.append(s.sid))
        store.admit(_key("a"), _ctx("a"))
        store.admit(_key("b"), _ctx("b"))
        store.clear(evict=True)
        assert len(store) == 0
        assert len(evicted) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SessionStore(capacity=0)
