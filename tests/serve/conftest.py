"""Shared fixtures for the serving-subsystem tests."""

from __future__ import annotations

import pytest

from repro.core.config import HoloCleanConfig
from repro.data import generate_flights, generate_hospital


@pytest.fixture(scope="session")
def hospital():
    return generate_hospital(num_rows=60)


@pytest.fixture(scope="session")
def flights():
    return generate_flights(num_flights=5)


def config_for(generated, **overrides):
    fields = dict(
        tau=generated.recommended_tau,
        source_entity_attributes=generated.source_entity_attributes,
        epochs=10,
        seed=3,
    )
    fields.update(overrides)
    return HoloCleanConfig(**fields)


def payload_for(generated, **config_overrides):
    """A ``POST /repair`` body for a generated dataset."""
    from repro.constraints.parser import format_dc

    dirty = generated.dirty
    config = dict(
        tau=generated.recommended_tau,
        source_entity_attributes=list(generated.source_entity_attributes),
        epochs=10,
        seed=3,
    )
    config.update(config_overrides)
    source_columns = dirty.schema.with_role("source")
    return {
        "dataset": {
            "name": dirty.name,
            "columns": list(dirty.schema.names),
            "rows": [list(dirty.row_ref(t)) for t in range(dirty.num_tuples)],
            "source_column": source_columns[0] if source_columns else None,
        },
        "constraints": [format_dc(dc) for dc in generated.constraints],
        "config": config,
    }
