"""Shared fixtures: small crafted datasets used across the test suite."""

from __future__ import annotations

import pytest

from repro.constraints.fd import parse_fd
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Attribute, Schema


@pytest.fixture
def address_schema() -> Schema:
    """The Figure 1 schema from the paper."""
    return Schema(["DBAName", "AKAName", "Address", "City", "State", "Zip"])


@pytest.fixture
def figure1_dataset(address_schema) -> Dataset:
    """The paper's running example (Figure 1A) plus clean context rows.

    t0 has a wrong zip (60609, should be 60608) and t3 has a misspelled
    city ("Cicago"); extra duplicate rows provide the statistical signal
    the example's discussion relies on.
    """
    rows = [
        ["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST", "Chicago", "IL", "60609"],
        ["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST", "Chicago", "IL", "60608"],
        ["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST", "Chicago", "IL", "60608"],
        ["Johnnyo's", "Johnnyo's", "3465 S Morgan ST", "Cicago", "IL", "60608"],
    ]
    for _ in range(12):
        rows.append(["John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST",
                     "Chicago", "IL", "60608"])
        rows.append(["Taco Place", "Taco's", "100 W Lake ST",
                     "Chicago", "IL", "60601"])
    return Dataset(address_schema, rows, name="figure1")


@pytest.fixture
def figure1_constraints():
    """The three FDs of Figure 1(B), compiled to denial constraints."""
    fds = [parse_fd("DBAName -> Zip"), parse_fd("Zip -> City,State"),
           parse_fd("City,State,Address -> Zip")]
    return [dc for fd in fds for dc in fd.to_denial_constraints()]


@pytest.fixture
def tiny_dataset() -> Dataset:
    """A 4-row, 3-attribute dataset for unit-level assertions."""
    schema = Schema(["A", "B", "C"])
    return Dataset(schema, [
        ["a1", "b1", "c1"],
        ["a1", "b1", "c2"],
        ["a2", "b2", "c1"],
        ["a2", "b3", None],
    ], name="tiny")


@pytest.fixture
def sourced_schema() -> Schema:
    return Schema([
        Attribute("Source", role="source"),
        Attribute("Flight"),
        Attribute("Dep"),
    ])
