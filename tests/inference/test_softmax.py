"""Tests for the ERM softmax trainer."""

import numpy as np
import pytest

from repro.inference.features import FeatureMatrixBuilder, FeatureSpace
from repro.inference.softmax import SoftmaxTrainer


def build_separable(num_vars=30):
    """Variables with 2 candidates; feature 'good' marks the label."""
    space = FeatureSpace()
    builder = FeatureMatrixBuilder(space)
    labels = []
    for i in range(num_vars):
        v = builder.start_variable(2)
        label = i % 2
        builder.add(v, label, ("good",), 1.0)
        builder.add(v, 1 - label, ("bad",), 1.0)
        labels.append(label)
    return builder.build(), space, labels


class TestTraining:
    def test_learns_separable_problem(self):
        matrix, space, labels = build_separable()
        trainer = SoftmaxTrainer(matrix, epochs=60, learning_rate=0.3)
        result = trainer.train(list(range(matrix.num_vars)), labels)
        good = result.weights[space.index(("good",))]
        bad = result.weights[space.index(("bad",))]
        assert good > bad
        assert result.losses[-1] < result.losses[0]

    def test_fixed_weights_not_updated(self):
        matrix, space, labels = build_separable()
        idx = space.index(("bad",))
        trainer = SoftmaxTrainer(matrix, epochs=30,
                                 fixed_weights={idx: 0.7})
        result = trainer.train(list(range(matrix.num_vars)), labels)
        assert result.weights[idx] == pytest.approx(0.7)

    def test_l2_shrinks_weights(self):
        matrix, _, labels = build_separable()
        small = SoftmaxTrainer(matrix, epochs=60, l2=0.0).train(
            list(range(matrix.num_vars)), labels)
        large = SoftmaxTrainer(matrix, epochs=60, l2=1.0).train(
            list(range(matrix.num_vars)), labels)
        assert np.abs(large.weights).max() < np.abs(small.weights).max()

    def test_empty_training_returns_fixed(self):
        matrix, space, _ = build_separable()
        idx = space.index(("good",))
        trainer = SoftmaxTrainer(matrix, fixed_weights={idx: 2.0})
        result = trainer.train([], [])
        assert result.weights[idx] == 2.0
        assert result.epochs_run == 0

    def test_label_out_of_domain_rejected(self):
        matrix, _, labels = build_separable()
        trainer = SoftmaxTrainer(matrix)
        with pytest.raises(ValueError, match="outside"):
            trainer.train([0], [5])

    def test_mismatched_lengths_rejected(self):
        matrix, _, _ = build_separable()
        with pytest.raises(ValueError, match="align"):
            SoftmaxTrainer(matrix).train([0, 1], [0])

    def test_subsampling_cap(self):
        matrix, _, labels = build_separable(num_vars=40)
        trainer = SoftmaxTrainer(matrix, epochs=5, max_training_vars=10)
        result = trainer.train(list(range(40)), labels)
        assert np.isfinite(result.final_loss)

    def test_deterministic_given_seed(self):
        matrix, _, labels = build_separable(num_vars=40)
        runs = []
        for _ in range(2):
            trainer = SoftmaxTrainer(matrix, epochs=10,
                                     max_training_vars=10, seed=3)
            runs.append(trainer.train(list(range(40)), labels).weights)
        assert np.array_equal(runs[0], runs[1])


class TestMarginals:
    def test_sum_to_one(self):
        matrix, _, labels = build_separable()
        trainer = SoftmaxTrainer(matrix, epochs=30)
        result = trainer.train(list(range(matrix.num_vars)), labels)
        marginals = trainer.marginals(result.weights, [0, 1, 2])
        for m in marginals.values():
            assert m.sum() == pytest.approx(1.0)

    def test_favor_learned_candidate(self):
        matrix, _, labels = build_separable()
        trainer = SoftmaxTrainer(matrix, epochs=60, learning_rate=0.3)
        result = trainer.train(list(range(matrix.num_vars)), labels)
        marginals = trainer.marginals(result.weights, [0])
        assert marginals[0][labels[0]] > 0.5


class TestRestrictedMarginals:
    def test_subset_matches_full_scores(self):
        """Scoring only the requested rows reproduces the full pass bit
        for bit (same entries, same summation order)."""
        matrix, _, labels = build_separable()
        trainer = SoftmaxTrainer(matrix, epochs=20)
        weights = trainer.train(list(range(matrix.num_vars)), labels).weights
        scores = matrix.scores(weights)
        for var_ids in ([2], [0, 3], list(range(matrix.num_vars))):
            marginals = trainer.marginals(weights, var_ids)
            assert sorted(marginals) == sorted(var_ids)
            for v in var_ids:
                lo = int(matrix.var_row_start[v])
                hi = int(matrix.var_row_start[v + 1])
                s = scores[lo:hi]
                e = np.exp(s - s.max())
                assert np.array_equal(marginals[v], e / e.sum())

    def test_empty_request(self):
        matrix, _, _ = build_separable()
        trainer = SoftmaxTrainer(matrix)
        assert trainer.marginals(np.zeros(matrix.num_features), []) == {}
