"""Tests for the feature space and CSR feature matrix."""

import numpy as np
import pytest

from repro.inference.features import FeatureMatrixBuilder, FeatureSpace


class TestFeatureSpace:
    def test_index_allocates_sequentially(self):
        space = FeatureSpace()
        assert space.index("a") == 0
        assert space.index("b") == 1
        assert space.index("a") == 0
        assert len(space) == 2

    def test_key_lookup(self):
        space = FeatureSpace()
        space.index(("cooc", "City"))
        assert space.key(0) == ("cooc", "City")

    def test_get_returns_none_for_unknown(self):
        assert FeatureSpace().get("missing") is None

    def test_freeze_blocks_new_keys(self):
        space = FeatureSpace()
        space.index("a")
        space.freeze()
        assert space.index("a") == 0  # existing keys still fine
        with pytest.raises(KeyError, match="frozen"):
            space.index("new")

    def test_fixed_weights(self):
        space = FeatureSpace()
        idx = space.set_fixed(("minimality",), 1.5)
        assert space.fixed_weights == {idx: 1.5}

    def test_contains(self):
        space = FeatureSpace()
        space.index("a")
        assert "a" in space and "b" not in space


class TestFeatureMatrixBuilder:
    def test_variable_registration(self):
        builder = FeatureMatrixBuilder(FeatureSpace())
        assert builder.start_variable(3) == 0
        assert builder.start_variable(2) == 1
        assert builder.num_vars == 2

    def test_zero_candidates_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FeatureMatrixBuilder(FeatureSpace()).start_variable(0)

    def test_candidate_bounds_checked(self):
        builder = FeatureMatrixBuilder(FeatureSpace())
        v = builder.start_variable(2)
        with pytest.raises(IndexError):
            builder.add(v, 2, "f", 1.0)

    def test_add_entries_matches_sequential_adds(self):
        def sequential():
            builder = FeatureMatrixBuilder(FeatureSpace())
            builder.start_variable(2)
            builder.start_variable(3)
            builder.add(0, 0, "a", 1.0)
            builder.add(0, 1, "b", 2.0)
            builder.add(1, 2, "a", 3.0)
            builder.add(0, 1, "c", 4.0)  # second entry of the same row
            return builder

        batched = FeatureMatrixBuilder(FeatureSpace())
        batched.start_variable(2)
        batched.start_variable(3)
        var_ids = np.array([0, 0, 1, 0])
        cand_idx = np.array([0, 1, 2, 1])
        values = np.array([1.0, 2.0, 3.0, 4.0])
        batched.add_entries(var_ids, cand_idx, ["a", "b", "a", "c"], values)
        reference = sequential()
        want = reference.build()
        got = batched.build()
        assert reference.space._keys == batched.space._keys
        assert np.array_equal(got.row_ptr, want.row_ptr)
        assert np.array_equal(got.indices, want.indices)
        assert np.array_equal(got.values, want.values)

    def test_add_entries_accepts_resolved_indices(self):
        space = FeatureSpace()
        ka, kb = space.index("a"), space.index("b")
        builder = FeatureMatrixBuilder(space)
        builder.start_variable(2)
        keys = np.array([kb, ka])
        builder.add_entries(np.array([0, 0]), np.array([0, 1]), keys, [1.0, 2.0])
        matrix = builder.build()
        assert matrix.indices.tolist() == [kb, ka]
        assert matrix.values.tolist() == [1.0, 2.0]

    def test_add_entries_interleaves_with_add_chronologically(self):
        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        builder.start_variable(1)
        builder.add(0, 0, "a", 1.0)
        builder.add_entries(np.array([0]), np.array([0]), ["b"], [2.0])
        builder.add(0, 0, "c", 3.0)
        matrix = builder.build()
        # One row, entries in insertion order across both mechanisms.
        wanted = [space.index("a"), space.index("b"), space.index("c")]
        assert matrix.indices.tolist() == wanted
        assert matrix.values.tolist() == [1.0, 2.0, 3.0]

    def test_add_entries_validates(self):
        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        builder.start_variable(2)
        with pytest.raises(IndexError):
            builder.add_entries(np.array([0]), np.array([2]), ["a"], [1.0])
        with pytest.raises(IndexError):  # unallocated feature index
            builder.add_entries(np.array([0]), np.array([0]), np.array([5]), [1.0])
        with pytest.raises(ValueError, match="align"):
            builder.add_entries(np.array([0, 0]), np.array([0]), ["a"], [1.0])

    def test_add_entries_empty_is_noop(self):
        builder = FeatureMatrixBuilder(FeatureSpace())
        builder.start_variable(2)
        empty = np.array([], dtype=np.int64)
        builder.add_entries(empty, empty, [], np.array([], dtype=np.float64))
        matrix = builder.build()
        assert matrix.num_entries == 0
        assert matrix.num_rows == 2

    def test_build_layout(self):
        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        v0 = builder.start_variable(2)
        v1 = builder.start_variable(3)
        builder.add(v0, 0, "f0", 1.0)
        builder.add(v1, 2, "f1", 0.5)
        m = builder.build()
        assert m.num_vars == 2
        assert m.num_rows == 5
        assert list(m.var_row_start) == [0, 2, 5]
        assert m.num_entries == 2

    def test_scores_match_manual_dot_product(self):
        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        v = builder.start_variable(2)
        builder.add(v, 0, "f0", 2.0)
        builder.add(v, 0, "f1", 1.0)
        builder.add(v, 1, "f1", 3.0)
        m = builder.build()
        w = np.array([0.5, -1.0])
        scores = m.scores(w)
        assert scores[0] == pytest.approx(2.0 * 0.5 + 1.0 * -1.0)
        assert scores[1] == pytest.approx(3.0 * -1.0)

    def test_scores_handle_empty_rows(self):
        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        v = builder.start_variable(3)
        builder.add(v, 1, "f", 1.0)
        m = builder.build()
        scores = m.scores(np.array([2.0]))
        assert list(scores) == [0.0, 2.0, 0.0]

    def test_scores_reject_wrong_weight_length(self):
        builder = FeatureMatrixBuilder(FeatureSpace())
        v = builder.start_variable(1)
        builder.add(v, 0, "f", 1.0)
        m = builder.build()
        with pytest.raises(ValueError, match="feature space has"):
            m.scores(np.zeros(5))

    def test_var_scores_agree_with_global(self):
        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        v0 = builder.start_variable(2)
        v1 = builder.start_variable(2)
        builder.add(v0, 1, "a", 1.0)
        builder.add(v1, 0, "b", 2.0)
        m = builder.build()
        w = np.array([1.5, 0.25])
        global_scores = m.scores(w)
        assert list(m.var_scores(1, w)) == list(global_scores[2:4])

    def test_entry_row_ids(self):
        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        v = builder.start_variable(2)
        builder.add(v, 0, "a", 1.0)
        builder.add(v, 1, "b", 1.0)
        builder.add(v, 1, "c", 1.0)
        m = builder.build()
        assert list(m.entry_row_ids()) == [0, 1, 1]
