"""Tests for the Gibbs sampler."""

import itertools

import numpy as np
import pytest

from repro.dataset.dataset import Cell
from repro.inference.factor_graph import ConstraintFactor, FactorGraph
from repro.inference.features import FeatureMatrixBuilder, FeatureSpace
from repro.inference.gibbs import GibbsSampler
from repro.inference.variables import VariableBlock


def independent_graph(bias=1.5):
    """Two independent query variables, candidate 0 favored by ``bias``."""
    space = FeatureSpace()
    builder = FeatureMatrixBuilder(space)
    block = VariableBlock()
    for i in range(2):
        block.add(Cell(i, "A"), ["x", "y"], 0, is_evidence=False)
        v = builder.start_variable(2)
        builder.add(v, 0, ("bias",), bias)
    graph = FactorGraph(block, builder.build(), space)
    weights = np.ones(len(space))
    return graph, weights


def coupled_graph():
    """Evidence variable fixed to candidate 1, hard factor pulls the query."""
    space = FeatureSpace()
    builder = FeatureMatrixBuilder(space)
    block = VariableBlock()
    block.add(Cell(0, "A"), ["x", "y"], 1, is_evidence=True)
    builder.start_variable(2)
    block.add(Cell(1, "A"), ["x", "y"], 0, is_evidence=False)
    builder.start_variable(2)
    graph = FactorGraph(block, builder.build(), space)
    agree = np.array([[1, -1], [-1, 1]], dtype=np.int8)
    graph.add_factor(ConstraintFactor((0, 1), agree, weight=4.0))
    return graph, np.zeros(len(space))


class TestGibbsSampler:
    def test_initial_state_uses_evidence_and_init(self):
        graph, weights = coupled_graph()
        sampler = GibbsSampler(graph, weights)
        state = sampler.initial_state()
        assert state[0] == 1  # evidence observed value
        assert state[1] == 0  # query init value

    def test_conditional_is_distribution(self):
        graph, weights = independent_graph()
        sampler = GibbsSampler(graph, weights)
        p = sampler.conditional(0, sampler.initial_state())
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()

    def test_marginals_match_softmax_when_independent(self):
        graph, weights = independent_graph(bias=1.0)
        sampler = GibbsSampler(graph, weights, seed=1)
        result = sampler.run(burn_in=20, sweeps=400)
        expected = np.exp(1.0) / (np.exp(1.0) + 1.0)
        for vid in (0, 1):
            assert result.marginals[vid][0] == pytest.approx(expected, abs=0.06)

    def test_hard_factor_pulls_query_to_evidence(self):
        graph, weights = coupled_graph()
        sampler = GibbsSampler(graph, weights, seed=2)
        result = sampler.run(burn_in=20, sweeps=200)
        # Factor weight 4.0 strongly favors agreeing with evidence (=1).
        assert result.map_index(1) == 1
        assert result.marginals[1][1] > 0.9

    def test_deterministic_given_seed(self):
        graph, weights = independent_graph()
        r1 = GibbsSampler(graph, weights, seed=7).run(burn_in=5, sweeps=50)
        r2 = GibbsSampler(graph, weights, seed=7).run(burn_in=5, sweeps=50)
        for vid in r1.marginals:
            assert np.array_equal(r1.marginals[vid], r2.marginals[vid])

    def test_zero_sweeps_returns_conditionals(self):
        graph, weights = independent_graph()
        result = GibbsSampler(graph, weights).run(burn_in=0, sweeps=0)
        for m in result.marginals.values():
            assert m.sum() == pytest.approx(1.0)

    def test_marginals_only_for_query_vars(self):
        graph, weights = coupled_graph()
        result = GibbsSampler(graph, weights).run(burn_in=2, sweeps=5)
        assert set(result.marginals) == {1}


# ---------------------------------------------------------------------------
# Exactness: sampled marginals vs brute-force joint enumeration
# ---------------------------------------------------------------------------
def exact_marginals(graph, weights):
    """Query marginals by enumerating the full joint distribution.

    ``p(x) ∝ exp(Σ_v unary_v[x_v] + Σ_f w_f · table_f[x])`` with evidence
    variables pinned to their observed values — the distribution whose
    conditionals :meth:`GibbsSampler.conditional` implements.
    """
    unary = graph.unary_scores(weights)
    query = graph.variables.query_ids()
    state = np.zeros(len(graph.variables), dtype=np.int64)
    for var in graph.variables:
        if var.is_evidence:
            state[var.vid] = var.observed_index
    marginals = {v: np.zeros(graph.variables[v].domain_size) for v in query}
    domains = [range(graph.variables[v].domain_size) for v in query]
    for assignment in itertools.product(*domains):
        for v, value in zip(query, assignment):
            state[v] = value
        log_p = sum(float(unary[v][state[v]]) for v in query)
        for f in graph.factors:
            log_p += f.weight * float(f.table[tuple(state[u] for u in f.var_ids)])
        weight = np.exp(log_p)
        for v, value in zip(query, assignment):
            marginals[v][value] += weight
    total = sum(marginals[query[0]]) if query else 1.0
    return {v: m / total for v, m in marginals.items()}


def three_variable_graph():
    """One evidence + two query variables, chained by soft factors.

    Small enough to enumerate (2 × 3 × 2 states) yet genuinely coupled:
    an agree-factor ties the evidence to query 1 and a mixed-sign factor
    ties query 1 to query 2, so no variable's marginal is a bare softmax.
    """
    space = FeatureSpace()
    builder = FeatureMatrixBuilder(space)
    block = VariableBlock()
    block.add(Cell(0, "A"), ["x", "y"], 1, is_evidence=True)
    builder.start_variable(2)
    block.add(Cell(1, "A"), ["x", "y", "z"], 0, is_evidence=False)
    v1 = builder.start_variable(3)
    builder.add(v1, 0, ("bias",), 0.7)
    builder.add(v1, 2, ("bias",), 0.3)
    block.add(Cell(2, "A"), ["x", "y"], 0, is_evidence=False)
    v2 = builder.start_variable(2)
    builder.add(v2, 1, ("bias",), 0.5)
    graph = FactorGraph(block, builder.build(), space)
    table01 = np.array([[1, -1, 1], [-1, 1, -1]], dtype=np.int8)
    graph.add_factor(ConstraintFactor((0, 1), table01, 1.2, "tie01"))
    table12 = np.array([[1, -1], [-1, 1], [1, 1]], dtype=np.int8)
    graph.add_factor(ConstraintFactor((1, 2), table12, 0.8, "tie12"))
    return graph, np.ones(len(space))


class TestGibbsExactness:
    def test_marginals_match_joint_enumeration(self):
        graph, weights = three_variable_graph()
        expected = exact_marginals(graph, weights)
        sampler = GibbsSampler(graph, weights, seed=11)
        result = sampler.run(burn_in=100, sweeps=6000)
        assert set(result.marginals) == set(expected)
        for vid, marginal in expected.items():
            assert marginal.sum() == pytest.approx(1.0)
            np.testing.assert_allclose(result.marginals[vid], marginal, atol=0.03)

    def test_enumeration_reduces_to_softmax_when_independent(self):
        # Sanity check of the oracle itself: with no factors the exact
        # marginals are the per-variable softmaxes.
        graph, weights = independent_graph(bias=1.5)
        expected = exact_marginals(graph, weights)
        softmax = np.exp(1.5) / (np.exp(1.5) + 1.0)
        for vid in (0, 1):
            assert expected[vid][0] == pytest.approx(softmax)
