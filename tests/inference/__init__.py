"""Test package (needed so duplicate test basenames import cleanly)."""
