"""Tests for constraint factors and the factor graph container."""

import numpy as np
import pytest

from repro.dataset.dataset import Cell
from repro.inference.factor_graph import ConstraintFactor, FactorGraph
from repro.inference.features import FeatureMatrixBuilder, FeatureSpace
from repro.inference.variables import VariableBlock


def make_graph():
    space = FeatureSpace()
    builder = FeatureMatrixBuilder(space)
    block = VariableBlock()
    for i in range(3):
        block.add(Cell(i, "A"), ["x", "y"], 0, is_evidence=(i == 2))
        v = builder.start_variable(2)
        builder.add(v, 0, ("f",), 1.0)
    return FactorGraph(block, builder.build(), space)


def agree_factor(v1, v2, weight=2.0):
    """-1 when the two variables take different candidate indices."""
    table = np.array([[1, -1], [-1, 1]], dtype=np.int8)
    return ConstraintFactor((v1, v2), table, weight, "agree")


class TestConstraintFactor:
    def test_dimension_check(self):
        with pytest.raises(ValueError, match="dimensions"):
            ConstraintFactor((0,), np.ones((2, 2), dtype=np.int8), 1.0)

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="once"):
            ConstraintFactor((0, 0), np.ones((2, 2), dtype=np.int8), 1.0)

    def test_value(self):
        f = agree_factor(0, 1)
        assert f.value({0: 0, 1: 0}) == 1.0
        assert f.value({0: 0, 1: 1}) == -1.0

    def test_scores_for_slices_correct_axis(self):
        f = agree_factor(0, 1, weight=3.0)
        state = np.array([0, 1, 0])
        scores = f.scores_for(0, state)  # var 1 fixed at candidate 1
        assert list(scores) == [-3.0, 3.0]
        scores = f.scores_for(1, state)  # var 0 fixed at candidate 0
        assert list(scores) == [3.0, -3.0]

    def test_arity(self):
        assert agree_factor(0, 1).arity == 2


class TestFactorGraph:
    def test_adjacency(self):
        g = make_graph()
        g.add_factor(agree_factor(0, 1))
        g.add_factor(agree_factor(1, 2))
        adj = g.adjacency()
        assert adj[0] == [0]
        assert adj[1] == [0, 1]
        assert adj[2] == [1]

    def test_adjacency_invalidated_on_add(self):
        g = make_graph()
        g.add_factor(agree_factor(0, 1))
        assert 2 not in g.adjacency()
        g.add_factor(agree_factor(1, 2))
        assert g.adjacency()[2] == [1]

    def test_unary_scores_per_variable(self):
        g = make_graph()
        scores = g.unary_scores(np.array([2.0]))
        assert len(scores) == 3
        assert list(scores[0]) == [2.0, 0.0]

    def test_size_report(self):
        g = make_graph()
        g.add_factor(agree_factor(0, 1))
        report = g.size_report()
        assert report["variables"] == 3
        assert report["query_variables"] == 2
        assert report["constraint_factors"] == 1
        assert report["factor_table_cells"] == 4
        assert report["feature_entries"] == 3


class TestVariableBlock:
    def test_duplicate_cell_rejected(self):
        block = VariableBlock()
        block.add(Cell(0, "A"), ["x"], 0, is_evidence=False)
        with pytest.raises(ValueError, match="duplicate"):
            block.add(Cell(0, "A"), ["y"], 0, is_evidence=False)

    def test_by_cell(self):
        block = VariableBlock()
        info = block.add(Cell(0, "A"), ["x"], 0, is_evidence=False)
        assert block.by_cell(Cell(0, "A")) is info
        assert block.by_cell(Cell(9, "Z")) is None

    def test_evidence_and_query_ids(self):
        block = VariableBlock()
        block.add(Cell(0, "A"), ["x"], 0, is_evidence=True)
        block.add(Cell(1, "A"), ["x"], 0, is_evidence=False)
        assert block.evidence_ids() == [0]
        assert block.query_ids() == [1]

    def test_observed_index_requires_evidence(self):
        block = VariableBlock()
        info = block.add(Cell(0, "A"), ["x", "y"], 1, is_evidence=False)
        with pytest.raises(ValueError, match="not evidence"):
            _ = info.observed_index

    def test_candidate_index(self):
        block = VariableBlock()
        info = block.add(Cell(0, "A"), ["x", "y"], 0, is_evidence=False)
        assert info.candidate_index("y") == 1
        assert info.candidate_index("zzz") is None
