"""Tests for segmented numeric kernels."""

import numpy as np
import pytest

from repro.inference.numerics import (
    segment_logsumexp,
    segment_sizes,
    segment_softmax,
    softmax,
)


class TestSegmentSoftmax:
    def test_two_segments(self):
        scores = np.array([0.0, 0.0, 1.0, 2.0, 3.0])
        starts = np.array([0, 2, 5])
        probs = segment_softmax(scores, starts)
        assert probs[:2] == pytest.approx([0.5, 0.5])
        assert probs[2:].sum() == pytest.approx(1.0)
        assert probs[4] > probs[3] > probs[2]

    def test_numerical_stability_large_scores(self):
        scores = np.array([1000.0, 1001.0])
        probs = segment_softmax(scores, np.array([0, 2]))
        assert np.isfinite(probs).all()
        assert probs.sum() == pytest.approx(1.0)

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            segment_softmax(np.array([1.0]), np.array([0, 0, 1]))

    def test_no_segments(self):
        assert len(segment_softmax(np.array([]), np.array([0]))) == 0

    def test_singleton_segment_is_one(self):
        probs = segment_softmax(np.array([42.0]), np.array([0, 1]))
        assert probs[0] == pytest.approx(1.0)


class TestSegmentLogsumexp:
    def test_matches_direct_computation(self):
        scores = np.array([1.0, 2.0, 3.0, -1.0])
        starts = np.array([0, 3, 4])
        result = segment_logsumexp(scores, starts)
        expected0 = np.log(np.exp(scores[:3]).sum())
        assert result[0] == pytest.approx(expected0)
        assert result[1] == pytest.approx(-1.0)

    def test_stable_for_large_values(self):
        result = segment_logsumexp(np.array([1e4, 1e4]), np.array([0, 2]))
        assert result[0] == pytest.approx(1e4 + np.log(2))


class TestHelpers:
    def test_segment_sizes(self):
        assert list(segment_sizes(np.array([0, 2, 5]))) == [2, 3]

    def test_plain_softmax(self):
        p = softmax(np.array([0.0, np.log(3.0)]))
        assert p == pytest.approx([0.25, 0.75])
