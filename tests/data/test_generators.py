"""Tests for the four evaluation-dataset generators."""

import pytest

from repro.data import (
    generate_flights,
    generate_food,
    generate_hospital,
    generate_physicians,
    scaled,
)
from repro.detect.violations import ViolationDetector

SMALL = {
    "hospital": lambda: generate_hospital(num_rows=120),
    "flights": lambda: generate_flights(num_flights=6),
    "food": lambda: generate_food(num_rows=150),
    "physicians": lambda: generate_physicians(num_rows=200),
}


@pytest.fixture(params=sorted(SMALL), ids=sorted(SMALL))
def generated(request):
    return SMALL[request.param]()


class TestCommonInvariants:
    def test_ground_truth_consistent(self, generated):
        generated.verify_ground_truth()

    def test_clean_dataset_satisfies_constraints(self, generated):
        detection = ViolationDetector(generated.constraints).detect(
            generated.clean)
        assert len(detection.hypergraph) == 0

    def test_dirty_dataset_has_violations(self, generated):
        detection = ViolationDetector(generated.constraints).detect(
            generated.dirty)
        assert len(detection.hypergraph) > 0

    def test_errors_exist_and_tracked(self, generated):
        assert generated.num_errors > 0
        assert 0 < generated.error_rate < 0.6

    def test_table2_row_fields(self, generated):
        row = generated.table2_row()
        assert row["tuples"] == generated.dirty.num_tuples
        assert row["ics"] == len(generated.constraints)
        assert row["violations"] > 0

    def test_deterministic_given_seed(self, generated):
        again = SMALL[generated.name]()
        assert again.dirty == generated.dirty
        assert again.error_cells == generated.error_cells


class TestHospital:
    def test_shape(self):
        g = generate_hospital(num_rows=120)
        assert g.dirty.num_tuples == 120
        assert len(g.dirty.schema) == 19
        assert len(g.constraints) == 9

    def test_errors_are_x_typos(self):
        g = generate_hospital(num_rows=120)
        for cell in sorted(g.error_cells)[:20]:
            dirty_v = g.dirty.cell_value(cell)
            clean_v = g.clean.cell_value(cell)
            assert len(dirty_v) == len(clean_v)
            assert "x" in dirty_v or "y" in dirty_v

    def test_error_rate_about_five_percent(self):
        g = generate_hospital(num_rows=500, error_rate=0.05)
        constrained_cells = 500 * 9  # the 9 corruptible attributes
        assert 0.02 < g.num_errors / constrained_cells < 0.09

    def test_has_external_dictionary(self):
        g = generate_hospital(num_rows=120)
        assert g.dictionaries and g.matching_dependencies


class TestFlights:
    def test_shape_matches_paper_structure(self):
        g = generate_flights(num_flights=6, num_sources=10)
        assert g.dirty.num_tuples == 60
        assert len(g.dirty.schema) == 6
        assert len(g.constraints) == 4

    def test_source_attribute_role(self):
        g = generate_flights(num_flights=4)
        assert g.dirty.schema.with_role("source") == ["Source"]
        assert g.source_entity_attributes == ("Flight",)

    def test_majority_of_cells_noisy(self):
        g = generate_flights(num_flights=10)
        detection = ViolationDetector(g.constraints).detect(g.dirty)
        assert len(detection.noisy_cells) > g.dirty.num_cells * 0.5

    def test_reliable_sources_err_rarely(self):
        g = generate_flights(num_flights=30, reliable_sources=4)
        from collections import Counter
        errors_by_source = Counter()
        for cell in g.error_cells:
            errors_by_source[g.dirty.value(cell.tid, "Source")] += 1
        reliable = [f"src_{s:02d}" for s in range(4)]
        rel_errors = sum(errors_by_source.get(s, 0) for s in reliable)
        unrel_errors = sum(n for s, n in errors_by_source.items()
                           if s not in reliable)
        assert rel_errors < unrel_errors / 5


class TestFood:
    def test_shape(self):
        g = generate_food(num_rows=150)
        assert g.dirty.num_tuples == 150
        assert len(g.dirty.schema) == 17
        assert len(g.constraints) == 7

    def test_inspection_id_not_repairable(self):
        g = generate_food(num_rows=150)
        assert "InspectionID" not in g.dirty.schema.data_attributes

    def test_contains_duplicate_inspections(self):
        g = generate_food(num_rows=300, duplicate_rate=0.3)
        seen = {}
        duplicates = 0
        for tid in g.clean.tuple_ids:
            key = (g.clean.value(tid, "Address"),
                   g.clean.value(tid, "InspectionDate"))
            duplicates += key in seen
            seen[key] = tid
        assert duplicates > 10


class TestPhysicians:
    def test_shape(self):
        g = generate_physicians(num_rows=200)
        assert g.dirty.num_tuples == 200
        assert len(g.dirty.schema) == 18
        assert len(g.constraints) == 9

    def test_systematic_errors_share_wrong_values(self):
        g = generate_physicians(num_rows=400)
        from collections import Counter
        wrong_cities = Counter(
            g.dirty.cell_value(c) for c in g.error_cells
            if c.attribute == "City")
        # Systematic: the same misspelling appears in many rows.
        assert wrong_cities and wrong_cities.most_common(1)[0][1] >= 3

    def test_zip_plus4_vs_plain_dictionary(self):
        g = generate_physicians(num_rows=200)
        zips = {g.dirty.value(t, "Zip") for t in g.dirty.tuple_ids}
        assert all("-" in z for z in zips)
        dict_zips = {e["Ext_Zip"] for e in g.dictionaries[0].entries}
        assert all("-" not in z for z in dict_zips)

    def test_recommended_tau(self):
        assert generate_physicians(num_rows=200).recommended_tau == 0.7


class TestScaling:
    def test_scaled_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert scaled(100) == 200
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert scaled(100) == 10

    def test_scaled_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(100, minimum=5) == 5

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError, match="number"):
            scaled(100)
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError, match="positive"):
            scaled(100)
