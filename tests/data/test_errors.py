"""Tests for the error-injection library."""

import numpy as np
import pytest

from repro.data.errors import ErrorInjector
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Schema


@pytest.fixture
def injector():
    return ErrorInjector(np.random.default_rng(0))


@pytest.fixture
def dataset():
    schema = Schema(["A", "B"])
    return Dataset(schema, [["alpha", "beta"]] * 50)


class TestTypo:
    def test_x_style_changes_one_char(self, injector):
        out = injector.typo("chicago", style="x")
        assert len(out) == len("chicago")
        assert sum(a != b for a, b in zip(out, "chicago")) == 1
        assert "x" in out or "y" in out

    def test_x_on_x_becomes_y(self):
        injector = ErrorInjector(np.random.default_rng(0))
        assert injector.typo("x", style="x") == "y"

    def test_random_style_differs(self, injector):
        out = injector.typo("chicago", style="random")
        assert out != "chicago"
        assert len(out) == len("chicago")

    def test_empty_string_unchanged(self, injector):
        assert injector.typo("", style="x") == ""


class TestInjectTypos:
    def test_tracks_changed_cells_exactly(self, injector, dataset):
        clean = dataset.copy()
        changed = injector.inject_typos(dataset, ["A"], rate=0.3)
        assert changed == set(dataset.diff(clean))
        assert all(c.attribute == "A" for c in changed)

    def test_rate_zero_changes_nothing(self, injector, dataset):
        assert injector.inject_typos(dataset, ["A", "B"], rate=0.0) == set()

    def test_rate_one_changes_everything(self, injector, dataset):
        changed = injector.inject_typos(dataset, ["A"], rate=1.0)
        assert len(changed) == 50

    def test_nulls_skipped(self, injector):
        ds = Dataset(Schema(["A"]), [[None]] * 10)
        assert injector.inject_typos(ds, ["A"], rate=1.0) == set()


class TestDomainSwaps:
    def test_swaps_use_active_domain(self, injector):
        ds = Dataset(Schema(["A"]), [["x"]] * 10 + [["y"]] * 10)
        clean = ds.copy()
        changed = injector.inject_domain_swaps(ds, ["A"], rate=0.5)
        for cell in changed:
            assert ds.cell_value(cell) in ("x", "y")
            assert ds.cell_value(cell) != clean.cell_value(cell)

    def test_single_value_attribute_unchanged(self, injector, dataset):
        changed = injector.inject_domain_swaps(dataset, ["A"], rate=1.0)
        assert changed == set()  # only one distinct value: nothing to swap


class TestSystematic:
    def test_mapping_applied(self, injector):
        ds = Dataset(Schema(["City"]),
                     [["Sacramento"]] * 20 + [["Boston"]] * 5)
        changed = injector.inject_systematic(
            ds, "City", {"Sacramento": "Scaramento"}, fraction=1.0)
        assert len(changed) == 20
        assert ds.value(0, "City") == "Scaramento"
        assert ds.value(20, "City") == "Boston"

    def test_fraction_partial(self, injector):
        ds = Dataset(Schema(["City"]), [["Sacramento"]] * 100)
        changed = injector.inject_systematic(
            ds, "City", {"Sacramento": "Scaramento"}, fraction=0.3)
        assert 10 <= len(changed) <= 55  # ~30 with randomness


class TestGroupConflicts:
    def test_two_distinct_wrong_values(self, injector):
        ds = Dataset(Schema(["A"]), [[f"v{i % 5}"] for i in range(20)])
        clean = ds.copy()
        groups = [[0, 1, 2, 3, 4]]
        changed = injector.inject_group_conflicts(ds, groups, "A",
                                                  group_rate=1.0, clean=clean)
        assert len(changed) == 2
        values = {ds.cell_value(c) for c in changed}
        assert len(values) == 2
        for cell in changed:
            assert ds.cell_value(cell) != clean.cell_value(cell)

    def test_small_groups_skipped(self, injector):
        ds = Dataset(Schema(["A"]), [["x"], ["y"], ["z"]])
        changed = injector.inject_group_conflicts(ds, [[0, 1]], "A",
                                                  group_rate=1.0)
        assert changed == set()


class TestNullsAndMisspell:
    def test_inject_nulls(self, injector, dataset):
        changed = injector.inject_nulls(dataset, ["B"], rate=1.0)
        assert len(changed) == 50
        assert dataset.value(0, "B") is None

    def test_misspell_transposes(self, injector):
        out = injector.misspell("Sacramento")
        assert out != "Sacramento"
        assert sorted(out) == sorted("Sacramento")  # transposition keeps chars

    def test_misspell_short_strings(self, injector):
        assert injector.misspell("ab") != "ab"
