"""Tests for GeneratedDataset invariants and validation."""

import pytest

from repro.constraints.fd import parse_fd
from repro.data.base import GeneratedDataset
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Schema


@pytest.fixture
def pieces():
    schema = Schema(["Zip", "City"])
    clean = Dataset(schema, [["1", "A"], ["1", "A"]])
    dirty = clean.copy()
    dirty.set_value(1, "City", "B")
    dcs = parse_fd("Zip -> City").to_denial_constraints()
    return schema, clean, dirty, dcs


class TestValidation:
    def test_schema_mismatch_rejected(self, pieces):
        schema, clean, dirty, dcs = pieces
        other = Dataset(Schema(["X", "Y"]), [["1", "A"], ["1", "A"]])
        with pytest.raises(ValueError, match="share a schema"):
            GeneratedDataset("d", dirty, other, dcs, set())

    def test_row_count_mismatch_rejected(self, pieces):
        schema, clean, dirty, dcs = pieces
        short = Dataset(schema, [["1", "A"]])
        with pytest.raises(ValueError, match="align"):
            GeneratedDataset("d", dirty, short, dcs, set())

    def test_verify_ground_truth_catches_drift(self, pieces):
        schema, clean, dirty, dcs = pieces
        g = GeneratedDataset("d", dirty, clean, dcs, set())  # wrong: 1 diff
        with pytest.raises(AssertionError, match="mismatch"):
            g.verify_ground_truth()

    def test_verify_ground_truth_passes_when_consistent(self, pieces):
        schema, clean, dirty, dcs = pieces
        g = GeneratedDataset("d", dirty, clean, dcs, {Cell(1, "City")})
        g.verify_ground_truth()


class TestDerived:
    def test_error_rate(self, pieces):
        schema, clean, dirty, dcs = pieces
        g = GeneratedDataset("d", dirty, clean, dcs, {Cell(1, "City")})
        assert g.num_errors == 1
        assert g.error_rate == pytest.approx(1 / 4)

    def test_table2_row_counts_violations(self, pieces):
        schema, clean, dirty, dcs = pieces
        g = GeneratedDataset("d", dirty, clean, dcs, {Cell(1, "City")})
        row = g.table2_row()
        assert row == {"tuples": 2, "attributes": 2, "violations": 1,
                       "noisy_cells": 4, "ics": 1}
