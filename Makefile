# Developer entry points; CI runs the same commands (see .github/workflows).

PYTHON ?= python

.PHONY: test lint lint-deep bench bench-ci clean

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check .
	xargs -a .ruff-format-paths ruff format --check

# The repo-specific invariant linter (determinism, hot-path purity,
# parallel safety, telemetry/config drift) gated by the committed
# zero-findings baseline.  See docs/static_analysis.md.
lint-deep:
	PYTHONPATH=src $(PYTHON) -m repro lint

# Run every benchmarks/bench_*.py and collect BENCH_*.json results.
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench

# The CI bench job: the regression-gated performance benchmarks plus
# the baseline comparison.
bench-ci:
	$(PYTHON) benchmarks/bench_engine_grounding.py
	$(PYTHON) benchmarks/bench_factor_grounding.py
	$(PYTHON) benchmarks/bench_factor_tables.py
	$(PYTHON) benchmarks/bench_featurization.py
	$(PYTHON) benchmarks/bench_domain_pruning.py
	$(PYTHON) benchmarks/bench_pipeline.py
	$(PYTHON) benchmarks/bench_serving.py
	$(PYTHON) benchmarks/check_regression.py

clean:
	rm -rf .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
