"""Config/registry-drift checker: docs and registry snapshots stay live.

Two inventories here rot independently of the telemetry ones:

* the :class:`HoloCleanConfig` dataclass grows fields PR by PR, and
  ``docs/configuration.md`` must list **every** field (and no phantom
  ones) — the docs table is the only place defaults and semantics are
  explained to users;
* the engine backend registry is populated by ``register_backend``
  calls at import time, and both the docs and any module-level
  ``BACKEND_NAMES``-style snapshot must agree with the **live**
  registry — a snapshot taken before a later ``register_backend`` call
  silently hides backends from ``__all__`` consumers.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.base import (
    AnalysisContext,
    Checker,
    Finding,
    call_name,
    literal_str,
)

CONFIG_REL = "src/repro/core/config.py"
DOC_REL = "docs/configuration.md"

_BACKTICK = re.compile(r"`([^`]+)`")


def config_fields(ctx: AnalysisContext) -> dict[str, int]:
    """``field name -> line`` of every :class:`HoloCleanConfig` field."""
    module = ctx.module(CONFIG_REL)
    if module is None:
        return {}
    fields: dict[str, int] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or node.name != "HoloCleanConfig":
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.setdefault(stmt.target.id, stmt.lineno)
    return fields


def registered_backends(ctx: AnalysisContext) -> dict[str, tuple[str, int]]:
    """Backend names registered by literal ``register_backend`` calls."""
    backends: dict[str, tuple[str, int]] = {}
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node).rpartition(".")[2] != "register_backend":
                continue
            if not node.args:
                continue
            name = literal_str(node.args[0])
            if name is not None:
                backends.setdefault(name, (module.rel, node.lineno))
    return backends


def _documented_tokens(text: str) -> set[str]:
    """Backticked identifiers in the first cell of every table row."""
    tokens: set[str] = set()
    for line in text.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        cells = line.strip().strip("|").split("|")
        if cells:
            tokens.update(
                token
                for token in _BACKTICK.findall(cells[0])
                if "<" not in token and " " not in token
            )
    return tokens


class ConfigDriftChecker(Checker):
    """``HoloCleanConfig`` and the backend registry vs their docs."""

    name = "config"
    rules = (
        "config-undocumented",
        "config-unknown",
        "backend-undocumented",
        "backend-snapshot",
    )
    doc_rel = DOC_REL

    def check(self, ctx: AnalysisContext) -> list[Finding]:
        text = ctx.doc_text(self.doc_rel)
        if text is None:
            ctx.errors.append(f"config: cannot read {self.doc_rel}")
            return []
        findings: list[Finding] = []
        documented = _documented_tokens(text)
        fields = config_fields(ctx)

        for name in sorted(set(fields) - documented):
            findings.append(
                self.finding(
                    "config-undocumented",
                    CONFIG_REL,
                    fields[name],
                    f"HoloCleanConfig field '{name}' is missing from "
                    f"{self.doc_rel}",
                )
            )
        for name in sorted(documented - set(fields)):
            # The doc also lists backend names; those are not phantom
            # config fields.
            if name in registered_backends(ctx):
                continue
            findings.append(
                self.finding(
                    "config-unknown",
                    self.doc_rel,
                    ctx.doc_line(self.doc_rel, f"`{name}`"),
                    f"documented name '{name}' is neither a HoloCleanConfig "
                    "field nor a registered backend",
                )
            )

        doc_text_full = text
        for name, (rel, line) in sorted(registered_backends(ctx).items()):
            if f"`{name}`" not in doc_text_full:
                findings.append(
                    self.finding(
                        "backend-undocumented",
                        rel,
                        line,
                        f"backend '{name}' is registered here but never "
                        f"mentioned in {self.doc_rel}",
                    )
                )

        findings.extend(self._check_snapshot(ctx))
        return findings

    # ------------------------------------------------------------------
    def _check_snapshot(self, ctx: AnalysisContext) -> list[Finding]:
        """Compare the exported ``BACKEND_NAMES`` to the live registry.

        This is the one dynamic check in the suite: a static pass cannot
        see registration order across imports, so we import the package
        and compare.  Skipped silently when the engine's dependencies
        (NumPy) are absent.
        """
        try:
            import repro.engine as engine
            from repro.engine.backend import backend_names
        except ImportError:
            return []
        snapshot = tuple(getattr(engine, "BACKEND_NAMES", ()))
        live = tuple(backend_names())
        if snapshot == live:
            return []
        return [
            self.finding(
                "backend-snapshot",
                "src/repro/engine/backend.py",
                0,
                f"BACKEND_NAMES snapshot {snapshot!r} disagrees with the "
                f"live registry {live!r}; export a live view instead of a "
                "module-load-time copy",
            ),
        ]
