"""``repro lint`` — run the invariant linter from the command line.

Exit codes follow the issue contract: ``0`` clean (no findings beyond
the committed baseline), ``1`` findings, ``2`` configuration error
(unparsable source, unreadable docs, missing baseline).  ``--json``
emits a deterministic, diffable report for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.runner import (
    BASELINE_NAME,
    run_lint,
    write_baseline,
)


def _default_root() -> Path:
    root = Path(__file__).resolve().parents[3]
    return root


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant linter for the repro codebase",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: inferred from the package location)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a JSON report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; fail on any finding at all",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = args.root if args.root is not None else _default_root()
    if not (root / "src" / "repro").is_dir():
        print(f"repro lint: {root} has no src/repro tree", file=sys.stderr)
        return 2

    baseline_path: Path | None
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = args.baseline
    else:
        baseline_path = root / BASELINE_NAME
    if args.write_baseline:
        result = run_lint(root, baseline_path=None)
        if result.errors:
            for error in result.errors:
                print(f"repro lint: {error}", file=sys.stderr)
            return 2
        target = baseline_path if baseline_path is not None else root / BASELINE_NAME
        write_baseline(target, result.findings)
        print(f"wrote baseline with {len(result.findings)} finding(s) to {target}")
        return 0

    result = run_lint(root, baseline_path=baseline_path)

    if args.json is not None:
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload)

    for error in result.errors:
        print(f"repro lint: {error}", file=sys.stderr)
    if result.errors:
        return 2

    shown = result.new_findings if result.baseline_used else result.findings
    for finding in shown:
        print(finding.render())
    known = len(result.findings) - len(shown)
    summary = (
        f"{len(shown)} new finding(s), {known} baselined, "
        f"{result.suppressed} pragma-suppressed"
        if result.baseline_used
        else f"{len(shown)} finding(s), {result.suppressed} pragma-suppressed"
    )
    if result.baseline_used and result.fixed_count:
        summary += (
            f"; {result.fixed_count} baselined finding(s) fixed — "
            "re-run with --write-baseline to ratchet down"
        )
    print(summary)
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
