"""Core types of the repo-specific static-analysis framework.

The invariants this repository stakes its value on — byte-identical
vectorized/sharded grounding, fork-safe parallel tasks, a telemetry key
inventory that matches the source — are invisible to generic linters.
:mod:`repro.analysis` parses the codebase with :mod:`ast` and runs a
pluggable checker suite over it; this module holds the shared pieces:

* :class:`Finding` — one violation (file, line, checker id, rule id,
  message), with a line-free identity key for baseline comparison;
* :class:`Pragma` / pragma parsing — ``# repro: allow-<rule> <reason>``
  comments suppress one rule on the same line or the line below, and
  every pragma must carry a reason (audited suppressions only);
* :class:`SourceModule` — one parsed source file (text, lines, AST,
  pragmas, and a lazily built child→parent node map);
* :class:`AnalysisContext` — the repo snapshot handed to checkers;
* :class:`Checker` — the plug-in protocol (`name`, `rules`, `check`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: ``# repro: allow-<rule> <reason>`` — the suppression pragma.  The rule
#: id matches :attr:`Finding.rule`; the reason is required (a pragma
#: without one is itself reported, as ``pragma.missing-reason``).
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow-([a-z0-9-]+)(?:\s+(\S.*?))?\s*$")


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a specific source location."""

    checker: str
    rule: str
    path: str
    line: int
    message: str

    @property
    def rule_id(self) -> str:
        return f"{self.checker}.{self.rule}"

    def key(self) -> tuple[str, str, str, str]:
        """Baseline identity: line numbers drift, the violation does not."""
        return (self.checker, self.rule, self.path, self.message)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.checker, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            checker=payload["checker"],
            rule=payload["rule"],
            path=payload["path"],
            line=int(payload.get("line", 0)),
            message=payload["message"],
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


@dataclass
class Pragma:
    """One ``# repro: allow-<rule>`` comment found in a source file."""

    rule: str
    reason: str
    line: int
    #: Whether the line holds only the pragma comment (then it also
    #: covers the line below, like a ``noqa`` on its own line).
    standalone: bool
    used: bool = False


def parse_pragmas(text: str) -> dict[int, Pragma]:
    """Extract suppression pragmas, keyed by 1-based line number.

    Tokenize-based so only real ``#`` comments count — pragma-shaped
    text inside string literals or docstrings is never a suppression.
    """
    pragmas: dict[int, Pragma] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        number, column = token.start
        rule, reason = match.group(1), match.group(2) or ""
        standalone = token.line[:column].strip() == ""
        pragmas[number] = Pragma(
            rule=rule, reason=reason, line=number, standalone=standalone
        )
    return pragmas


@dataclass
class SourceModule:
    """One parsed Python source file of the repository."""

    path: Path
    rel: str
    text: str
    lines: list[str]
    tree: ast.Module
    pragmas: dict[int, Pragma] = field(default_factory=dict)
    _parents: dict[int, ast.AST] | None = None

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceModule":
        text = path.read_text()
        lines = text.splitlines()
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            rel=path.relative_to(root).as_posix(),
            text=text,
            lines=lines,
            tree=tree,
            pragmas=parse_pragmas(text),
        )

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (computed lazily, once)."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def enclosing(self, node: ast.AST, kinds: tuple) -> ast.AST | None:
        """The nearest ancestor of ``node`` of one of ``kinds``."""
        current = self.parent(node)
        while current is not None and not isinstance(current, kinds):
            current = self.parent(current)
        return current

    # ------------------------------------------------------------------
    def pragma_for(self, rule: str, line: int) -> Pragma | None:
        """The pragma suppressing ``rule`` at ``line``, if any.

        A pragma suppresses findings of its rule on its own line; a
        standalone pragma (comment-only line) also covers the line
        directly below it.
        """
        own = self.pragmas.get(line)
        if own is not None and own.rule == rule:
            return own
        above = self.pragmas.get(line - 1)
        if above is not None and above.rule == rule and above.standalone:
            return above
        return None


class AnalysisContext:
    """The repository snapshot a lint run analyses.

    ``modules`` holds every parsed file under ``src/repro``; ``errors``
    collects configuration problems (unreadable files, syntax errors)
    that abort the run with exit code 2 rather than producing findings.
    """

    def __init__(self, root: Path, modules: list[SourceModule]):
        self.root = Path(root)
        self.modules = modules
        self.errors: list[str] = []
        self._by_rel = {module.rel: module for module in modules}
        self._docs: dict[str, str | None] = {}

    def module(self, rel: str) -> SourceModule | None:
        return self._by_rel.get(rel)

    def doc_text(self, rel: str) -> str | None:
        """The text of a docs/ file (cached), ``None`` when missing."""
        if rel not in self._docs:
            path = self.root / rel
            try:
                self._docs[rel] = path.read_text()
            except OSError:
                self._docs[rel] = None
        return self._docs[rel]

    def doc_line(self, rel: str, needle: str) -> int:
        """1-based line of the first occurrence of ``needle`` in a doc."""
        text = self.doc_text(rel)
        if text is None:
            return 0
        for number, line in enumerate(text.splitlines(), start=1):
            if needle in line:
                return number
        return 0


class Checker:
    """Base class for one invariant checker.

    Subclasses set ``name`` (the checker id), ``rules`` (every rule id
    they may emit — used to validate pragmas), and implement
    :meth:`check`.  Checkers report raw findings; pragma suppression and
    baseline comparison are the runner's job.
    """

    name = "base"
    rules: tuple[str, ...] = ()

    def check(self, ctx: AnalysisContext) -> list[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(self, rule: str, module_or_rel, line: int, message: str) -> Finding:
        if rule not in self.rules:
            raise ValueError(f"checker {self.name!r} has no rule {rule!r}")
        rel = module_or_rel if isinstance(module_or_rel, str) else module_or_rel.rel
        return Finding(
            checker=self.name, rule=rule, path=rel, line=line, message=message
        )


# ---------------------------------------------------------------------------
# Small AST helpers shared by several checkers
# ---------------------------------------------------------------------------
def call_name(node: ast.AST) -> str:
    """Dotted text of a call's function, ``""`` for exotic expressions."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def literal_str(node: ast.AST) -> str | None:
    """The value of a string-constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def dict_literal_keys(node: ast.AST) -> list[tuple[str, int]]:
    """``(key, line)`` for every string-literal key of a dict display."""
    keys: list[tuple[str, int]] = []
    if isinstance(node, ast.Dict):
        for key in node.keys:
            value = literal_str(key)
            if value is not None:
                keys.append((value, key.lineno))
    return keys
