"""Hot-path purity checker: no per-row Python loops in vectorized modules.

The modules declared vectorized ground set-at-a-time: candidate grids,
broadcast predicate evaluation, bincount joins.  A Python ``for`` loop
that walks rows (``range(len(...))``, ``.shape`` extents, ``.tolist()``
materialisations) re-introduces the tuple-at-a-time cost the engine
exists to remove — ~100ns of interpreter dispatch per row against ~1ns
of SIMD per element, a 10-100x regression that no equivalence test
notices because the output is still byte-identical.

Audited exceptions (the naive-oracle paths, per-*group* walks over a
handful of buckets) carry a ``# repro: allow-loop <reason>`` pragma;
the reason is mandatory, so every surviving loop documents why it is
not a hot-path regression.
"""

from __future__ import annotations

import ast

from repro.analysis.base import AnalysisContext, Checker, Finding, call_name

#: Modules declared fully vectorized: per-row Python loops here are
#: hot-path regressions unless pragma-audited.
VECTORIZED_MODULES = frozenset(
    {
        "src/repro/engine/ops.py",
        "src/repro/core/partition.py",
        "src/repro/core/factor_tables.py",
        "src/repro/core/vector_featurize.py",
        "src/repro/core/vector_domain.py",
    }
)

#: Attribute reads that signal an array-extent iteration space.
_EXTENT_ATTRS = {"shape", "num_rows", "num_tuples", "size"}


def _mentions_extent(node: ast.AST) -> bool:
    """Whether a subtree reads ``len(...)`` or an array-extent attribute."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and call_name(sub) == "len":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _EXTENT_ATTRS:
            return True
    return False


def _is_row_iterable(node: ast.AST) -> bool:
    """Whether an iterable expression walks array data row by row."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    if name == "range":
        return any(_mentions_extent(arg) for arg in node.args)
    if name.endswith(".tolist") or (
        isinstance(node.func, ast.Attribute) and node.func.attr == "tolist"
    ):
        return True
    if name in ("enumerate", "zip", "reversed"):
        return any(_is_row_iterable(arg) for arg in node.args)
    return False


class PurityChecker(Checker):
    """Per-row Python loops over arrays in modules declared vectorized."""

    name = "purity"
    rules = ("loop",)
    modules = VECTORIZED_MODULES

    def check(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for module in ctx.modules:
            if module.rel not in self.modules:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.For, ast.comprehension)):
                    continue
                if not _is_row_iterable(node.iter):
                    continue
                line = getattr(node, "lineno", node.iter.lineno)
                findings.append(
                    self.finding(
                        "loop",
                        module,
                        line,
                        "per-row Python loop over array data in a module "
                        "declared vectorized; vectorize it or add "
                        "'# repro: allow-loop <reason>' after auditing",
                    )
                )
        return findings
