"""Determinism checker: emission-order-critical modules stay reproducible.

The engine's whole contract is that vectorized and sharded grounding is
**byte-identical** to the naive oracles — factor graphs, pair streams,
and feature matrices are only reproducible because every emission order
is canonical.  This checker flags constructs that silently break that
inside the emission-order-critical modules:

* ``set-iteration`` — iterating a set/frozenset (hash order; wrap in
  ``sorted(...)`` or iterate a list/dict instead);
* ``unseeded-random`` — the module-level ``random`` / ``np.random``
  global APIs, and unseeded ``random.Random()`` /
  ``np.random.default_rng()`` constructions (thread a seeded generator);
* ``id-order`` — ``id(...)`` inside a ``sorted`` / ``min`` / ``max`` /
  ``.sort`` argument (CPython address order varies run to run);
* ``unsorted-listdir`` — ``os.listdir`` / ``os.scandir`` / ``glob`` /
  ``Path.iterdir`` / ``Path.glob`` results used without ``sorted(...)``
  (filesystem order is arbitrary);
* ``wall-clock`` — ``time.time`` / ``datetime.now`` and friends (a
  wall-clock read feeding emission logic makes runs unrepeatable).
"""

from __future__ import annotations

import ast

from repro.analysis.base import AnalysisContext, Checker, Finding, call_name

#: The modules whose emission order downstream artifacts depend on.
CRITICAL_MODULES = frozenset(
    {
        "src/repro/engine/ops.py",
        "src/repro/engine/parallel.py",
        "src/repro/core/partition.py",
        "src/repro/core/factor_tables.py",
        "src/repro/core/vector_featurize.py",
    }
)

#: Seeded constructors of the ``random`` module (fine to call with args).
_RANDOM_CONSTRUCTORS = {"Random", "SystemRandom", "getstate", "setstate"}

#: Seeded constructors of ``numpy.random``.
_NP_RANDOM_CONSTRUCTORS = {"default_rng", "RandomState", "Generator", "SeedSequence"}

_LISTDIR_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_LISTDIR_METHODS = {"iterdir", "glob", "rglob"}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

_ORDERING_CALLS = {"sorted", "min", "max"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return call_name(node) in ("set", "frozenset")


class DeterminismChecker(Checker):
    """Nondeterminism smells in the emission-order-critical modules."""

    name = "determinism"
    rules = (
        "set-iteration",
        "unseeded-random",
        "id-order",
        "unsorted-listdir",
        "wall-clock",
    )
    modules = CRITICAL_MODULES

    def check(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for module in ctx.modules:
            if module.rel not in self.modules:
                continue
            for node in ast.walk(module.tree):
                findings.extend(self._check_node(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_node(self, module, node: ast.AST) -> list[Finding]:
        out: list[Finding] = []
        if isinstance(node, (ast.For, ast.comprehension)):
            out.extend(self._check_iteration(module, node))
        if isinstance(node, ast.Call):
            out.extend(self._check_call(module, node))
        return out

    def _check_iteration(self, module, node) -> list[Finding]:
        iterable = node.iter
        line = getattr(node, "lineno", iterable.lineno)
        target = iterable
        if isinstance(iterable, ast.Call) and call_name(iterable) in (
            "enumerate",
            "reversed",
            "list",
            "tuple",
        ):
            target = iterable.args[0] if iterable.args else iterable
        if _is_set_expr(target):
            return [
                self.finding(
                    "set-iteration",
                    module,
                    line,
                    "iteration over a set has hash order; sort it or "
                    "iterate an ordered container",
                ),
            ]
        return []

    def _check_call(self, module, node: ast.Call) -> list[Finding]:
        name = call_name(node)
        out: list[Finding] = []
        head, _, tail = name.rpartition(".")

        # unseeded-random -------------------------------------------------
        if head == "random" and tail not in _RANDOM_CONSTRUCTORS:
            out.append(
                self.finding(
                    "unseeded-random",
                    module,
                    node.lineno,
                    f"global random API random.{tail}() is unseeded state; "
                    "thread a seeded random.Random instead",
                )
            )
        elif head.endswith("random") and head in ("np.random", "numpy.random"):
            if tail not in _NP_RANDOM_CONSTRUCTORS:
                out.append(
                    self.finding(
                        "unseeded-random",
                        module,
                        node.lineno,
                        f"global NumPy random API {name}() is unseeded "
                        "state; thread a seeded Generator instead",
                    )
                )
        seeded_constructors = (
            "random.Random",
            "np.random.default_rng",
            "numpy.random.default_rng",
        )
        if name in seeded_constructors and not node.args and not node.keywords:
            out.append(
                self.finding(
                    "unseeded-random",
                    module,
                    node.lineno,
                    f"{name}() without a seed draws entropy from the OS; "
                    "pass an explicit seed",
                )
            )

        # id-order --------------------------------------------------------
        if name in _ORDERING_CALLS or (tail == "sort" and head):
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    out.append(
                        self.finding(
                            "id-order",
                            module,
                            node.lineno,
                            "ordering by id() depends on CPython allocation "
                            "addresses, which vary run to run",
                        )
                    )
                    break

        # unsorted-listdir --------------------------------------------------
        if name in _LISTDIR_CALLS or (head and tail in _LISTDIR_METHODS):
            parent = module.parent(node)
            if not (isinstance(parent, ast.Call) and call_name(parent) == "sorted"):
                out.append(
                    self.finding(
                        "unsorted-listdir",
                        module,
                        node.lineno,
                        f"{name or tail}() yields filesystem order; wrap the "
                        "call in sorted(...)",
                    )
                )

        # wall-clock --------------------------------------------------------
        if name in _WALL_CLOCK or (
            tail in ("now", "utcnow", "today") and head.endswith("datetime")
        ):
            out.append(
                self.finding(
                    "wall-clock",
                    module,
                    node.lineno,
                    f"wall-clock read {name}() in an emission-order-critical "
                    "module makes runs unrepeatable",
                )
            )
        return out
