"""Lint runner: discovery, pragma suppression, and the baseline ratchet.

The runner turns the checker suite into a CI gate:

1. discover and parse every ``src/repro/**/*.py`` file (sorted, so runs
   are deterministic);
2. run each registered checker and apply pragma suppression — a
   ``# repro: allow-<rule> <reason>`` on (or standalone above) the
   flagged line swallows the finding and marks the pragma used;
3. enforce pragma hygiene: a pragma without a reason and a pragma that
   suppressed nothing are themselves findings (``pragma.missing-reason``
   / ``pragma.unused``), so suppressions cannot rot in place;
4. compare against the committed baseline
   (``.repro-lint-baseline.json``) by line-free identity — only **new**
   violations fail CI, and fixing one ratchets the baseline down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import AnalysisContext, Checker, Finding, SourceModule
from repro.analysis.config_drift import ConfigDriftChecker
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.parallel_safety import ParallelSafetyChecker
from repro.analysis.purity import PurityChecker
from repro.analysis.telemetry import TelemetryChecker

BASELINE_NAME = ".repro-lint-baseline.json"

#: Rules pragmas may never silence: suppression hygiene itself.
_UNSUPPRESSABLE = ("pragma",)


def default_checkers() -> list[Checker]:
    """The full checker suite, in a fixed, deterministic order."""
    return [
        DeterminismChecker(),
        PurityChecker(),
        ParallelSafetyChecker(),
        TelemetryChecker(),
        ConfigDriftChecker(),
    ]


def discover_modules(root: Path, errors: list[str]) -> list[SourceModule]:
    """Parse every Python file under ``src/repro``, sorted by path."""
    modules: list[SourceModule] = []
    source_root = root / "src" / "repro"
    for path in sorted(source_root.rglob("*.py")):
        try:
            modules.append(SourceModule.load(path, root))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"cannot parse {path}: {exc}")
    return modules


@dataclass
class LintResult:
    """Outcome of one lint run, ready for rendering or JSON dumping."""

    findings: list[Finding]
    suppressed: int
    errors: list[str]
    new_findings: list[Finding] = field(default_factory=list)
    fixed_count: int = 0
    baseline_used: bool = False

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        failing = self.new_findings if self.baseline_used else self.findings
        return 1 if failing else 0

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "errors": list(self.errors),
            "new": [f.to_dict() for f in self.new_findings],
            "fixed": self.fixed_count,
        }


def run_checkers(
    ctx: AnalysisContext, checkers: list[Checker] | None = None
) -> tuple[list[Finding], int]:
    """Run the suite over a context; returns (findings, suppressed count).

    Pragma suppression and pragma-hygiene findings are applied here so
    fixture tests exercise the exact production path.
    """
    if checkers is None:
        checkers = default_checkers()
    findings: list[Finding] = []
    suppressed = 0
    for checker in checkers:
        for finding in checker.check(ctx):
            module = ctx.module(finding.path)
            if module is not None and not finding.checker.startswith(_UNSUPPRESSABLE):
                pragma = module.pragma_for(finding.rule, finding.line)
                if pragma is not None:
                    pragma.used = True
                    suppressed += 1
                    continue
            findings.append(finding)
    findings.extend(_pragma_hygiene(ctx, checkers))
    findings.sort(key=Finding.sort_key)
    return findings, suppressed


def _pragma_hygiene(ctx: AnalysisContext, checkers: list[Checker]) -> list[Finding]:
    known_rules = {rule for checker in checkers for rule in checker.rules}
    out: list[Finding] = []
    for module in ctx.modules:
        for pragma in module.pragmas.values():
            if not pragma.reason:
                out.append(
                    Finding(
                        checker="pragma",
                        rule="missing-reason",
                        path=module.rel,
                        line=pragma.line,
                        message=(
                            f"allow-{pragma.rule} pragma has no reason; "
                            "suppressions must document their audit"
                        ),
                    )
                )
            elif pragma.rule not in known_rules:
                out.append(
                    Finding(
                        checker="pragma",
                        rule="unknown-rule",
                        path=module.rel,
                        line=pragma.line,
                        message=(
                            f"allow-{pragma.rule} pragma names no known "
                            "rule; available rules: "
                            + ", ".join(sorted(known_rules))
                        ),
                    )
                )
            elif not pragma.used:
                out.append(
                    Finding(
                        checker="pragma",
                        rule="unused",
                        path=module.rel,
                        line=pragma.line,
                        message=(
                            f"allow-{pragma.rule} pragma suppresses "
                            "nothing; remove it"
                        ),
                    )
                )
    return out


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------
def load_baseline(path: Path) -> list[Finding] | None:
    """Parse a baseline file; ``None`` means unreadable/invalid."""
    try:
        payload = json.loads(path.read_text())
        return [Finding.from_dict(entry) for entry in payload["findings"]]
    except (OSError, ValueError, KeyError, TypeError):
        return None


def write_baseline(path: Path, findings: list[Finding]) -> None:
    payload = {
        "format": 1,
        "findings": [f.to_dict() for f in sorted(findings, key=Finding.sort_key)],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def compare_to_baseline(
    findings: list[Finding], baseline: list[Finding]
) -> tuple[list[Finding], int]:
    """``(new findings, fixed count)`` by line-free identity."""
    baseline_keys = {f.key() for f in baseline}
    current_keys = {f.key() for f in findings}
    new = [f for f in findings if f.key() not in baseline_keys]
    fixed = len(baseline_keys - current_keys)
    return new, fixed


def run_lint(
    root: Path,
    baseline_path: Path | None = None,
    checkers: list[Checker] | None = None,
) -> LintResult:
    """One full lint run rooted at ``root``.

    ``baseline_path``: compare against this baseline (missing file is a
    config error — commit one with ``--write-baseline``).  ``None``
    skips baseline comparison and fails on any finding at all.
    """
    errors: list[str] = []
    modules = discover_modules(root, errors)
    ctx = AnalysisContext(root, modules)
    ctx.errors = errors
    if not modules:
        errors.append(f"no Python sources found under {root / 'src' / 'repro'}")
        return LintResult(findings=[], suppressed=0, errors=errors)
    findings, suppressed = run_checkers(ctx, checkers)
    result = LintResult(findings=findings, suppressed=suppressed, errors=ctx.errors)
    if baseline_path is not None and not result.errors:
        baseline = load_baseline(baseline_path)
        if baseline is None:
            result.errors.append(
                f"baseline {baseline_path} is missing or invalid; run "
                "'repro lint --write-baseline' and commit the result"
            )
        else:
            result.baseline_used = True
            result.new_findings, result.fixed_count = compare_to_baseline(
                findings, baseline
            )
    return result
