"""Telemetry-drift checker: the docs key inventory matches the source.

``docs/observability.md`` promises a complete inventory of every trace
span name, every ``size_report`` key, and every metrics-registry key the
pipeline emits.  That promise decays silently: a renamed ``deep_span``,
a new stats counter, or a deleted gauge leaves the docs describing
telemetry that no longer exists (or missing telemetry that does).  This
checker extracts the inventory **from the AST** and cross-checks it
against the docs tables in both directions.

Extraction knows the repo's composition rules (this is a repo-specific
linter — the mapping *is* the contract):

* span names are the literal first argument of ``deep_span(...)`` calls
  (a non-literal first argument is itself a finding: dynamic span names
  can never be inventoried), plus the ``name`` class attribute of the
  ``*Stage`` classes in ``core/stages.py``;
* metrics keys are the literal first argument of ``.gauge`` / ``.label``
  / ``.extend`` / ``.counter`` / ``.series`` calls on a ``metrics``
  receiver (``extend`` records a series);
* ``size_report`` keys are the dict-literal keys of ``size_report()``
  functions, plus the per-class stats dicts composed with their
  documented prefixes (``grounding_``, ``grounding_table_``,
  ``grounding_shards_``) by ``CompiledModel.size_report``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.base import (
    AnalysisContext,
    Checker,
    Finding,
    call_name,
    dict_literal_keys,
    literal_str,
)

DOC_REL = "docs/observability.md"

#: Where the composed ``grounding_*`` size-report keys come from:
#: ``(module, class name, attribute, prefix)``.  ``CompiledModel.
#: size_report`` prepends ``grounding_`` to every stats key; the
#: compiler additionally namespaces table and shard stats.
STATS_SOURCES = (
    ("src/repro/core/partition.py", "VectorPairEnumerator", "stats", "grounding_"),
    (
        "src/repro/core/factor_tables.py",
        "VectorFactorTableBuilder",
        "stats",
        "grounding_table_",
    ),
    ("src/repro/core/vector_featurize.py", "VectorFeaturizer", "stats", "grounding_"),
    ("src/repro/core/vector_domain.py", "VectorDomainPruner", "stats", "grounding_"),
    (
        "src/repro/engine/parallel.py",
        "ParallelBackend",
        "shard_stats",
        "grounding_shards_",
    ),
)

#: Compiler functions whose local ``grounding`` dict feeds the report.
GROUNDING_FUNCTIONS = (
    ("src/repro/core/compiler.py", "_ground_factors", "grounding_"),
    ("src/repro/core/compiler.py", "_featurize_all", "grounding_"),
)

_METRIC_METHODS = {
    "gauge": "gauge",
    "counter": "counter",
    "label": "label",
    "series": "series",
    "extend": "series",
}

_BACKTICK = re.compile(r"`([^`]+)`")


@dataclass
class Inventory:
    """Everything the source emits, with one ``(rel, line)`` anchor each."""

    spans: dict[str, tuple[str, int]] = field(default_factory=dict)
    stage_spans: dict[str, tuple[str, int]] = field(default_factory=dict)
    metrics: dict[str, tuple[str, int]] = field(default_factory=dict)
    metric_kinds: dict[str, str] = field(default_factory=dict)
    size_keys: dict[str, tuple[str, int]] = field(default_factory=dict)
    dynamic_spans: list[tuple[str, int]] = field(default_factory=list)


def extract_inventory(ctx: AnalysisContext) -> Inventory:
    """Walk every module and collect the emitted telemetry inventory."""
    inv = Inventory()
    for module in ctx.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                _extract_span(inv, module, node)
                _extract_metric(inv, module, node)
            if isinstance(node, ast.FunctionDef) and node.name == "size_report":
                _extract_size_report(inv, module, node)
        _extract_stage_names(inv, module)
        _extract_stats_sources(inv, module)
        _extract_grounding_functions(inv, module)
    return inv


def _extract_span(inv: Inventory, module, node: ast.Call) -> None:
    if call_name(node).rpartition(".")[2] != "deep_span" or not node.args:
        return
    name = literal_str(node.args[0])
    if name is None:
        # The definition site (`def deep_span`) is not a Call; any call
        # with a computed name defeats the inventory.
        inv.dynamic_spans.append((module.rel, node.lineno))
        return
    inv.spans.setdefault(name, (module.rel, node.lineno))


def _extract_metric(inv: Inventory, module, node: ast.Call) -> None:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_METHODS:
        return
    receiver = call_name(func.value)
    if not receiver.endswith("metrics"):
        return
    if not node.args:
        return
    key = literal_str(node.args[0])
    if key is None:
        return
    inv.metrics.setdefault(key, (module.rel, node.lineno))
    inv.metric_kinds.setdefault(key, _METRIC_METHODS[func.attr])


def _extract_size_report(inv: Inventory, module, node: ast.FunctionDef) -> None:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Return) and sub.value is not None:
            for key, line in dict_literal_keys(sub.value):
                inv.size_keys.setdefault(key, (module.rel, line))
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                key = _subscript_key(target)
                if key is not None:
                    inv.size_keys.setdefault(key, (module.rel, sub.lineno))
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Dict):
            for key, line in dict_literal_keys(sub.value):
                inv.size_keys.setdefault(key, (module.rel, line))


def _subscript_key(target: ast.AST) -> str | None:
    if isinstance(target, ast.Subscript):
        return literal_str(target.slice)
    return None


def _extract_stage_names(inv: Inventory, module) -> None:
    if module.rel != "src/repro/core/stages.py":
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or not node.name.endswith("Stage"):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
            ):
                name = literal_str(stmt.value)
                if name is not None:
                    inv.stage_spans.setdefault(name, (module.rel, stmt.lineno))


def _stats_keys(scope: ast.AST, attribute: str) -> list[tuple[str, int]]:
    """Literal keys ever placed into ``self.<attribute>`` within a scope."""
    keys: list[tuple[str, int]] = []

    def is_stats_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == attribute
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    for node in ast.walk(scope):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if is_stats_attr(target) and isinstance(node.value, ast.Dict):
                    keys.extend(dict_literal_keys(node.value))
                if isinstance(target, ast.Subscript) and is_stats_attr(target.value):
                    key = literal_str(target.slice)
                    if key is not None:
                        keys.append((key, node.lineno))
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "update" and is_stats_attr(node.func.value):
                for arg in node.args:
                    keys.extend(dict_literal_keys(arg))
            if node.func.attr == "setdefault" and is_stats_attr(node.func.value):
                if node.args:
                    key = literal_str(node.args[0])
                    if key is not None:
                        keys.append((key, node.lineno))
    return keys


def _extract_stats_sources(inv: Inventory, module) -> None:
    for rel, class_name, attribute, prefix in STATS_SOURCES:
        if module.rel != rel:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for key, line in _stats_keys(node, attribute):
                    inv.size_keys.setdefault(prefix + key, (module.rel, line))


def _extract_grounding_functions(inv: Inventory, module) -> None:
    for rel, function_name, prefix in GROUNDING_FUNCTIONS:
        if module.rel != rel:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef) or node.name != function_name:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == "grounding"
                            and isinstance(sub.value, ast.Dict)
                        ):
                            for key, line in dict_literal_keys(sub.value):
                                inv.size_keys.setdefault(
                                    prefix + key, (module.rel, line)
                                )
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "grounding"
                        ):
                            key = literal_str(target.slice)
                            if key is not None:
                                inv.size_keys.setdefault(
                                    prefix + key, (module.rel, sub.lineno)
                                )
                if isinstance(sub, (ast.Return, ast.AnnAssign)) and isinstance(
                    getattr(sub, "value", None), ast.Dict
                ):
                    for key, line in dict_literal_keys(sub.value):
                        inv.size_keys.setdefault(prefix + key, (module.rel, line))


# ---------------------------------------------------------------------------
# Docs side
# ---------------------------------------------------------------------------
@dataclass
class DocInventory:
    """Key sets promised by the observability doc, one per section."""

    spans: set[str] = field(default_factory=set)
    span_section_text: str = ""
    size_keys: set[str] = field(default_factory=set)
    metrics: set[str] = field(default_factory=set)


def parse_doc(text: str) -> DocInventory:
    """Extract the documented inventory from the markdown tables.

    A table row's *first* cell names the key(s); backticked tokens are
    collected (several spans may share a row).  Placeholder tokens
    containing ``<`` (e.g. ``compile.<size_report key>``) are skipped —
    they document dynamic families the code side skips symmetrically.
    """
    doc = DocInventory()
    section = None
    for line in text.splitlines():
        if line.startswith("## "):
            heading = line[3:].strip().lower()
            if "span" in heading:
                section = "spans"
            elif "size_report" in heading:
                section = "size"
            elif "metrics" in heading:
                section = "metrics"
            else:
                section = None
            continue
        if section == "spans":
            doc.span_section_text += line + "\n"
        if not line.lstrip().startswith("|"):
            continue
        cells = line.strip().strip("|").split("|")
        if not cells:
            continue
        tokens = [
            token
            for token in _BACKTICK.findall(cells[0])
            if "<" not in token and " " not in token
        ]
        if section == "spans":
            doc.spans.update(tokens)
        elif section == "size":
            doc.size_keys.update(tokens)
        elif section == "metrics":
            doc.metrics.update(tokens)
    return doc


class TelemetryChecker(Checker):
    """Source vs ``docs/observability.md`` inventory drift, both ways."""

    name = "telemetry"
    rules = (
        "dynamic-span",
        "span-undocumented",
        "span-unknown",
        "metric-undocumented",
        "metric-unknown",
        "sizekey-undocumented",
        "sizekey-unknown",
    )
    doc_rel = DOC_REL

    def check(self, ctx: AnalysisContext) -> list[Finding]:
        text = ctx.doc_text(self.doc_rel)
        if text is None:
            ctx.errors.append(f"telemetry: cannot read {self.doc_rel}")
            return []
        inv = extract_inventory(ctx)
        doc = parse_doc(text)
        findings: list[Finding] = []

        for rel, line in inv.dynamic_spans:
            findings.append(
                self.finding(
                    "dynamic-span",
                    rel,
                    line,
                    "deep_span() with a computed name cannot be "
                    "inventoried; use a literal span name",
                )
            )

        for name in sorted(set(inv.spans) - doc.spans):
            rel, line = inv.spans[name]
            findings.append(
                self.finding(
                    "span-undocumented",
                    rel,
                    line,
                    f"deep span '{name}' is emitted here but missing from "
                    f"{self.doc_rel}",
                )
            )
        for name in sorted(inv.stage_spans):
            if f"`{name}`" not in doc.span_section_text:
                rel, line = inv.stage_spans[name]
                findings.append(
                    self.finding(
                        "span-undocumented",
                        rel,
                        line,
                        f"stage span '{name}' is missing from the span "
                        f"inventory in {self.doc_rel}",
                    )
                )
        emitted_spans = set(inv.spans)
        for name in sorted(doc.spans - emitted_spans):
            findings.append(
                self.finding(
                    "span-unknown",
                    self.doc_rel,
                    ctx.doc_line(self.doc_rel, f"`{name}`"),
                    f"documented span '{name}' is emitted nowhere in src/",
                )
            )

        for key in sorted(set(inv.metrics) - doc.metrics):
            rel, line = inv.metrics[key]
            findings.append(
                self.finding(
                    "metric-undocumented",
                    rel,
                    line,
                    f"metrics key '{key}' ({inv.metric_kinds[key]}) is "
                    f"recorded here but missing from {self.doc_rel}",
                )
            )
        for key in sorted(doc.metrics - set(inv.metrics)):
            findings.append(
                self.finding(
                    "metric-unknown",
                    self.doc_rel,
                    ctx.doc_line(self.doc_rel, f"`{key}`"),
                    f"documented metrics key '{key}' is recorded nowhere "
                    "in src/",
                )
            )

        for key in sorted(set(inv.size_keys) - doc.size_keys):
            rel, line = inv.size_keys[key]
            findings.append(
                self.finding(
                    "sizekey-undocumented",
                    rel,
                    line,
                    f"size_report key '{key}' is produced here but missing "
                    f"from {self.doc_rel}",
                )
            )
        for key in sorted(doc.size_keys - set(inv.size_keys)):
            findings.append(
                self.finding(
                    "sizekey-unknown",
                    self.doc_rel,
                    ctx.doc_line(self.doc_rel, f"`{key}`"),
                    f"documented size_report key '{key}' is produced "
                    "nowhere in src/",
                )
            )
        return findings
