"""Parallel-safety checker: work shipped to pools must survive the trip.

``ParallelBackend`` fans grounding tasks out over a ``multiprocessing``
pool.  Two classes of bug slip silently past tests that happen to run on
a fork-capable machine:

* ``pool-callable`` — lambdas, locally nested functions (closures), and
  ``self``-bound methods handed to a Pool API (``map`` / ``apply_async``
  / an ``initializer=``).  Under the ``spawn``/``forkserver`` start
  methods these fail to pickle at dispatch time; bound methods
  additionally drag the whole ``self`` object graph through the pickle
  even under ``fork``.  Pool callables must be module-level functions.
* ``shm-finalize`` — a ``SharedMemory`` attach/create whose enclosing
  class never registers a ``weakref.finalize``: the mapping (and on
  creation, the named segment itself) then lives until process exit, a
  leak that accumulates across repairs in a long-lived service.
"""

from __future__ import annotations

import ast

from repro.analysis.base import AnalysisContext, Checker, Finding, call_name

#: Pool dispatch methods whose first positional argument is pickled.
#: ``submit`` covers ``concurrent.futures`` executors (the serving
#: subsystem ships cold repair jobs through a ``ProcessPoolExecutor``).
POOL_METHODS = {
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "submit",
}


def _is_pool_receiver(node: ast.Call) -> bool:
    """Whether the call's receiver looks like a multiprocessing pool."""
    if not isinstance(node.func, ast.Attribute):
        return False
    receiver = call_name(node.func.value) or ast.dump(node.func.value)
    return "pool" in receiver.lower()


def _nested_function_names(module, node: ast.AST) -> set[str]:
    """Names of functions defined inside the function enclosing ``node``."""
    enclosing = module.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    names: set[str] = set()
    while enclosing is not None:
        for sub in ast.walk(enclosing):
            if sub is enclosing:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(sub.name)
        enclosing = module.enclosing(enclosing, (ast.FunctionDef, ast.AsyncFunctionDef))
    return names


class ParallelSafetyChecker(Checker):
    """Unpicklable pool tasks and unfinalized shared-memory handles."""

    name = "parallel-safety"
    rules = ("pool-callable", "shm-finalize")

    def check(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        for module in ctx.modules:
            if (
                "multiprocessing" not in module.text
                and "concurrent.futures" not in module.text
            ):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                findings.extend(self._check_dispatch(module, node))
                findings.extend(self._check_shared_memory(module, node))
        return findings

    # ------------------------------------------------------------------
    def _callable_problem(self, module, site: ast.Call, candidate) -> str | None:
        if isinstance(candidate, ast.Lambda):
            return "a lambda"
        if isinstance(candidate, ast.Attribute):
            if isinstance(candidate.value, ast.Name) and candidate.value.id == "self":
                return f"the bound method self.{candidate.attr}"
            return None
        if isinstance(candidate, ast.Name):
            if candidate.id in _nested_function_names(module, site):
                return f"the locally nested function {candidate.id}()"
        return None

    def _check_dispatch(self, module, node: ast.Call) -> list[Finding]:
        candidates = []
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in POOL_METHODS
            and _is_pool_receiver(node)
            and node.args
        ):
            candidates.append(node.args[0])
        if call_name(node).rpartition(".")[2] == "Pool":
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    candidates.append(keyword.value)
        out: list[Finding] = []
        for candidate in candidates:
            problem = self._callable_problem(module, node, candidate)
            if problem is not None:
                out.append(
                    self.finding(
                        "pool-callable",
                        module,
                        node.lineno,
                        f"{problem} is handed to a multiprocessing Pool "
                        "API; pool callables must be module-level "
                        "functions to be fork/pickle-safe",
                    )
                )
        return out

    def _check_shared_memory(self, module, node: ast.Call) -> list[Finding]:
        if call_name(node).rpartition(".")[2] != "SharedMemory":
            return []
        scope = module.enclosing(node, (ast.ClassDef,)) or module.tree
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Call):
                name = call_name(sub)
                if name == "weakref.finalize" or name.endswith(".finalize"):
                    return []
        return [
            self.finding(
                "shm-finalize",
                module,
                node.lineno,
                "SharedMemory handle opened without a matching "
                "weakref.finalize in the owning scope; the mapping leaks "
                "until process exit",
            ),
        ]
