"""Repo-specific AST-based static analysis (``repro lint``).

A pluggable checker suite that enforces the invariants generic linters
cannot see: emission-order determinism, hot-path purity, fork/pickle
safety of pool tasks, and docs/source telemetry + config inventory
sync.  See ``docs/static_analysis.md`` for the checker catalogue and
the ``# repro: allow-<rule> <reason>`` pragma syntax.
"""

from repro.analysis.base import (
    AnalysisContext,
    Checker,
    Finding,
    Pragma,
    SourceModule,
    parse_pragmas,
)
from repro.analysis.runner import (
    LintResult,
    default_checkers,
    run_checkers,
    run_lint,
)

__all__ = [
    "AnalysisContext",
    "Checker",
    "Finding",
    "LintResult",
    "Pragma",
    "SourceModule",
    "default_checkers",
    "parse_pragmas",
    "run_checkers",
    "run_lint",
]
