"""KATARA (Chu et al. — SIGMOD 2015) [13]: KB-powered data cleaning.

KATARA aligns a table with a knowledge base, identifies correct and
incorrect data from the alignment, and repairs incorrect values with KB
values.  Our reproduction plays the same role against an external
dictionary: a tuple that matches a dictionary entry through the given
matching dependencies has its target cells validated; a cell disagreeing
with the (unanimous, sufficiently supported) matched value is repaired to
it.

Behavioural signature preserved from the paper's evaluation:

* **high precision** — repairs happen only on confident matches;
* **limited recall** — cells outside the dictionary's coverage are never
  touched;
* **format-mismatch failure** — if the dataset's key values are formatted
  differently from the dictionary's (the paper's Physicians zip codes),
  nothing matches and zero repairs are produced.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import Deadline, MethodResult, RepairMethod
from repro.constraints.matching import MatchingDependency
from repro.dataset.dataset import Cell, Dataset
from repro.external.dictionary import ExternalDictionary
from repro.external.matcher import match_dictionary


class KataraRepair(RepairMethod):
    """Dictionary-driven repairs through matching dependencies.

    Parameters
    ----------
    dictionary:
        The knowledge base / reference table.
    dependencies:
        Matching dependencies aligning the dataset with the dictionary.
    min_support:
        Minimum number of dictionary entries that must agree on a value
        before KATARA trusts it for repair.
    ambiguity_ratio:
        The top value must have at least this multiple of the support of
        the runner-up (conflicting KB evidence is never used for repair).
    """

    name = "KATARA"

    def __init__(self, dictionary: ExternalDictionary,
                 dependencies: list[MatchingDependency],
                 min_support: int = 1, ambiguity_ratio: float = 2.0,
                 time_budget: float | None = None):
        self.dictionary = dictionary
        self.dependencies = list(dependencies)
        self.min_support = min_support
        self.ambiguity_ratio = ambiguity_ratio
        self.time_budget = time_budget

    def run(self, dataset: Dataset) -> MethodResult:
        deadline = Deadline(self.time_budget)
        matched = match_dictionary(dataset, self.dictionary, self.dependencies)
        repaired = dataset.copy()
        repairs: dict[Cell, str] = {}
        for cell in matched.cells():
            deadline.check(self.name)
            support: Counter[str] = Counter()
            for match in matched.for_cell(cell):
                support[match.value] += match.support
            ranked = support.most_common(2)
            top_value, top_support = ranked[0]
            if top_support < self.min_support:
                continue
            if len(ranked) > 1 and top_support < self.ambiguity_ratio * ranked[1][1]:
                continue  # KB evidence is ambiguous; KATARA abstains
            observed = dataset.cell_value(cell)
            if observed != top_value:
                repaired.set_value(cell.tid, cell.attribute, top_value)
                repairs[cell] = top_value
        return MethodResult(repaired=repaired, repairs=repairs,
                            runtime=deadline.elapsed)
