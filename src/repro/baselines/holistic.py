"""Holistic data cleaning (Chu, Ilyas, Papotti — ICDE 2013) [12].

The strongest constraint-only baseline in the paper's evaluation.  The
published algorithm builds the conflict hypergraph over denial-constraint
violations, picks an (approximate) minimum vertex cover of cells to
change, and determines each chosen cell's new value so that violations
are resolved with *minimal* change to the database.  The original uses a
QP solver (Gurobi) for numeric value determination; for the categorical
repairs exercised here, value determination reduces to choosing among the
values suggested by the violated constraints' predicates, which we solve
exactly by local search.

The method's characteristic behaviour — good on datasets dominated by
clean duplicates (Hospital, Physicians), near-zero precision when the
majority of cells are noisy (Flights) or errors are random (Food) —
follows directly from minimality, as Section 1 of the HoloClean paper
argues.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.baselines.base import Deadline, MethodResult, RepairMethod
from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Operator, TupleRef
from repro.dataset.dataset import Cell, Dataset
from repro.detect.violations import ViolationDetector


class HolisticRepair(RepairMethod):
    """Minimality-driven repair over denial constraints.

    Parameters
    ----------
    constraints:
        Denial constraints to enforce.
    max_rounds:
        Detection/repair rounds; the algorithm stops earlier once no
        violations remain.
    time_budget:
        Optional seconds budget (raises :class:`MethodTimeout`).
    """

    name = "Holistic"

    def __init__(self, constraints: list[DenialConstraint],
                 max_rounds: int = 5, use_fresh_values: bool = True,
                 time_budget: float | None = None):
        self.constraints = list(constraints)
        self.max_rounds = max_rounds
        self.use_fresh_values = use_fresh_values
        self.time_budget = time_budget
        self._fresh_counter = 0

    # ------------------------------------------------------------------
    def run(self, dataset: Dataset) -> MethodResult:
        deadline = Deadline(self.time_budget)
        working = dataset.copy()
        detector = ViolationDetector(self.constraints)
        all_repairs: dict[Cell, str] = {}

        for _round in range(self.max_rounds):
            deadline.check(self.name)
            detection = detector.detect(working)
            if not detection.hypergraph.violations:
                break
            changed = self._repair_round(working, detection, deadline)
            for cell, value in changed.items():
                all_repairs[cell] = value
            if not changed:
                break  # no repair reduced violations; stop (minimality)

        # Drop no-op chains (repairs that ended back at the initial value).
        final_repairs = {
            cell: working.cell_value(cell)
            for cell in all_repairs
            if working.cell_value(cell) != dataset.cell_value(cell)
        }
        return MethodResult(repaired=working, repairs=final_repairs,
                            runtime=deadline.elapsed)

    # ------------------------------------------------------------------
    def _repair_round(self, working: Dataset, detection,
                      deadline: Deadline) -> dict[Cell, str]:
        """One vertex-cover round: fix high-degree cells first."""
        violations_of: dict[Cell, list] = defaultdict(list)
        for violation in detection.hypergraph.violations:
            for cell in violation.cells:
                violations_of[cell].append(violation)

        # Greedy approximate vertex cover: descending violation degree.
        ordered = sorted(violations_of,
                         key=lambda c: (-len(violations_of[c]), c))
        resolved: set[int] = set()
        changed: dict[Cell, str] = {}
        for cell in ordered:
            deadline.check(self.name)
            pending = [v for v in violations_of[cell]
                       if id(v) not in resolved]
            if not pending:
                continue  # this cell's conflicts were already covered
            # Value determination uses the cell's FULL violation context
            # (the repair context of the published algorithm), not just
            # the still-unresolved part — contradictions must be visible
            # regardless of processing order.
            new_value = self._determine_value(working, cell,
                                              violations_of[cell])
            if new_value is None:
                continue
            working.set_value(cell.tid, cell.attribute, new_value)
            changed[cell] = new_value
            for violation in pending:
                resolved.add(id(violation))
        return changed

    # ------------------------------------------------------------------
    def _determine_value(self, working: Dataset, cell: Cell,
                         violations: list) -> str | None:
        """Determine the repair value from the cell's violation context.

        Following the published algorithm's value determination:
        equality-consequent predicates (``t1.A != t2.A`` in the DC body,
        i.e. an FD's right-hand side) *demand* that the cell adopt the
        partner's value.  When all demands agree, the repair is that
        value (minimal change).  When the demands are **contradictory** —
        two partners require two different values — no existing value can
        satisfy the repair context, and the algorithm falls back to a
        *fresh value* (a new constant outside the active domain).  Fresh
        values break the violations but can never match the ground truth;
        on conflict-heavy data such as Flights this is why Holistic
        "did not perform any correct repairs" (Table 3).
        """
        current = working.cell_value(cell)
        suggestions: Counter[str] = Counter()
        for violation in violations:
            dc = self._constraint(violation.constraint_name)
            if dc is None:
                continue
            partner_tids = [t for t in violation.tids if t != cell.tid]
            for pred in dc.predicates:
                if pred.op is not Operator.NEQ:
                    continue
                if not isinstance(pred.right, TupleRef):
                    continue
                attrs = {pred.left.attribute, pred.right.attribute}
                if cell.attribute not in attrs:
                    continue
                for partner in partner_tids:
                    value = working.value(partner, cell.attribute)
                    if value is not None and value != current:
                        suggestions[value] += 1
        if not suggestions:
            return None
        if len(suggestions) > 1 and self.use_fresh_values:
            # Contradictory demands: unsatisfiable by any single existing
            # value — assign a fresh constant.
            self._fresh_counter += 1
            return f"__fresh_{self._fresh_counter}"
        best, _votes = suggestions.most_common(1)[0]
        resolved = self._resolved_count(working, cell, best, violations)
        return best if resolved > 0 else None

    def _resolved_count(self, working: Dataset, cell: Cell, value: str,
                        violations: list) -> int:
        """How many of the cell's pending violations the change resolves.

        Checking only the violations at hand (rather than rescanning the
        dataset) keeps each round linear in the number of violations; new
        violations the change might introduce surface in the next
        detect/repair round — the same fixpoint structure as the original
        algorithm.
        """
        original = working.cell_value(cell)
        working.set_value(cell.tid, cell.attribute, value)
        try:
            resolved = 0
            own_values = working.tuple_dict(cell.tid)
            for violation in violations:
                dc = self._constraint(violation.constraint_name)
                if dc is None:
                    continue
                partners = [t for t in violation.tids if t != cell.tid]
                if not partners:  # single-tuple constraint
                    if not dc.violates(own_values):
                        resolved += 1
                    continue
                still_violated = False
                for partner in partners:
                    other = working.tuple_dict(partner)
                    if (dc.violates(own_values, other)
                            or dc.violates(other, own_values)):
                        still_violated = True
                        break
                if not still_violated:
                    resolved += 1
            return resolved
        finally:
            working.set_value(cell.tid, cell.attribute, original)

    def _constraint(self, name: str) -> DenialConstraint | None:
        for dc in self.constraints:
            if dc.name == name:
                return dc
        return None
