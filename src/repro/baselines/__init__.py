"""Competing data-repairing methods from the paper's evaluation (Table 3).

* :class:`HolisticRepair` — Chu et al. [12]: denial-constraint driven
  repairs under the minimality principle, via the conflict hypergraph and
  an approximate vertex cover.
* :class:`KataraRepair` — Chu et al. [13]: knowledge-base powered
  cleaning; repairs only cells whose tuples confidently match a dictionary
  entry (high precision, coverage-limited recall).
* :class:`ScareRepair` — Yakout et al. [39]: maximal-likelihood value
  modification with bounded changes; no integrity constraints.
"""

from repro.baselines.base import MethodResult, MethodTimeout, RepairMethod
from repro.baselines.holistic import HolisticRepair
from repro.baselines.katara import KataraRepair
from repro.baselines.scare import ScareRepair

__all__ = [
    "MethodResult",
    "MethodTimeout",
    "RepairMethod",
    "HolisticRepair",
    "KataraRepair",
    "ScareRepair",
]
