"""Common interface for repair methods (HoloClean and the baselines)."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.dataset.dataset import Cell, Dataset


class MethodTimeout(RuntimeError):
    """Raised when a method exceeds its time budget.

    The paper reports SCARE "failed to terminate after running for three
    days" on Food and Physicians; benchmark harnesses catch this exception
    and report a DNF instead of waiting.
    """


@dataclass
class MethodResult:
    """Outcome of one repair method run."""

    repaired: Dataset
    repairs: dict[Cell, str] = field(default_factory=dict)  # cell → new value
    runtime: float = 0.0
    timed_out: bool = False

    @property
    def num_repairs(self) -> int:
        return len(self.repairs)


class RepairMethod(abc.ABC):
    """A data-repairing method with a uniform entry point."""

    name: str = "method"

    @abc.abstractmethod
    def run(self, dataset: Dataset) -> MethodResult:
        """Repair ``dataset`` (not mutated) and return the result."""


class Deadline:
    """Cooperative time budget shared by long-running loops."""

    def __init__(self, budget_seconds: float | None):
        self._budget = budget_seconds
        self._started = time.perf_counter()

    def check(self, method_name: str) -> None:
        if self._budget is not None:
            if time.perf_counter() - self._started > self._budget:
                raise MethodTimeout(
                    f"{method_name} exceeded its {self._budget:.0f}s budget")

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started
