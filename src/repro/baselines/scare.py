"""SCARE (Yakout, Berti-Équille, Elmagarmid — SIGMOD 2013) [39].

"Scalable automatic repairing with maximal likelihood and bounded
changes": a machine-learning repair method that uses **no integrity
constraints**.  SCARE models the distribution of each (flexible)
attribute given the rest of the tuple — explicitly exploiting the
dependency structure between attributes — proposes the maximal-
likelihood value for every cell, and applies at most δ changes per
tuple, keeping only updates whose likelihood gain over the observed
value exceeds a threshold.

Our value model is a *weighted product of experts*: every other cell of
the tuple predicts the target value through the smoothed conditional
``P(v | c_i)``, and each expert is weighted by the uncertainty
coefficient (Theil's U) of the attribute pair — the fraction of the
target attribute's entropy the expert's attribute explains.  This is the
dependency-aware likelihood at the heart of SCARE: uninformative context
attributes (a hospital id says nothing about which quality measure a row
carries) are automatically ignored, while near-functional ones dominate.

Published behaviour preserved:

* works well when duplication is plentiful (Hospital);
* poor recall when duplicates are scarce (Flights);
* cost grows with the active-domain size — on the paper's Food and
  Physicians datasets SCARE "failed to terminate after three days",
  which the ``time_budget`` reproduces as a :class:`MethodTimeout`.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.baselines.base import Deadline, MethodResult, RepairMethod
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.stats import Statistics


class ScareRepair(RepairMethod):
    """Maximal-likelihood value modification with bounded changes.

    Parameters
    ----------
    attributes:
        Flexible attributes eligible for update (defaults to all data
        attributes).
    max_changes_per_tuple:
        The paper's δ: bound on updates within one tuple.
    min_log_gain:
        Minimum weighted log-likelihood advantage of the proposed value
        over the observed one (the reliability threshold on updates).
    smoothing:
        Dirichlet smoothing α for the per-expert conditionals.
    time_budget:
        Seconds before raising :class:`MethodTimeout`.
    """

    name = "SCARE"

    def __init__(self, attributes: list[str] | None = None,
                 max_changes_per_tuple: int = 2, min_log_gain: float = 6.0,
                 smoothing: float = 1.0, sample_fraction: float = 0.7,
                 seed: int = 0, time_budget: float | None = None):
        self.attributes = attributes
        self.max_changes_per_tuple = max_changes_per_tuple
        self.min_log_gain = min_log_gain
        self.smoothing = smoothing
        #: SCARE learns its model from horizontal partitions of the data
        #: (the "scalable" in its name); statistics come from a random
        #: block of this fraction of tuples rather than the full relation.
        self.sample_fraction = sample_fraction
        self.seed = seed
        self.time_budget = time_budget
        self._u_cache: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def run(self, dataset: Dataset) -> MethodResult:
        deadline = Deadline(self.time_budget)
        stats = Statistics(self._training_block(dataset))
        attrs = self.attributes or dataset.schema.data_attributes
        self._u_cache.clear()
        repaired = dataset.copy()
        repairs: dict[Cell, str] = {}

        for tid in dataset.tuple_ids:
            deadline.check(self.name)
            row = dataset.tuple_dict(tid)
            proposals: list[tuple[float, Cell, str]] = []
            for attr in attrs:
                observed = row.get(attr)
                best_value, gain = self._best_value(stats, attrs, row, attr,
                                                    observed)
                if best_value is None or best_value == observed:
                    continue
                if gain >= self.min_log_gain:
                    proposals.append((gain, Cell(tid, attr), best_value))
            proposals.sort(key=lambda p: -p[0])
            for gain, cell, value in proposals[: self.max_changes_per_tuple]:
                repaired.set_value(cell.tid, cell.attribute, value)
                repairs[cell] = value
        return MethodResult(repaired=repaired, repairs=repairs,
                            runtime=deadline.elapsed)

    def _training_block(self, dataset: Dataset) -> Dataset:
        """The horizontal sample the value model is learned from."""
        if self.sample_fraction >= 1.0:
            return dataset
        import numpy as np

        rng = np.random.default_rng(self.seed)
        size = max(2, int(dataset.num_tuples * self.sample_fraction))
        picked = sorted(rng.choice(dataset.num_tuples, size=size,
                                   replace=False))
        block = Dataset(dataset.schema, name=f"{dataset.name}-block")
        for tid in picked:
            block.append(dataset.row(tid))
        return block

    # ------------------------------------------------------------------
    # Dependency structure: Theil's uncertainty coefficient U(A | B)
    # ------------------------------------------------------------------
    def _uncertainty(self, stats: Statistics, target: str,
                     given: str) -> float:
        """``I(target; given) / H(target)`` in [0, 1] (cached)."""
        key = (target, given)
        cached = self._u_cache.get(key)
        if cached is not None:
            return cached
        target_counts = stats.counts(target)
        total = sum(target_counts.values())
        if total == 0:
            self._u_cache[key] = 0.0
            return 0.0
        h_target = -sum((n / total) * math.log(n / total)
                        for n in target_counts.values())
        if h_target <= 1e-12:
            self._u_cache[key] = 0.0
            return 0.0
        # Conditional entropy H(target | given) from pair counts.
        pair = stats.pair_counts(target, given)
        by_given: Counter[str] = Counter()
        for (_tv, gv), n in pair.items():
            by_given[gv] += n
        h_cond = 0.0
        pair_total = sum(by_given.values())
        if pair_total == 0:
            self._u_cache[key] = 0.0
            return 0.0
        for (tv, gv), n in pair.items():
            p_joint = n / pair_total
            p_cond = n / by_given[gv]
            h_cond -= p_joint * math.log(p_cond)
        u = max(0.0, min(1.0, (h_target - h_cond) / h_target))
        self._u_cache[key] = u
        return u

    # ------------------------------------------------------------------
    def _best_value(self, stats: Statistics, attrs: list[str],
                    row: dict[str, str | None], attr: str,
                    observed: str | None):
        """Maximal-likelihood value for one cell and its gain over observed.

        Candidates are every attribute value that co-occurs with at least
        one of the tuple's other cell values — any other value has
        vanishing likelihood under the dependency model.
        """
        context = [(a, row[a]) for a in attrs
                   if a != attr and row.get(a) is not None]
        if not context:
            return None, 0.0
        if observed is not None and stats.frequency(attr, observed) == 0:
            # The observed value is outside the learned block's
            # vocabulary: the model cannot assess it, so the bounded-
            # changes policy abstains rather than guessing.
            return None, 0.0
        weights = [(a, v, self._uncertainty(stats, attr, a))
                   for a, v in context]
        weights = [(a, v, u) for a, v, u in weights if u > 0.05]
        if not weights:
            return None, 0.0
        candidates: set[str] = set()
        for other_attr, other_value, _u in weights:
            candidates.update(
                stats.cooccurring_values(attr, other_attr, other_value))
        if observed is not None:
            candidates.add(observed)
        if len(candidates) < 2:
            return None, 0.0

        best_value, best_score = None, -math.inf
        observed_score = -math.inf
        for value in sorted(candidates):
            score = self._log_likelihood(stats, weights, attr, value)
            if score > best_score:
                best_value, best_score = value, score
            if value == observed:
                observed_score = score
        if observed is None:
            # Missing value: any confident prediction is a gain.
            return best_value, best_score - (-50.0)
        return best_value, best_score - observed_score

    def _log_likelihood(self, stats: Statistics, weighted_context,
                        attr: str, value: str) -> float:
        """``log P(v) + Σ_i U_i · log P(v | c_i)`` (weighted experts).

        Conditionals are Dirichlet-smoothed toward the value's marginal:
        ``P(v|c) = (joint + α·P(v)) / (freq_c + α)``.
        """
        alpha = self.smoothing
        total = sum(stats.counts(attr).values())
        freq_v = stats.frequency(attr, value)
        rf_v = freq_v / max(total, 1)
        score = math.log((freq_v + 1.0)
                         / (total + max(stats.num_distinct(attr), 1)))
        for other_attr, other_value, u in weighted_context:
            joint = stats.cooccurrence(attr, value, other_attr, other_value)
            freq_c = stats.frequency(other_attr, other_value)
            conditional = (joint + alpha * rf_v) / (freq_c + alpha)
            score += u * math.log(max(conditional, 1e-12))
        return score
