"""Batched construction of DC factor tables (Algorithm 1, set-at-a-time).

With pair enumeration engine-backed, the naive oracle
(:meth:`ModelCompiler._ground_factor_for_cells`) became the dominant
grounding cost: for every tuple pair it copies two tuple dicts and calls
:meth:`DenialConstraint.violates` once per factor-table cell.  The
original system grounds factor tables *inside the DBMS* (DeepDive-style,
Section 5 of the paper); :class:`VectorFactorTableBuilder` is the
equivalent stage here.  Each constraint's predicates are compiled once
into code-space evaluators over the engine's
:class:`~repro.engine.store.ColumnStore` (shared codebooks for
cross-attribute equalities, :class:`~repro.constraints.predicates.OrderKeys`
for inequality predicates, per-code lookup tables for constants); each
``(left, right)`` chunk from the enumerator is then grouped by
(variable-pattern, domain-shape), candidate-code grids are broadcast per
group, and every pair's ``±1`` table falls out of a handful of array
comparisons.

The output is byte-identical to the naive oracle: same factor tables,
same variable-id order, same emission order, same skip accounting
(no-variable pairs, ``max_factor_table`` caps, constant tables).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, OrderKeys, Predicate
from repro.dataset.dataset import Cell, Dataset
from repro.engine import ops
from repro.inference.factor_graph import ConstraintFactor
from repro.inference.variables import VariableBlock
from repro.obs.trace import deep_span

#: Upper bound on the cells of one broadcast evaluation block; groups
#: with more pairs than fit are evaluated in consecutive sub-blocks.
_BLOCK_CELLS = 1 << 22

_ORDER_OPS = (Operator.LT, Operator.GT, Operator.LTE, Operator.GTE)


class CodeSpace:
    """One codebook plus every per-attribute artifact coded in it.

    A space covers the attributes one predicate compares (one attribute,
    or a sorted cross-attribute pair sharing a union codebook).  It holds
    the candidate-domain CSR index of each attribute (query cells list
    their pruned domains, evidence cells their initial value), the whole
    column re-coded for fixed context, the finalised code → value list,
    and — lazily — the :class:`OrderKeys` inequality predicates compare
    with.  CSR builds run first: they extend the codebook with candidate
    values absent from the data, so the value list is complete by the
    time lookup tables are derived from it.

    Shared infrastructure: the vectorized featurizer
    (:mod:`repro.core.vector_featurize`) compiles denial-constraint
    *feature* evaluation through the same spaces.
    """

    def __init__(self, store, attrs: tuple[str, ...],
                 domains_by_attr: dict[str, dict[Cell, list[str]]]):
        self.codebook = store.union_codebook(*attrs)
        self._csr = {
            attr: store.domain_code_index(
                attr, domains_by_attr.get(attr, {}), self.codebook)
            for attr in attrs
        }
        self._fixed = {attr: store.recoded_column(attr, self.codebook)
                       for attr in attrs}
        values: list[str] = [""] * len(self.codebook)
        for value, code in self.codebook.items():
            values[code] = value
        self.values = values
        self._order_keys: OrderKeys | None = None

    def csr(self, attr: str):
        return self._csr[attr]

    def fixed(self, attr: str) -> np.ndarray:
        return self._fixed[attr]

    @property
    def order_keys(self) -> OrderKeys:
        if self._order_keys is None:
            self._order_keys = OrderKeys.from_values(self.values)
        return self._order_keys


@dataclass
class _Step:
    """One predicate of one evaluation direction, bound to grid slots.

    A slot is a ``(position, attribute)`` value source of the pair's
    candidate grid; the backward direction (the naive walk's
    ``violates(values2, values1)``) swaps every reference's position.
    ``lut`` is the constant-operand truth table; ``needs_keys`` marks
    inequality predicates that compare through the space's ordering keys.
    """

    predicate: Predicate
    left_slot: tuple[int, str]
    right_slot: tuple[int, str] | None
    space: CodeSpace
    lut: np.ndarray | None
    needs_keys: bool


@dataclass
class _Plan:
    """A two-tuple constraint compiled for batched table construction."""

    axis_slots: list[tuple[int, str]]
    forward: list[_Step]
    backward: list[_Step]


class VectorFactorTableBuilder:
    """Builds all factor tables of a pair chunk in batched NumPy.

    Parameters mirror what the naive per-pair loop reads: the grounded
    ``variables`` block (axis variables and their ids), the *query*
    candidate domains (exactly the domains the variables were added
    with), the ``max_factor_table`` cap and the constant factor weight.
    One builder serves every constraint of a compile; code spaces, axis
    lookups and compiled plans are cached across chunks and constraints.
    """

    def __init__(self, engine, dataset: Dataset, variables: VariableBlock,
                 domains: dict[Cell, list[str]], max_table_cells: int,
                 weight: float):
        self.engine = engine
        self.dataset = dataset
        self.variables = variables
        self.max_table_cells = max_table_cells
        self.weight = weight
        self._domains_by_attr: dict[str, dict[Cell, list[str]]] = {}
        for cell, domain in domains.items():
            self._domains_by_attr.setdefault(cell.attribute, {})[cell] = domain
        self._spaces: dict[tuple[str, ...], CodeSpace] = {}
        self._plans: dict[DenialConstraint, _Plan] = {}
        self._axes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        #: Table-construction counters surfaced as ``grounding_table_*``:
        #: pairs consumed, broadcast groups evaluated, tables emitted, and
        #: the skip breakdown the naive loop only reports in aggregate.
        self.stats = {"pairs": 0, "groups": 0, "tables": 0,
                      "skipped_no_vars": 0, "skipped_cap": 0,
                      "skipped_constant": 0}

    # ------------------------------------------------------------------
    @staticmethod
    def supports(dc: DenialConstraint) -> bool:
        """Whether the constraint grounds on the vectorized path.

        Binary similarity predicates would need a quadratic pairwise
        table; such constraints (and single-tuple ones, which are not
        pair-enumerated) stay on the naive per-pair oracle.
        """
        return (not dc.is_single_tuple
                and all(p.is_code_comparable for p in dc.predicates))

    # ------------------------------------------------------------------
    # Cached artifacts
    # ------------------------------------------------------------------
    def _axis_info(self, attr: str) -> tuple[np.ndarray, np.ndarray]:
        """Per-tuple query-variable id and domain size for one attribute.

        ``-1`` marks cells without a query variable — evidence cells and
        unpruned cells alike are folded into the table as fixed context,
        exactly the naive loop's ``info is None or info.is_evidence``
        test.
        """
        cached = self._axes.get(attr)
        if cached is None:
            n = self.dataset.num_tuples
            vids = np.full(n, -1, dtype=np.int64)
            sizes = np.full(n, -1, dtype=np.int64)
            for cell, domain in self._domains_by_attr.get(attr, {}).items():
                info = self.variables.by_cell(cell)
                if info is not None and not info.is_evidence:
                    vids[cell.tid] = info.vid
                    sizes[cell.tid] = len(domain)
            cached = (vids, sizes)
            self._axes[attr] = cached
        return cached

    def _space(self, *attrs: str) -> CodeSpace:
        key = tuple(sorted(set(attrs)))
        space = self._spaces.get(key)
        if space is None:
            space = CodeSpace(self.engine.store, key, self._domains_by_attr)
            self._spaces[key] = space
        return space

    def _plan_for(self, dc: DenialConstraint) -> _Plan:
        plan = self._plans.get(dc)
        if plan is None:
            plan = self._compile(dc)
            self._plans[dc] = plan
        return plan

    def _compile(self, dc: DenialConstraint) -> _Plan:
        """Bind each predicate to grid slots in both evaluation orders.

        Axis slots follow the naive ``cell_axes`` order exactly: position
        1's attributes sorted, then position 2's — table dimensions and
        ``var_ids`` come out identical.
        """
        axis_slots = ([(1, a) for a in sorted(dc.attributes_of(1))]
                      + [(2, a) for a in sorted(dc.attributes_of(2))])
        forward: list[_Step] = []
        backward: list[_Step] = []
        for predicate in dc.predicates:
            left = (predicate.left.tuple_index, predicate.left.attribute)
            if isinstance(predicate.right, Const):
                space = self._space(left[1])
                lut = predicate.constant_mask(space.values)
                forward.append(_Step(predicate, left, None, space, lut, False))
                backward.append(_Step(predicate, (3 - left[0], left[1]), None,
                                      space, lut, False))
                continue
            right = (predicate.right.tuple_index, predicate.right.attribute)
            space = self._space(left[1], right[1])
            needs_keys = predicate.op in _ORDER_OPS
            forward.append(_Step(predicate, left, right, space, None,
                                 needs_keys))
            backward.append(_Step(predicate, (3 - left[0], left[1]),
                                  (3 - right[0], right[1]), space, None,
                                  needs_keys))
        return _Plan(axis_slots=axis_slots, forward=forward,
                     backward=backward)

    # ------------------------------------------------------------------
    # Chunk grounding
    # ------------------------------------------------------------------
    def ground_chunk(self, dc: DenialConstraint, left: np.ndarray,
                     right: np.ndarray) -> tuple[list[ConstraintFactor], int]:
        """All factors of one ``(left, right)`` pair chunk, in pair order.

        Returns ``(factors, skipped)`` where ``factors`` preserves the
        chunk's pair order (what the naive loop's sequential
        ``add_factor`` calls produce) and ``skipped`` counts the pairs
        that ground no factor — no query variables, table over the cap,
        or a constant table.
        """
        with deep_span("ground.factor_chunk", constraint=dc.name,
                       pairs=len(left)) as sp:
            factors, skipped = self._ground_chunk(dc, left, right)
            if sp is not None:
                sp.attributes["factors"] = len(factors)
            return factors, skipped

    def _ground_chunk(self, dc: DenialConstraint, left: np.ndarray,
                      right: np.ndarray) -> tuple[list[ConstraintFactor], int]:
        plan = self._plan_for(dc)
        num_pairs = len(left)
        self.stats["pairs"] += num_pairs
        tids_of = {1: np.asarray(left, dtype=np.int64),
                   2: np.asarray(right, dtype=np.int64)}
        key_cols = []
        slot_vids = []
        for pos, attr in plan.axis_slots:
            vids, sizes = self._axis_info(attr)
            tids = tids_of[pos]
            key_cols.append(sizes[tids])
            slot_vids.append(vids[tids])

        out: list[ConstraintFactor | None] = [None] * num_pairs
        for rep, members in self._shape_groups(key_cols):
            sizes_rep = [int(col[rep]) for col in key_cols]
            axis_ids = [s for s, d in enumerate(sizes_rep) if d >= 0]
            group_pairs = len(members)
            if not axis_ids:
                self.stats["skipped_no_vars"] += group_pairs
                continue
            shape = tuple(sizes_rep[s] for s in axis_ids)
            cells = int(np.prod(shape))
            if cells > self.max_table_cells:
                self.stats["skipped_cap"] += group_pairs
                continue
            if cells == 0:
                # An empty candidate domain: the empty table is trivially
                # constant (the naive all-ones test succeeds vacuously).
                self.stats["skipped_constant"] += group_pairs
                continue
            self.stats["groups"] += 1
            block = max(1, _BLOCK_CELLS // cells)
            for lo in range(0, group_pairs, block):
                self._ground_block(dc, plan, tids_of,
                                   members[lo:lo + block], axis_ids, shape,
                                   slot_vids, out)

        factors = [factor for factor in out if factor is not None]
        self.stats["tables"] += len(factors)
        return factors, num_pairs - len(factors)

    @staticmethod
    def _shape_groups(key_cols: list[np.ndarray]):
        """Group chunk positions by their per-slot domain-size signature.

        Yields ``(representative, member_positions)`` per distinct
        signature; member positions stay ascending, so per-group results
        land back in pair order.
        """
        if not key_cols:
            return
        num_pairs = len(key_cols[0])
        base = max(int(col.max(initial=-1)) for col in key_cols) + 2
        if len(key_cols) * np.log2(max(base, 2)) > 62:
            stacked = np.stack(key_cols, axis=1)
            _, first, inverse = np.unique(stacked, axis=0, return_index=True,
                                          return_inverse=True)
        else:
            encoded = np.zeros(num_pairs, dtype=np.int64)
            for col in key_cols:
                encoded = encoded * base + (col + 1)
            _, first, inverse = np.unique(encoded, return_index=True,
                                          return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.concatenate((
            [0], np.nonzero(np.diff(inverse[order]))[0] + 1, [num_pairs]))
        # repro: allow-loop per-group walk over O(groups) boundaries, not per-row
        for g in range(len(first)):
            yield int(first[g]), order[boundaries[g]:boundaries[g + 1]]

    def _ground_block(self, dc: DenialConstraint, plan: _Plan,
                      tids_of: dict[int, np.ndarray], idx: np.ndarray,
                      axis_ids: list[int], shape: tuple[int, ...],
                      slot_vids: list[np.ndarray],
                      out: list[ConstraintFactor | None]) -> None:
        """Evaluate one same-shape block of pairs and emit its factors."""
        block_pairs = len(idx)
        ndim = len(shape)
        axis_rank = {plan.axis_slots[s]: k for k, s in enumerate(axis_ids)}
        grids: dict[tuple[tuple[int, str], int], np.ndarray] = {}

        def grid_for(slot: tuple[int, str], space: CodeSpace) -> np.ndarray:
            key = (slot, id(space))
            grid = grids.get(key)
            if grid is None:
                pos, attr = slot
                tids = tids_of[pos][idx]
                rank = axis_rank.get(slot)
                if rank is None:
                    grid = space.fixed(attr)[tids].reshape(
                        (block_pairs,) + (1,) * ndim)
                else:
                    csr = space.csr(attr)
                    matrix = ops.gather_csr_rows(csr.indptr, csr.codes, tids,
                                                 shape[rank])
                    grid = matrix.reshape(
                        (block_pairs,)
                        + tuple(shape[rank] if k == rank else 1
                                for k in range(ndim)))
                grids[key] = grid
            return grid

        def eval_direction(steps: list[_Step]) -> np.ndarray | None:
            result: np.ndarray | None = None
            for step in steps:
                lhs = grid_for(step.left_slot, step.space)
                if step.lut is not None:
                    term = step.lut[np.maximum(lhs, 0)] & (lhs >= 0)
                else:
                    rhs = grid_for(step.right_slot, step.space)
                    keys = step.space.order_keys if step.needs_keys else None
                    term = step.predicate.compare_coded(lhs, rhs, keys)
                result = term if result is None else result & term
                if not result.any():
                    return None  # conjunction can never fire in this block
            return result

        forward = eval_direction(plan.forward)
        backward = eval_direction(plan.backward)
        if forward is None and backward is None:
            self.stats["skipped_constant"] += block_pairs
            return
        if forward is None:
            violated = backward
        elif backward is None:
            violated = forward
        else:
            violated = forward | backward
        violated = np.broadcast_to(violated, (block_pairs,) + shape)

        flat = violated.reshape(block_pairs, -1)
        cells = flat.shape[1]
        violation_counts = flat.sum(axis=1)
        constant = (violation_counts == 0) | (violation_counts == cells)
        self.stats["skipped_constant"] += int(constant.sum())
        emit = np.nonzero(~constant)[0]
        if not len(emit):
            return
        tables = np.where(violated[emit], np.int8(-1), np.int8(1))
        vid_cols = [slot_vids[s][idx] for s in axis_ids]
        # repro: allow-loop emitted factors are Python objects; construction is per-factor
        for j, i in enumerate(emit.tolist()):
            out[int(idx[i])] = ConstraintFactor(
                var_ids=tuple(int(col[i]) for col in vid_cols),
                table=tables[j].copy(), weight=self.weight,
                constraint_name=dc.name)
