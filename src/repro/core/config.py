"""Configuration of the HoloClean pipeline.

Every knob discussed in the paper is explicit here: the Algorithm 2
pruning threshold τ, the signal toggles that define the model variants of
Section 6.3.1 (Figure 5), the constant denial-constraint factor weight of
Algorithm 1, and the learning/sampling budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: The model variants evaluated in Figure 5 of the paper.
VARIANTS = (
    "dc-factors",
    "dc-factors+partitioning",
    "dc-feats",
    "dc-feats+dc-factors",
    "dc-feats+dc-factors+partitioning",
)


@dataclass
class HoloCleanConfig:
    """All tuning parameters of HoloClean.

    Parameters mirror the paper:

    * ``tau`` — the co-occurrence threshold of Algorithm 2, swept over
      {0.3, 0.5, 0.7, 0.9} in Figures 3-5.
    * ``use_dc_feats`` — relax denial constraints to features over
      independent random variables (Section 5.2); the default model,
      used for all Table 3 numbers.
    * ``use_dc_factors`` — keep denial constraints as factors with the
      constant weight ``dc_factor_weight`` (Algorithm 1).
    * ``use_partitioning`` — ground DC factors only inside the tuple
      groups of Algorithm 3.
    """

    # --- Algorithm 2: domain pruning -------------------------------------
    tau: float = 0.5
    max_domain: int = 24

    #: ``"cooccurrence"`` = Algorithm 2; ``"active"`` = the full active
    #: domain (the pre-HoloClean candidate space, for ablations).
    domain_strategy: str = "cooccurrence"

    #: Strength of the minimality prior — "a positive constant indicating
    #: the strength of this prior" (Section 4.2).  Pinned, not learned:
    #: learning it would overfit (every evidence label trivially equals the
    #: initial value, so a learnable prior diverges and vetoes all repairs).
    minimality_weight: float = 1.0

    # --- signal toggles ----------------------------------------------------
    use_cooccur: bool = True
    use_frequency: bool = True
    use_minimality: bool = True
    use_source: bool = True
    use_external: bool = True
    use_dc_feats: bool = True
    use_dc_factors: bool = False
    use_partitioning: bool = False

    #: ``"pair"`` ties one weight per attribute pair with the empirical
    #: conditional as feature value; ``"value"`` is the paper-literal
    #: ``w(d, f)`` tying (one weight per candidate/feature combination).
    cooccur_tying: str = "pair"

    #: Additive smoothing for the co-occurrence conditionals used as
    #: feature values: ``Pr[d | v'] = #(d, v') / (#v' + smoothing)``.
    #: Without it a value that appears once makes its own (possibly
    #: erroneous) tuple context "predict" it with probability 1.0.
    cooccur_smoothing: float = 1.0

    #: Attributes identifying one real-world entity across tuples, used by
    #: the source-reliability featurizer (e.g. ``["Flight"]``).
    source_entity_attributes: tuple[str, ...] = ()

    # --- DC factor grounding (Algorithm 1) ----------------------------------
    dc_factor_weight: float = 2.0
    max_factor_table: int = 4096
    max_factor_pairs: int = 200_000

    #: Chunk size (in estimated pairs) of the engine enumerator's streaming
    #: path: groups whose raw pair estimate exceeds ``factor_stream_budget``
    #: are enumerated bucket-chunk by bucket-chunk of at most this many
    #: estimated pairs, so exploding joins (Physicians-scale groups) stream
    #: with bounded memory instead of materialising at once.
    factor_chunk_pairs: int = 65_536
    factor_stream_budget: int = 1_048_576

    # --- DC feature extraction (Section 5.2) --------------------------------
    dc_feature_cap: float = 10.0
    max_dc_feature_partners: int = 100

    #: Evidence (training) cells additionally receive this many frequent
    #: attribute values as negative candidates.  Without negatives, cells
    #: in homogeneous attributes have singleton domains and contribute no
    #: gradient, leaving their features untrained.
    evidence_negatives: int = 2

    #: Train on noisy cells too, weakly labelled with their observed
    #: value.  Backed by the paper's relaxation assumption (i) — erroneous
    #: cells are fewer than correct cells — and required on datasets like
    #: Flights where *every* cell participates in some violation, leaving
    #: no clean evidence at all.  ``None`` (default) enables weak labels
    #: automatically only when clean evidence is scarce.
    weak_label_training: bool | None = None

    # --- grounding engine ----------------------------------------------------
    #: Route violation detection, statistics, domain pruning, featurization
    #: (the set-at-a-time :class:`~repro.core.vector_featurize.VectorFeaturizer`),
    #: and DC-factor pair enumeration through the vectorized relational
    #: engine (:mod:`repro.engine`).  The staged API builds one
    #: :class:`~repro.engine.Engine` per :class:`~repro.core.stages.RepairContext`
    #: and every stage shares it.  The naive Python path is kept as a
    #: correctness oracle; both produce identical results, the engine is
    #: just what lets grounding scale.
    use_engine: bool = True

    #: Execution backend for the engine, by registry name (see
    #: :func:`repro.engine.backend.register_backend`): ``"numpy"``
    #: (vectorized arrays, default), ``"sqlite"`` (in-memory DBMS
    #: grounding, the paper's original architecture), ``"parallel"``
    #: (multi-core sharded grounding), or any backend registered by an
    #: extension.
    engine_backend: str = "numpy"

    #: Worker processes for sharded grounding: ``0`` (default) keeps the
    #: single-process path; ``n >= 1`` wraps the engine backend in a
    #: :class:`~repro.engine.parallel.ParallelBackend` with ``n`` workers.
    #: Results are byte-identical either way.
    parallel_workers: int = 0

    #: Route Algorithm 2 domain pruning (and the compiler's weak-label /
    #: evidence-negative scaffolding) through the set-at-a-time
    #: :class:`~repro.core.vector_domain.VectorDomainPruner` when the
    #: engine is on.  ``False`` keeps the per-cell naive oracle
    #: (:class:`~repro.core.domain.DomainPruner`) even with the engine —
    #: output is byte-identical either way.
    vector_domains: bool = True

    # --- observability --------------------------------------------------------
    #: Trace-span verbosity of the telemetry subsystem (:mod:`repro.obs`):
    #: ``"stage"`` (default) records one span per pipeline stage —
    #: overhead is five context managers per repair; ``"deep"``
    #: additionally records engine/inference child spans (backend joins,
    #: pair-chunk streaming, factor tables, featurizer families, Gibbs
    #: sweeps, trainer epochs); ``"off"`` records nothing.  Tracing never
    #: changes repair output — traced and untraced runs are byte-identical.
    trace_level: str = "stage"

    #: Start :mod:`tracemalloc` for the repair so trace spans carry
    #: Python-heap peak-memory numbers.  Off by default (tracemalloc
    #: slows allocation-heavy code measurably); the end-to-end benchmark
    #: turns it on to publish per-stage memory.
    trace_memory: bool = False

    # --- serving (repro serve) ----------------------------------------------
    #: Capacity of the serving layer's LRU session store: how many warm
    #: :class:`~repro.core.stages.RepairContext`\ s are retained in
    #: memory before the least-recently-used one is checkpointed (when a
    #: checkpoint directory is configured) and evicted.
    serve_max_sessions: int = 16

    #: Worker processes of the serving job pool.  Cold repairs (full
    #: detect→apply runs) execute on a bounded ``ProcessPoolExecutor``
    #: of this size; ``0`` runs every job inline in the request thread
    #: (no pool — the mode used by tests and single-tenant setups).
    serve_workers: int = 2

    #: Directory for per-stage session checkpoints; ``None`` (default)
    #: disables checkpointing, so evicted sessions pay a full cold run
    #: on their next request instead of rehydrating.
    serve_checkpoint_dir: str | None = None

    #: Queued jobs tolerated beyond the in-flight worker capacity
    #: before the service sheds load (HTTP 429 + Retry-After).
    serve_queue_depth: int = 8

    #: Per-job wall-clock budget (seconds) enforced by the HTTP server;
    #: jobs exceeding it are cancelled and reported as HTTP 504.
    #: ``0`` disables the timeout.
    serve_job_timeout: float = 300.0

    # --- learning -----------------------------------------------------------
    epochs: int = 60
    learning_rate: float = 0.1
    l2: float = 1e-4
    max_training_cells: int | None = 20_000

    # --- Gibbs sampling -------------------------------------------------------
    gibbs_burn_in: int = 10
    gibbs_sweeps: int = 40

    # --- misc ------------------------------------------------------------------
    sim_threshold: float = 0.8
    seed: int = 42

    def __post_init__(self) -> None:
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError(f"tau must be in [0, 1], got {self.tau}")
        if self.max_domain < 1:
            raise ValueError("max_domain must be at least 1")
        if self.cooccur_tying not in ("pair", "value"):
            raise ValueError(
                f"cooccur_tying must be 'pair' or 'value', got "
                f"{self.cooccur_tying!r}")
        if not (self.use_dc_feats or self.use_dc_factors or self.use_cooccur
                or self.use_minimality or self.use_frequency):
            raise ValueError("at least one repair signal must be enabled")
        # Validate against the live backend registry (importing the
        # engine package triggers the built-in registrations), so adding
        # a backend needs no core edits.
        from repro.engine import backend_names

        if self.engine_backend not in backend_names():
            raise ValueError(
                f"unknown engine backend {self.engine_backend!r}; "
                f"pick one of {backend_names()}")
        if self.parallel_workers < 0:
            raise ValueError(
                f"parallel_workers must be >= 0, got {self.parallel_workers}")
        if self.trace_level not in ("off", "stage", "deep"):
            raise ValueError(
                f"trace_level must be 'off', 'stage', or 'deep', got "
                f"{self.trace_level!r}")
        if self.factor_chunk_pairs < 1:
            raise ValueError("factor_chunk_pairs must be at least 1")
        if self.factor_stream_budget < 1:
            raise ValueError("factor_stream_budget must be at least 1")
        if self.serve_max_sessions < 1:
            raise ValueError(
                f"serve_max_sessions must be at least 1, got "
                f"{self.serve_max_sessions}")
        if self.serve_workers < 0:
            raise ValueError(
                f"serve_workers must be >= 0, got {self.serve_workers}")
        if self.serve_queue_depth < 0:
            raise ValueError(
                f"serve_queue_depth must be >= 0, got {self.serve_queue_depth}")
        if self.serve_job_timeout < 0:
            raise ValueError(
                f"serve_job_timeout must be >= 0, got {self.serve_job_timeout}")

    # ------------------------------------------------------------------
    @classmethod
    def variant(cls, name: str, **overrides) -> "HoloCleanConfig":
        """Build the named Figure 5 variant.

        ``dc-feats`` is the paper's default configuration (Section 6.2:
        "denial constraints in HoloClean are relaxed to features … no
        partitioning is used").
        """
        flags = {
            "dc-factors": dict(use_dc_feats=False, use_dc_factors=True,
                               use_partitioning=False),
            "dc-factors+partitioning": dict(use_dc_feats=False,
                                            use_dc_factors=True,
                                            use_partitioning=True),
            "dc-feats": dict(use_dc_feats=True, use_dc_factors=False,
                             use_partitioning=False),
            "dc-feats+dc-factors": dict(use_dc_feats=True, use_dc_factors=True,
                                        use_partitioning=False),
            "dc-feats+dc-factors+partitioning": dict(
                use_dc_feats=True, use_dc_factors=True, use_partitioning=True),
        }
        if name not in flags:
            raise ValueError(f"unknown variant {name!r}; pick one of {VARIANTS}")
        merged = {**flags[name], **overrides}
        return cls(**merged)

    def with_(self, **overrides) -> "HoloCleanConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def variant_name(self) -> str:
        """The Figure 5 name of the current flag combination."""
        parts = []
        if self.use_dc_feats:
            parts.append("dc-feats")
        if self.use_dc_factors:
            parts.append("dc-factors")
        if self.use_partitioning:
            parts.append("partitioning")
        return "+".join(parts) if parts else "no-dc-signal"
