"""Algorithm 2: Bayesian pruning of random-variable domains.

For a noisy cell ``c`` with attribute ``A_c``, the candidate repairs are
the values ``v`` of ``A_c`` that co-occur with some other cell value
``v_c'`` of the same tuple with empirical probability
``Pr[v | v_c'] = #(v, v_c') / #v_c' ≥ τ``.  Varying τ trades recall
(small τ, wide domains) against precision and speed (large τ, narrow
domains) — Figures 3 and 4 of the paper.

Two engineering details beyond the pseudocode:

* the observed initial value of the cell is always kept as a candidate
  (otherwise minimality priors and evidence training would be ill-posed);
* domains are ranked by their best conditional probability and truncated
  to ``max_domain`` entries, bounding the factor-graph width.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dataset.dataset import Cell, Dataset
from repro.dataset.stats import Statistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine


class DomainPruner:
    """Computes candidate domains for cells.

    Two strategies:

    * ``"cooccurrence"`` (default) — Algorithm 2's Bayesian pruning with
      threshold τ;
    * ``"active"`` — the whole active domain of the cell's attribute
      (capped at ``max_domain``), the candidate space used by earlier
      repair systems [7, 12].  The paper's motivation for Algorithm 2 is
      that this strategy blows grounding up until "inference over the
      resulting probabilistic model does not terminate after an entire
      day" on even the smallest dataset.
    """

    def __init__(self, dataset: Dataset, stats: Statistics | None = None,
                 tau: float = 0.5, max_domain: int = 24,
                 attributes: list[str] | None = None,
                 strategy: str = "cooccurrence",
                 engine: "Engine | None" = None):
        if strategy not in ("cooccurrence", "active"):
            raise ValueError(
                f"strategy must be 'cooccurrence' or 'active', got {strategy!r}")
        self.dataset = dataset
        if stats is None:
            # Engine-backed statistics answer the Algorithm 2 inner-loop
            # query (cooccurring_values) from a prebuilt index.
            if engine is not None and engine.dataset is dataset:
                stats = engine.statistics()
            else:
                stats = Statistics(dataset)
        self.stats = stats
        self.tau = tau
        self.max_domain = max_domain
        self.attributes = attributes or dataset.schema.data_attributes
        self.strategy = strategy

    # ------------------------------------------------------------------
    def candidates(self, cell: Cell) -> list[str]:
        """Ranked candidate repairs for one cell.

        The cell's own initial value is scored 1.0 so it always survives
        truncation; remaining candidates are scored by the maximum
        conditional probability over the tuple's other cells, mirroring
        the ``Pr[v | v_c'] ≥ τ`` test of Algorithm 2.
        """
        attr = cell.attribute
        row = self.dataset.tuple_dict(cell.tid)
        init = row.get(attr)
        if self.strategy == "active":
            return self._active_domain_candidates(attr, init)
        scores: dict[str, float] = {}
        if init is not None:
            scores[init] = 1.0

        for other_attr in self.attributes:
            if other_attr == attr:
                continue
            other_value = row.get(other_attr)
            if other_value is None:
                continue
            denom = self.stats.frequency(other_attr, other_value)
            if denom == 0:
                continue
            cooc = self.stats.cooccurring_values(attr, other_attr, other_value)
            for value, joint in cooc.items():
                probability = joint / denom
                if probability >= self.tau:
                    if probability > scores.get(value, 0.0):
                        scores[value] = probability

        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        domain = [v for v, _ in ranked[: self.max_domain]]
        if init is not None and init not in domain:
            # init was displaced by truncation; force it back in.
            domain[-1] = init
        if not domain:
            # Fully NULL tuple context: fall back to the most frequent value.
            top = self.stats.most_common(attr, 1)
            domain = [top[0][0]] if top else []
        return domain

    def _active_domain_candidates(self, attr: str,
                                  init: str | None) -> list[str]:
        """The unpruned candidate space, most frequent values first."""
        ranked = [v for v, _ in self.stats.most_common(
            attr, self.max_domain)]
        if init is not None and init not in ranked:
            if len(ranked) >= self.max_domain:
                ranked[-1] = init
            else:
                ranked.append(init)
        return ranked

    def domains(self, cells) -> dict[Cell, list[str]]:
        """Candidate domains for many cells (skips empty results)."""
        out: dict[Cell, list[str]] = {}
        for cell in cells:
            dom = self.candidates(cell)
            if dom:
                out[cell] = dom
        return out
