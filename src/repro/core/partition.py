"""Algorithm 3: tuple partitioning, and pair enumeration for DC factors.

Grounding the factor rules of Algorithm 1 naively requires the self-join
``Tuple(t1), Tuple(t2)`` — quadratic in |D|.  The paper bounds this two
ways, both implemented here:

* **Join-aware enumeration** (what DeepDive's grounding query does): only
  tuple pairs whose equality-join keys can possibly match under the pruned
  candidate domains are considered.
* **Partitioning** (Algorithm 3): pairs are further restricted to the
  connected components of the per-constraint conflict hypergraph, limiting
  factors to ``O(Σ_g |g|²)`` instead of ``O(|Σ| |D|²)``.

Two enumerators implement the same contract: the tuple-at-a-time
:class:`PairEnumerator` (the correctness oracle) and the engine-backed
:class:`VectorPairEnumerator`, which pushes the candidate-domain self-join
into the relational backend (the paper's DBMS grounding) and reproduces
the naive pair stream byte for byte — set *and* order.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import TupleRef
from repro.dataset.dataset import Cell, Dataset
from repro.detect.hypergraph import ConflictHypergraph
from repro.obs.trace import deep_enabled, deep_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine


@dataclass(frozen=True)
class TupleGroup:
    """One entry of Algorithm 3's output: (σ, tuples in one component)."""

    constraint_name: str
    tids: frozenset[int]


def tuple_groups(hypergraph: ConflictHypergraph) -> list[TupleGroup]:
    """Algorithm 3: per-constraint connected components of violating tuples."""
    groups: list[TupleGroup] = []
    for name in hypergraph.constraint_names:
        for component in hypergraph.tuple_components(name):
            groups.append(TupleGroup(name, frozenset(component)))
    return groups


class PairEnumerator:
    """Enumerates the tuple pairs over which one DC's factors are grounded.

    Parameters
    ----------
    dataset:
        The dirty dataset.
    domains:
        Pruned candidate domains for *query* cells; evidence cells
        contribute their initial value only.  Join feasibility is decided
        against these candidate sets — exactly the assignments the factor
        could take.
    max_pairs:
        Global cap per constraint; enumeration stops once reached (the
        paper's grounding would simply take correspondingly longer).
    """

    #: Batch size of the base-class :meth:`pair_chunks` adapter (the
    #: engine enumerator overrides it per instance).
    chunk_pairs: int = 65_536

    def __init__(self, dataset: Dataset, domains: dict[Cell, list[str]],
                 max_pairs: int = 200_000):
        self.dataset = dataset
        self.domains = domains
        self.max_pairs = max_pairs

    # ------------------------------------------------------------------
    def _cell_values(self, tid: int, attr: str) -> list[str]:
        """Candidate values a cell can take (init value for evidence cells)."""
        cell = Cell(tid, attr)
        dom = self.domains.get(cell)
        if dom is not None:
            return dom
        v = self.dataset.value(tid, attr)
        return [v] if v is not None else []

    def join_pairs(self, dc: DenialConstraint,
                   restrict_to: frozenset[int] | None = None):
        """Yield unordered tuple pairs whose join keys may coincide.

        For each equality predicate ``t1.A = t2.B`` a tuple pair is
        feasible only if some candidate of one side's cell equals some
        candidate of the other side's.  Tuples are bucketed by candidate
        value per join attribute and pairs are read off bucket by bucket.
        Constraints without equality predicates fall back to all pairs
        within ``restrict_to`` (or raise if unrestricted and large).
        """
        joins = dc.equijoin_predicates
        tids = (sorted(restrict_to) if restrict_to is not None
                else list(self.dataset.tuple_ids))
        if not joins:
            yield from self._all_pairs(tids, dc)
            return

        # Use the first equality predicate for bucketing; remaining join
        # predicates are enforced by the factor table itself.
        pred = joins[0]
        assert isinstance(pred.right, TupleRef)
        if pred.left.tuple_index == 1:
            attr1, attr2 = pred.left.attribute, pred.right.attribute
        else:
            attr1, attr2 = pred.right.attribute, pred.left.attribute

        buckets: dict[str, set[int]] = defaultdict(set)
        for tid in tids:
            for value in self._cell_values(tid, attr1):
                buckets[value].add(tid)
            if attr2 != attr1:
                for value in self._cell_values(tid, attr2):
                    buckets[value].add(tid)

        emitted: set[tuple[int, int]] = set()
        for bucket in buckets.values():
            members = sorted(bucket)
            # repro: allow-loop naive correctness oracle, not the engine path
            for i in range(len(members)):
                # repro: allow-loop naive correctness oracle, not the engine path
                for j in range(i + 1, len(members)):
                    pair = (members[i], members[j])
                    if pair not in emitted:
                        emitted.add(pair)
                        yield pair
                        if len(emitted) >= self.max_pairs:
                            return

    def _all_pairs(self, tids: list[int], dc: DenialConstraint):
        limit = self.max_pairs
        count = 0
        # repro: allow-loop naive correctness oracle, not the engine path
        for i in range(len(tids)):
            # repro: allow-loop naive correctness oracle, not the engine path
            for j in range(i + 1, len(tids)):
                yield tids[i], tids[j]
                count += 1
                if count >= limit:
                    return

    # ------------------------------------------------------------------
    def pairs_for(self, dc: DenialConstraint, use_partitioning: bool,
                  hypergraph: ConflictHypergraph | None):
        """All pairs to ground for one constraint under the chosen strategy."""
        if not use_partitioning or hypergraph is None:
            yield from self.join_pairs(dc)
            return
        seen: set[tuple[int, int]] = set()
        for component in hypergraph.tuple_components(dc.name):
            for pair in self.join_pairs(dc, restrict_to=frozenset(component)):
                if pair not in seen:
                    seen.add(pair)
                    yield pair
                    if len(seen) >= self.max_pairs:
                        return

    def pair_chunks(self, dc: DenialConstraint, *,
                    use_partitioning: bool = False,
                    hypergraph: ConflictHypergraph | None = None):
        """The constraint's pair stream as ``(left, right)`` array chunks.

        **The** enumerator bulk contract, shared by every implementation
        (this final method is the single entry point; subclasses implement
        :meth:`_pair_chunks`): the concatenation of the yielded chunks is
        exactly the tuple stream of :meth:`pairs_for` — same pairs, same
        order, same ``max_pairs`` cap — delivered columnar instead of
        tuple-at-a-time, which is what bulk consumers (the vectorized
        factor-table builder, benchmarks) should iterate.  Flags are
        keyword-only: ``use_partitioning`` restricts pairs to Algorithm 3
        components of ``hypergraph``.  Under deep tracing each chunk's
        production time is recorded in its own ``ground.pair_chunk`` span
        (the span clocks the enumerator, not the consumer).
        """
        inner = self._pair_chunks(dc, use_partitioning, hypergraph)
        if not deep_enabled():
            return inner
        return self._traced_chunks(dc, inner)

    def _traced_chunks(self, dc: DenialConstraint, inner):
        while True:
            with deep_span("ground.pair_chunk", constraint=dc.name) as sp:
                try:
                    left, right = next(inner)
                except StopIteration:
                    return
                if sp is not None:
                    sp.attributes["pairs"] = int(len(left))
            yield left, right

    def _pair_chunks(self, dc: DenialConstraint, use_partitioning: bool,
                     hypergraph: ConflictHypergraph | None):
        """Naive chunk production: batch the tuple-at-a-time walk."""
        buffer: list[tuple[int, int]] = []
        for pair in self.pairs_for(dc, use_partitioning, hypergraph):
            buffer.append(pair)
            if len(buffer) >= self.chunk_pairs:
                chunk = np.asarray(buffer, dtype=np.int64)
                buffer.clear()
                yield chunk[:, 0], chunk[:, 1]
        if buffer:
            chunk = np.asarray(buffer, dtype=np.int64)
            yield chunk[:, 0], chunk[:, 1]


class VectorPairEnumerator(PairEnumerator):
    """Engine-backed pair enumeration: the grounding self-join as a plan.

    Drop-in replacement for :class:`PairEnumerator` that computes each
    constraint's join-feasible pairs with the backend's hash-join
    primitives instead of Python dict/set loops:

    * the candidate values every cell may take are materialised **once**
      per join attribute as a cell→domain-codes index on the engine's
      :class:`~repro.engine.store.ColumnStore` (and reused across
      constraints sharing the attribute and across Algorithm 3 groups,
      where the naive enumerator rebuilds its buckets per group);
    * Algorithm 3 tuple components are intersected with the join via one
      vectorized component-id lookup over the tuple-id space, not a
      per-component Python set scan;
    * the pair stream is emitted in the naive enumerator's **exact**
      order (bucket first-seen order, lexicographic within a bucket,
      first-bucket dedup), so the two enumerators are byte-equivalent and
      the naive path remains the correctness oracle.

    Groups whose estimated pair count exceeds ``stream_budget`` are not
    materialised at once: their buckets are enumerated in fixed-size
    chunks of at most ``chunk_pairs`` estimated pairs each, keeping peak
    memory bounded while still covering every pair deterministically —
    Physicians-scale joins stream instead of being truncated.
    """

    def __init__(self, engine: "Engine", dataset: Dataset,
                 domains: dict[Cell, list[str]], max_pairs: int = 200_000,
                 chunk_pairs: int = 65_536, stream_budget: int = 1_048_576):
        super().__init__(dataset, domains, max_pairs)
        if engine.dataset is not dataset:
            raise ValueError("engine was built over a different dataset")
        self.engine = engine
        self.chunk_pairs = max(1, chunk_pairs)
        self.stream_budget = max(self.chunk_pairs, stream_budget)
        self._indexes: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        # Split the domains once by attribute: the per-attribute index
        # build walks only its own cells instead of re-filtering every
        # query cell per constraint.
        self._domains_by_attr: dict[str, dict[Cell, list[str]]] = {}
        for cell, domain in domains.items():
            self._domains_by_attr.setdefault(cell.attribute, {})[cell] = domain
        #: Counters for the size report: emitted pairs, enumerated groups,
        #: groups that took the chunked streaming path, and streaming
        #: chunk calls (materialised groups take one call, not counted).
        self.stats = {"pairs": 0, "groups": 0, "streamed_groups": 0,
                      "chunks": 0}

    # ------------------------------------------------------------------
    # Array-chunk API (the engine's native product)
    # ------------------------------------------------------------------
    def _pair_chunks(self, dc: DenialConstraint, use_partitioning: bool,
                     hypergraph: ConflictHypergraph | None):
        """Columnar chunk production (the base-class contract's engine)."""
        if not dc.equijoin_predicates:
            yield from self._fallback_chunks(dc, use_partitioning, hypergraph)
            return
        remaining = [self.max_pairs]
        if not use_partitioning or hypergraph is None:
            tids = np.arange(self.dataset.num_tuples, dtype=np.int64)
            yield from self._group_chunks(dc, tids, remaining)
            return
        yield from self._partitioned_chunks(dc, hypergraph, remaining)

    def _partitioned_chunks(self, dc: DenialConstraint,
                            hypergraph: ConflictHypergraph,
                            remaining: list[int]):
        """All Algorithm 3 groups of one constraint, fused when small.

        Components are disjoint, so namespacing each bucket key by its
        component id turns the whole per-group walk into **one** backend
        join whose first-seen bucket order is exactly the concatenation
        of the per-group orders.  Only when the fused estimate blows the
        streaming budget does enumeration fall back to group-at-a-time
        chunking (same stream, bounded memory).  One ``max_pairs`` cap is
        shared across groups, as in the naive walk.
        """
        from repro.engine import ops

        components = hypergraph.tuple_components(dc.name)
        layout = self._component_layout(components)
        if layout is None:
            return
        members, labels, _boundaries = layout
        indptr, codes = self._combined_index(dc)
        row_codes, row_tids, counts = _take_rows(indptr, codes, members)
        if not len(row_codes):
            return
        row_groups = np.repeat(labels, counts)
        composite = row_groups * (int(row_codes.max()) + 1) + row_codes
        bucket_ids, member_tids = ops.bucket_memberships(composite, row_tids)
        _, sizes = ops.bucket_extents(bucket_ids)
        estimated = int((sizes * (sizes - 1) // 2).sum())
        if estimated <= min(self.stream_budget, 4 * remaining[0]):
            self.stats["groups"] += len(components)
            yield from self._materialise_group(bucket_ids, member_tids,
                                               remaining)
            return
        # Over budget: stream group by group, reusing the fused membership.
        # Composite bucket ranks are assigned in group-major scan order, so
        # each group's rows form one contiguous slice of the fused arrays.
        lookup = np.full(self.dataset.num_tuples, -1, dtype=np.int64)
        lookup[members] = labels
        row_label = lookup[member_tids]
        group_bounds = np.concatenate((
            [0], np.nonzero(np.diff(row_label))[0] + 1, [len(row_label)]))
        # repro: allow-loop per-group walk over O(groups) slice bounds, not per-row
        for k in range(len(group_bounds) - 1):
            lo, hi = int(group_bounds[k]), int(group_bounds[k + 1])
            yield from self._bucketed_chunks(bucket_ids[lo:hi],
                                             member_tids[lo:hi], remaining)
            if remaining[0] <= 0:
                return

    def _fallback_chunks(self, dc: DenialConstraint, use_partitioning: bool,
                         hypergraph: ConflictHypergraph | None):
        """Constraints without equijoins: batch the naive all-pairs walk."""
        buffer: list[tuple[int, int]] = []

        def flush():
            chunk = np.asarray(buffer, dtype=np.int64)
            self.stats["pairs"] += len(buffer)
            buffer.clear()
            return chunk[:, 0], chunk[:, 1]

        for pair in super().pairs_for(dc, use_partitioning, hypergraph):
            buffer.append(pair)
            if len(buffer) >= self.chunk_pairs:
                yield flush()
        if buffer:
            yield flush()

    # ------------------------------------------------------------------
    # Tuple-at-a-time API (drop-in for the naive enumerator)
    # ------------------------------------------------------------------
    def join_pairs(self, dc: DenialConstraint,
                   restrict_to: frozenset[int] | None = None):
        if not dc.equijoin_predicates:
            yield from super().join_pairs(dc, restrict_to)
            return
        if restrict_to is not None:
            tids = np.fromiter(sorted(restrict_to), dtype=np.int64,
                               count=len(restrict_to))
        else:
            tids = np.arange(self.dataset.num_tuples, dtype=np.int64)
        for left, right in self._group_chunks(dc, tids, [self.max_pairs]):
            yield from zip(left.tolist(), right.tolist())

    def pairs_for(self, dc: DenialConstraint, use_partitioning: bool,
                  hypergraph: ConflictHypergraph | None):
        for left, right in self.pair_chunks(dc,
                                            use_partitioning=use_partitioning,
                                            hypergraph=hypergraph):
            yield from zip(left.tolist(), right.tolist())

    # ------------------------------------------------------------------
    def _component_layout(self, components: list[set[int]],
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Component membership as one vectorized component-id lookup.

        Builds a tuple→component-id array and sorts the member tuples
        once (stably, so ids stay ascending within a component).  Returns
        ``(members, labels, boundaries)`` where
        ``members[boundaries[k]:boundaries[k + 1]]`` are component ``k``'s
        sorted tuple ids, components in their own order.
        """
        if not components:
            return None
        comp_of = np.full(self.dataset.num_tuples, -1, dtype=np.int64)
        for k, component in enumerate(components):
            comp_of[np.fromiter(component, dtype=np.int64,
                                count=len(component))] = k
        members = np.nonzero(comp_of >= 0)[0]
        labels = comp_of[members]
        order = np.argsort(labels, kind="stable")
        members, labels = members[order], labels[order]
        boundaries = np.concatenate((
            [0], np.nonzero(np.diff(labels))[0] + 1, [len(members)]))
        return members, labels, boundaries

    def _combined_index(self, dc: DenialConstraint) -> tuple[np.ndarray, np.ndarray]:
        """CSR of candidate codes per tuple for the constraint's join key.

        Row ``t`` concatenates the candidates of ``(t, attr1)`` and — for
        cross-attribute joins, over one shared codebook — ``(t, attr2)``,
        in the naive enumerator's scan order.  Cached per attribute pair.
        """
        pred = dc.equijoin_predicates[0]
        assert isinstance(pred.right, TupleRef)
        if pred.left.tuple_index == 1:
            attr1, attr2 = pred.left.attribute, pred.right.attribute
        else:
            attr1, attr2 = pred.right.attribute, pred.left.attribute
        key = (attr1, attr2)
        cached = self._indexes.get(key)
        if cached is None:
            store = self.engine.store
            if attr1 == attr2:
                index = store.domain_code_index(
                    attr1, self._domains_by_attr.get(attr1, {}))
                cached = (index.indptr, index.codes)
            else:
                codebook = store.union_codebook(attr1, attr2)
                cached = _merge_csr(
                    store.domain_code_index(
                        attr1, self._domains_by_attr.get(attr1, {}), codebook),
                    store.domain_code_index(
                        attr2, self._domains_by_attr.get(attr2, {}), codebook))
            self._indexes[key] = cached
        return cached

    # ------------------------------------------------------------------
    def _materialise_group(self, bucket_ids: np.ndarray,
                           member_tids: np.ndarray, remaining: list[int]):
        """One backend join for a whole under-budget group, budget-clipped."""
        left, right = self.engine.backend.domain_join_pairs(bucket_ids,
                                                            member_tids)
        take = min(len(left), remaining[0])
        if take > 0:
            remaining[0] -= take
            self.stats["pairs"] += take
            yield left[:take], right[:take]

    def _group_chunks(self, dc: DenialConstraint, tids: np.ndarray,
                      remaining: list[int]):
        """Yield one group's pairs as arrays, materialised or streamed.

        ``remaining`` is a one-element mutable budget shared across the
        groups of one constraint (the naive enumerator's global cap).
        """
        from repro.engine import ops

        if remaining[0] <= 0 or not len(tids):
            return
        indptr, codes = self._combined_index(dc)
        row_codes, row_tids, _ = _take_rows(indptr, codes, tids)
        bucket_ids, member_tids = ops.bucket_memberships(row_codes, row_tids)
        yield from self._bucketed_chunks(bucket_ids, member_tids, remaining)

    def _bucketed_chunks(self, bucket_ids: np.ndarray,
                         member_tids: np.ndarray, remaining: list[int]):
        """One group's normalised bucket membership → pair-array chunks."""
        from repro.engine import ops

        if not len(bucket_ids) or remaining[0] <= 0:
            return
        self.stats["groups"] += 1
        backend = self.engine.backend
        starts, sizes = ops.bucket_extents(bucket_ids)
        per_bucket = sizes * (sizes - 1) // 2
        estimated = int(per_bucket.sum())

        # Materialise small groups in one backend call; stream anything
        # whose raw pair estimate dwarfs the budget or the memory bound.
        if estimated <= min(self.stream_budget, 4 * remaining[0]):
            yield from self._materialise_group(bucket_ids, member_tids,
                                               remaining)
            return

        self.stats["streamed_groups"] += 1
        stride = int(member_tids.max()) + 1
        units = self._stream_units(bucket_ids, member_tids, starts, sizes,
                                   per_bucket)
        runner = getattr(backend, "stream_pair_units", None)
        if runner is not None:
            yield from self._parallel_stream(units, runner, backend, stride,
                                             remaining)
            return
        seen = np.empty(0, dtype=np.int64)
        for unit in units:
            if remaining[0] <= 0:
                return
            left, right = self._run_stream_unit(unit, backend)
            self.stats["chunks"] += 1
            chunk, seen = self._fresh_clip(left, right, stride, seen,
                                           remaining)
            if chunk is not None:
                yield chunk

    def _stream_units(self, bucket_ids: np.ndarray, member_tids: np.ndarray,
                      starts: np.ndarray, sizes: np.ndarray,
                      per_bucket: np.ndarray):
        """One streamed group's work units, in chunk-emission order.

        Each unit is independent of the others and of any enumerator
        state, so a sharding backend can execute a window of them
        concurrently; executing them in order through
        :meth:`_run_stream_unit` reproduces the sequential walk exactly.
        Unit kinds: ``("block", members, start, budget)`` — one bounded
        block of an oversized bucket's nested pair walk — and
        ``("domain", bucket_ids, member_tids)`` — one run of consecutive
        buckets totalling at most ``chunk_pairs`` estimated pairs.
        """
        from repro.engine import ops

        bucket = 0
        num_buckets = len(starts)
        while bucket < num_buckets:
            if per_bucket[bucket] > self.chunk_pairs:
                # A single bucket larger than a chunk: stream its nested
                # pair walk in bounded blocks instead of materialising
                # O(|bucket|²) pairs at once.
                lo = int(starts[bucket])
                members = member_tids[lo:lo + int(sizes[bucket])]
                size = len(members)
                position = 0
                while position < size - 1:
                    yield ("block", members, position, self.chunk_pairs)
                    position = ops.bucket_block_end(size, position,
                                                    self.chunk_pairs)
                bucket += 1
                continue
            # Fixed-size chunk: consecutive buckets totalling at most
            # ``chunk_pairs`` estimated pairs (always at least one bucket).
            end = bucket + 1
            chunk_estimate = int(per_bucket[bucket])
            while (end < num_buckets
                   and chunk_estimate + per_bucket[end] <= self.chunk_pairs):
                chunk_estimate += int(per_bucket[end])
                end += 1
            lo = int(starts[bucket])
            hi = int(starts[end - 1] + sizes[end - 1])
            yield ("domain", bucket_ids[lo:hi], member_tids[lo:hi])
            bucket = end

    @staticmethod
    def _run_stream_unit(unit, backend):
        """Execute one stream unit sequentially (the oracle path)."""
        from repro.engine import ops

        if unit[0] == "block":
            left, right, _ = ops.bucket_pair_block(unit[1], unit[2], unit[3])
            return left, right
        return backend.domain_join_pairs(unit[1], unit[2])

    def _parallel_stream(self, units, runner, backend, stride: int,
                         remaining: list[int]):
        """Execute stream units through a sharding backend, windowed.

        Windows of units run concurrently on the backend's pool; results
        come back in unit order, so the sequential dedup/budget clip
        (:meth:`_fresh_clip`) — and therefore the emitted stream — is
        byte-identical to the serial walk.  A window computed past the
        ``max_pairs`` budget is discarded unprocessed, exactly where the
        serial walk would have stopped.  If the pool degrades mid-stream
        (``runner`` returns ``None``), the rest runs serially.
        """
        import itertools

        seen = np.empty(0, dtype=np.int64)
        window = max(2 * getattr(backend, "workers", 1), 2)
        batch = list(itertools.islice(units, window))
        while batch:
            results = runner(batch)
            if results is None:
                for unit in itertools.chain(batch, units):
                    if remaining[0] <= 0:
                        return
                    left, right = self._run_stream_unit(unit, backend)
                    self.stats["chunks"] += 1
                    chunk, seen = self._fresh_clip(left, right, stride, seen,
                                                   remaining)
                    if chunk is not None:
                        yield chunk
                return
            for left, right in results:
                if remaining[0] <= 0:
                    return
                self.stats["chunks"] += 1
                chunk, seen = self._fresh_clip(left, right, stride, seen,
                                               remaining)
                if chunk is not None:
                    yield chunk
            batch = list(itertools.islice(units, window))

    def _fresh_clip(self, left: np.ndarray, right: np.ndarray, stride: int,
                    seen: np.ndarray, remaining: list[int],
                    ) -> tuple[tuple[np.ndarray, np.ndarray] | None, np.ndarray]:
        """Drop already-emitted pairs, apply the budget, record the rest.

        The backend dedups only within one call; across chunks the
        emitted pairs are tracked as a sorted encoded array (a pair is
        kept by the chunk of its first bucket, as in the naive walk).
        """
        if not len(left):
            return None, seen
        encoded = left * stride + right
        if len(seen):
            slot = np.searchsorted(seen, encoded)
            slot_safe = np.minimum(slot, len(seen) - 1)
            fresh = ~((slot < len(seen)) & (seen[slot_safe] == encoded))
            left, right, encoded = left[fresh], right[fresh], encoded[fresh]
        take = min(len(left), remaining[0])
        if take <= 0:
            return None, seen
        remaining[0] -= take
        self.stats["pairs"] += take
        # Keep `seen` sorted for the searchsorted probe above.  NumPy's
        # stable sort is a radix sort for integer dtypes, so re-sorting
        # the concatenation stays near-linear in |seen| per chunk (and
        # |seen| itself is bounded by the max_pairs cap).
        seen = np.sort(np.concatenate((seen, np.sort(encoded[:take]))),
                       kind="stable")
        return (left[:take], right[:take]), seen


def make_pair_enumerator(dataset: Dataset, domains: dict[Cell, list[str]],
                         engine: "Engine | None" = None,
                         max_pairs: int = 200_000,
                         chunk_pairs: int = 65_536,
                         stream_budget: int = 1_048_576) -> PairEnumerator:
    """The engine-backed enumerator when an engine is available, else naive."""
    if engine is not None and engine.dataset is dataset:
        return VectorPairEnumerator(engine, dataset, domains,
                                    max_pairs=max_pairs,
                                    chunk_pairs=chunk_pairs,
                                    stream_budget=stream_budget)
    return PairEnumerator(dataset, domains, max_pairs=max_pairs)


# ---------------------------------------------------------------------------
# CSR helpers for the candidate-domain indexes
# ---------------------------------------------------------------------------
def _merge_csr(index1, index2) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise concatenation of two CSR candidate indexes.

    Row ``t`` of the result lists ``index1``'s candidates then
    ``index2``'s — the order the naive enumerator scans a tuple's two
    join-attribute cells.  Both indexes must share one codebook.
    """
    from repro.engine.ops import expand_ranges

    counts1 = np.diff(index1.indptr)
    counts2 = np.diff(index2.indptr)
    indptr = np.concatenate(([0], np.cumsum(counts1 + counts2)))
    codes = np.empty(int(indptr[-1]), dtype=np.int64)
    codes[expand_ranges(indptr[:-1], counts1)] = index1.codes
    codes[expand_ranges(indptr[:-1] + counts1, counts2)] = index2.codes
    return indptr, codes


def _take_rows(indptr: np.ndarray, codes: np.ndarray, tids: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``tids``, tagging each code with its tid.

    Returns ``(row_codes, row_tids, counts)`` where ``counts[k]`` is the
    number of rows contributed by ``tids[k]`` (so callers can repeat
    further per-tid labels alongside).
    """
    from repro.engine.ops import expand_ranges

    counts = indptr[tids + 1] - indptr[tids]
    source = expand_ranges(indptr[tids], counts)
    if not len(source):
        return source, source, counts
    return codes[source], np.repeat(tids, counts), counts
