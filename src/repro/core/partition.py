"""Algorithm 3: tuple partitioning, and pair enumeration for DC factors.

Grounding the factor rules of Algorithm 1 naively requires the self-join
``Tuple(t1), Tuple(t2)`` — quadratic in |D|.  The paper bounds this two
ways, both implemented here:

* **Join-aware enumeration** (what DeepDive's grounding query does): only
  tuple pairs whose equality-join keys can possibly match under the pruned
  candidate domains are considered.
* **Partitioning** (Algorithm 3): pairs are further restricted to the
  connected components of the per-constraint conflict hypergraph, limiting
  factors to ``O(Σ_g |g|²)`` instead of ``O(|Σ| |D|²)``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import TupleRef
from repro.dataset.dataset import Cell, Dataset
from repro.detect.hypergraph import ConflictHypergraph


@dataclass(frozen=True)
class TupleGroup:
    """One entry of Algorithm 3's output: (σ, tuples in one component)."""

    constraint_name: str
    tids: frozenset[int]


def tuple_groups(hypergraph: ConflictHypergraph) -> list[TupleGroup]:
    """Algorithm 3: per-constraint connected components of violating tuples."""
    groups: list[TupleGroup] = []
    for name in hypergraph.constraint_names:
        for component in hypergraph.tuple_components(name):
            groups.append(TupleGroup(name, frozenset(component)))
    return groups


class PairEnumerator:
    """Enumerates the tuple pairs over which one DC's factors are grounded.

    Parameters
    ----------
    dataset:
        The dirty dataset.
    domains:
        Pruned candidate domains for *query* cells; evidence cells
        contribute their initial value only.  Join feasibility is decided
        against these candidate sets — exactly the assignments the factor
        could take.
    max_pairs:
        Global cap per constraint; enumeration stops once reached (the
        paper's grounding would simply take correspondingly longer).
    """

    def __init__(self, dataset: Dataset, domains: dict[Cell, list[str]],
                 max_pairs: int = 200_000):
        self.dataset = dataset
        self.domains = domains
        self.max_pairs = max_pairs

    # ------------------------------------------------------------------
    def _cell_values(self, tid: int, attr: str) -> list[str]:
        """Candidate values a cell can take (init value for evidence cells)."""
        cell = Cell(tid, attr)
        dom = self.domains.get(cell)
        if dom is not None:
            return dom
        v = self.dataset.value(tid, attr)
        return [v] if v is not None else []

    def join_pairs(self, dc: DenialConstraint,
                   restrict_to: frozenset[int] | None = None):
        """Yield unordered tuple pairs whose join keys may coincide.

        For each equality predicate ``t1.A = t2.B`` a tuple pair is
        feasible only if some candidate of one side's cell equals some
        candidate of the other side's.  Tuples are bucketed by candidate
        value per join attribute and pairs are read off bucket by bucket.
        Constraints without equality predicates fall back to all pairs
        within ``restrict_to`` (or raise if unrestricted and large).
        """
        joins = dc.equijoin_predicates
        tids = (sorted(restrict_to) if restrict_to is not None
                else list(self.dataset.tuple_ids))
        if not joins:
            yield from self._all_pairs(tids, dc)
            return

        # Use the first equality predicate for bucketing; remaining join
        # predicates are enforced by the factor table itself.
        pred = joins[0]
        assert isinstance(pred.right, TupleRef)
        if pred.left.tuple_index == 1:
            attr1, attr2 = pred.left.attribute, pred.right.attribute
        else:
            attr1, attr2 = pred.right.attribute, pred.left.attribute

        buckets: dict[str, set[int]] = defaultdict(set)
        for tid in tids:
            for value in self._cell_values(tid, attr1):
                buckets[value].add(tid)
            if attr2 != attr1:
                for value in self._cell_values(tid, attr2):
                    buckets[value].add(tid)

        emitted: set[tuple[int, int]] = set()
        for bucket in buckets.values():
            members = sorted(bucket)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    pair = (members[i], members[j])
                    if pair not in emitted:
                        emitted.add(pair)
                        yield pair
                        if len(emitted) >= self.max_pairs:
                            return

    def _all_pairs(self, tids: list[int], dc: DenialConstraint):
        limit = self.max_pairs
        count = 0
        for i in range(len(tids)):
            for j in range(i + 1, len(tids)):
                yield tids[i], tids[j]
                count += 1
                if count >= limit:
                    return

    # ------------------------------------------------------------------
    def pairs_for(self, dc: DenialConstraint, use_partitioning: bool,
                  hypergraph: ConflictHypergraph | None):
        """All pairs to ground for one constraint under the chosen strategy."""
        if not use_partitioning or hypergraph is None:
            yield from self.join_pairs(dc)
            return
        seen: set[tuple[int, int]] = set()
        for component in hypergraph.tuple_components(dc.name):
            for pair in self.join_pairs(dc, restrict_to=frozenset(component)):
                if pair not in seen:
                    seen.add(pair)
                    yield pair
                    if len(seen) >= self.max_pairs:
                        return
