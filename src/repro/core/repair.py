"""Repair results: MAP assignments, marginals, and rigorous confidences.

Section 2.2: "each repair proposed by HoloClean is associated with a
marginal probability that carries rigorous semantics … if the proposed
repair has a probability of 0.6 it means that HoloClean is 60% confident
about this repair."  :class:`RepairResult` keeps the full marginal of
every inferred cell so the calibration analysis of Figure 6 (error rate
per probability bucket) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import HoloCleanConfig
from repro.dataset.dataset import Cell, Dataset
from repro.obs.report import RunReport


@dataclass
class CellInference:
    """Inference outcome for one noisy cell."""

    cell: Cell
    init_value: str | None
    chosen_value: str
    confidence: float
    domain: list[str]
    marginal: np.ndarray

    @property
    def is_repair(self) -> bool:
        """True when the MAP value differs from the observed one."""
        return self.chosen_value != self.init_value

    def probability_of(self, value: str) -> float:
        try:
            return float(self.marginal[self.domain.index(value)])
        except ValueError:
            return 0.0


@dataclass
class RepairResult:
    """Everything produced by one HoloClean run.

    ``timings`` reports the paper's three phases (``detect`` /
    ``compile`` / ``repair``); the staged API records finer per-stage
    wall-clock on :attr:`repro.core.stages.RepairContext.timings` and
    folds learn/infer/apply into ``repair`` here.
    """

    repaired: Dataset
    inferences: dict[Cell, CellInference]
    timings: dict[str, float] = field(default_factory=dict)
    size_report: dict[str, int | str] = field(default_factory=dict)
    training_losses: list[float] = field(default_factory=list)
    config: HoloCleanConfig | None = None
    #: Telemetry: trace tree + metrics + config fingerprint + dataset
    #: shape, attached by :class:`~repro.core.stages.ApplyStage`;
    #: serialize via ``report.to_json()`` (``repro --report out.json``).
    report: RunReport | None = None

    @property
    def repairs(self) -> dict[Cell, CellInference]:
        """Cells whose proposed value differs from the observed value."""
        return {c: inf for c, inf in self.inferences.items() if inf.is_repair}

    @property
    def num_repairs(self) -> int:
        return sum(1 for inf in self.inferences.values() if inf.is_repair)

    @property
    def total_runtime(self) -> float:
        return sum(self.timings.values())

    def confidence_of(self, cell: Cell) -> float:
        return self.inferences[cell].confidence

    def summary(self) -> str:
        """One-line human summary used by the examples."""
        t = ", ".join(f"{k}={v:.2f}s" for k, v in self.timings.items())
        return (f"{self.num_repairs} repairs over "
                f"{len(self.inferences)} noisy cells ({t})")
