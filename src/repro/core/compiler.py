"""The compilation module: signals → grounded probabilistic model.

Mirrors Figure 2's "Compilation Module": automatic featurization,
statistical analysis and candidate-repair generation (Algorithm 2), and
compilation to the probabilistic program whose grounding is the factor
graph (Sections 4 and 5).  The output bundles everything the repair
module needs: the variable block, the unary feature matrix, grounded
constraint factors (when denial constraints are kept as factors), and
the evidence labels for weight learning.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.matching import MatchingDependency
from repro.core.config import HoloCleanConfig
from repro.core.domain import DomainPruner
from repro.core.factor_tables import VectorFactorTableBuilder
from repro.core.featurize import FeaturizationContext, default_featurizers
from repro.core.partition import VectorPairEnumerator, make_pair_enumerator
from repro.core.relations import CompiledRelations, init_value_relation
from repro.core.vector_domain import (EntityVoteModes, VectorDomainPruner,
                                      merged_negative_domains)
from repro.core.vector_featurize import VectorFeaturizer
from repro.core import rules as ddlog
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.stats import Statistics
from repro.detect.base import DetectionResult
from repro.external.dictionary import ExternalDictionary
from repro.external.matcher import match_dictionary
from repro.inference.factor_graph import ConstraintFactor, FactorGraph
from repro.inference.features import FeatureMatrixBuilder, FeatureSpace
from repro.inference.variables import VariableBlock
from repro.obs.trace import deep_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine


@dataclass
class CompiledModel:
    """A grounded model ready for learning and inference."""

    graph: FactorGraph
    relations: CompiledRelations
    evidence_ids: list[int]
    evidence_labels: list[int]
    query_ids: list[int]
    ddlog_program: list[str] = field(default_factory=list)
    skipped_factors: int = 0
    #: Grounding statistics: the featurization path and its ``feature_*``
    #: counters, plus — when DC factors are on — the pair-enumeration
    #: stage's enumerator kind, pairs walked, and the engine enumerator's
    #: group / streaming counters.
    grounding: dict[str, int | str] = field(default_factory=dict)

    def size_report(self) -> dict[str, int | str]:
        report: dict[str, int | str] = self.graph.size_report()
        report["skipped_factors"] = self.skipped_factors
        for key, value in self.grounding.items():
            report[f"grounding_{key}"] = value
        return report

    def content_fingerprint(self) -> str:
        """A stable short hash of the grounded model's content.

        Folds the dataset the model was compiled against with the
        grounded shape (the full :meth:`size_report` plus evidence and
        query counts).  The serving checkpoint layer stamps this into
        checkpoint metadata and verifies it on rehydration, so a
        checkpoint written for one model cannot silently resurrect
        another.
        """
        from repro.obs.fingerprint import combine_fingerprints, dataset_fingerprint

        shape = json.dumps(self.size_report(), sort_keys=True, default=str)
        return combine_fingerprints(
            dataset_fingerprint(self.relations.dataset),
            shape,
            str(len(self.evidence_ids)),
            str(len(self.query_ids)),
        )


class ModelCompiler:
    """Compiles one dataset + detection result into a :class:`CompiledModel`."""

    def __init__(self, dataset: Dataset, constraints: list[DenialConstraint],
                 config: HoloCleanConfig, detection: DetectionResult,
                 dictionaries: list[ExternalDictionary] = (),
                 matching_dependencies: list[MatchingDependency] = (),
                 stats: Statistics | None = None,
                 engine: "Engine | None" = None):
        self.dataset = dataset
        self.constraints = list(constraints)
        self.config = config
        self.detection = detection
        self.dictionaries = list(dictionaries)
        self.matching_dependencies = list(matching_dependencies)
        self.engine = engine if engine is not None and engine.dataset is dataset else None
        if stats is None:
            # The engine's statistics serve Algorithm 2 and the
            # co-occurrence featurizers from one vectorized computation.
            stats = (self.engine.statistics() if self.engine is not None
                     else Statistics(dataset))
        self.stats = stats
        #: Set-at-a-time Algorithm 2 pruner; built only when pruning runs
        #: through the shared engine statistics (the default wiring) so
        #: the naive :class:`DomainPruner` stays the correctness oracle.
        self._vector_pruner: VectorDomainPruner | None = None
        if (self.engine is not None and config.vector_domains
                and getattr(stats, "_engine", None) is self.engine):
            self._vector_pruner = VectorDomainPruner(
                self.engine, tau=config.tau, max_domain=config.max_domain,
                strategy=config.domain_strategy)
        self._voter: EntityVoteModes | None = None

    # ------------------------------------------------------------------
    def compile(self) -> CompiledModel:
        config = self.config
        repairable = set(self.dataset.schema.data_attributes)
        query_cells = sorted(
            c for c in self.detection.noisy_cells if c.attribute in repairable)

        pruner = DomainPruner(self.dataset, self.stats, tau=config.tau,
                              max_domain=config.max_domain,
                              strategy=config.domain_strategy)
        prune_path = "vector" if self._vector_pruner is not None else "naive"
        with deep_span("compile.prune_domains", cells=len(query_cells),
                       path=prune_path):
            query_domains = self._prune_domains(pruner, query_cells)

        evidence_cells = self._sample_evidence(set(query_domains))
        with deep_span("compile.prune_evidence", cells=len(evidence_cells),
                       path=prune_path):
            evidence_domains = self._prune_domains(pruner, evidence_cells)

        # The slice of the InitValue relation this model grounds against,
        # materialised once (column-decoded by the engine when available)
        # and consulted for every variable's initial value instead of
        # per-cell dataset probes.
        init_values = init_value_relation(
            self.dataset, engine=self.engine,
            cells=[*sorted(query_domains), *sorted(evidence_domains)])

        matched = self._ground_matched()
        context = FeaturizationContext(self.dataset, self.stats, config,
                                       matched=matched)

        space = FeatureSpace()
        builder = FeatureMatrixBuilder(space)
        variables = VariableBlock()

        # Query variables, registered block-at-a-time: the per-cell
        # add / start_variable / weak-label walk becomes array-shaped spec
        # construction plus one batched registration per block.
        query_specs = [(cell, query_domains[cell])
                       for cell in sorted(query_domains)]
        query_inits = [
            domain.index(init_values[cell])
            if init_values[cell] in domain else -1
            for cell, domain in query_specs]
        query_infos = variables.add_block(
            [cell for cell, _ in query_specs],
            [domain for _, domain in query_specs],
            query_inits, is_evidence=False)
        first_vid = builder.start_variables(
            [len(domain) for _, domain in query_specs])
        assert not query_infos or first_vid == query_infos[0].vid
        specs: list[tuple[Cell, list[str]]] = list(query_specs)
        query_ids: list[int] = [info.vid for info in query_infos]
        labels = self._weak_labels(context, query_specs, query_inits)
        weak_candidates: list[tuple[int, int]] = [
            (info.vid, label)
            for info, label, (_, domain) in zip(query_infos, labels,
                                                query_specs)
            if label >= 0 and len(domain) >= 2]

        evidence_ids: list[int] = []
        evidence_labels: list[int] = []
        sorted_evidence = sorted(evidence_domains)
        extended = self._evidence_negatives(
            sorted_evidence, [evidence_domains[cell]
                              for cell in sorted_evidence])
        evidence_specs: list[tuple[Cell, list[str]]] = []
        evidence_inits: list[int] = []
        for cell, domain in zip(sorted_evidence, extended):
            init = init_values[cell]
            if init is None or init not in domain or len(domain) < 2:
                continue  # no training signal in a singleton/unlabelled cell
            evidence_specs.append((cell, domain))
            evidence_inits.append(domain.index(init))
        evidence_infos = variables.add_block(
            [cell for cell, _ in evidence_specs],
            [domain for _, domain in evidence_specs],
            evidence_inits, is_evidence=True)
        first_vid = builder.start_variables(
            [len(domain) for _, domain in evidence_specs])
        assert not evidence_infos or first_vid == evidence_infos[0].vid
        specs.extend(evidence_specs)
        evidence_ids = [info.vid for info in evidence_infos]
        evidence_labels = [info.observed_index for info in evidence_infos]

        with deep_span("compile.featurize", variables=len(specs)):
            feature_stats = self._featurize_all(context, specs, builder)

        if config.use_minimality and ("minimality",) in space:
            space.set_fixed(("minimality",), config.minimality_weight)
        matrix = builder.build()
        graph = FactorGraph(variables, matrix, space)

        skipped = 0
        grounding: dict[str, int | str] = dict(feature_stats)
        if self._vector_pruner is not None:
            grounding.update(self._vector_pruner.stats)
        if config.use_dc_factors:
            skipped, factor_grounding = self._ground_factors(
                graph, query_domains)
            grounding.update(factor_grounding)

        # Multi-core fan-out accounting (prune / featurize / factor /
        # stream dispatches), surfaced as ``grounding_shards_*`` — absent
        # from single-process runs so their size reports are unchanged.
        if self.engine is not None:
            shard = getattr(self.engine.backend, "shard_stats", None)
            if shard and shard.get("calls"):
                for key, value in shard.items():
                    grounding[f"shards_{key}"] = value

        relations = CompiledRelations(self.dataset,
                                      {**query_domains, **evidence_domains},
                                      matched=matched,
                                      init_values=init_values)
        program = ddlog.compile_program(
            self.constraints,
            use_dc_feats=config.use_dc_feats,
            use_dc_factors=config.use_dc_factors,
            use_external=bool(matched),
            use_minimality=config.use_minimality,
            dc_factor_weight=config.dc_factor_weight)

        # Weak supervision (auto mode): when clean evidence is too scarce
        # to train on — Flights flags every cell noisy — fall back to
        # training on all cells with the observed value as a weak label.
        use_weak = config.weak_label_training
        if use_weak is None:
            use_weak = len(evidence_ids) < max(50, len(query_ids) // 20)
        if use_weak:
            evidence_ids = evidence_ids + [vid for vid, _ in weak_candidates]
            evidence_labels = (evidence_labels
                               + [label for _, label in weak_candidates])

        return CompiledModel(graph=graph, relations=relations,
                             evidence_ids=evidence_ids,
                             evidence_labels=evidence_labels,
                             query_ids=query_ids, ddlog_program=program,
                             skipped_factors=skipped, grounding=grounding)

    # ------------------------------------------------------------------
    def _prune_domains(self, pruner: DomainPruner,
                       cells: list[Cell]) -> dict[Cell, list[str]]:
        """Candidate domains for ``cells``, vectorized / sharded when possible.

        With the default wiring (engine statistics shared end to end and
        ``vector_domains`` on) pruning runs set-at-a-time through
        :class:`VectorDomainPruner` — sharded across worker processes
        when the backend can fan out, serial otherwise.  Workers replay
        the same vectorized kernel over their own engine, so dispatch is
        only sound when this compiler also prunes through the shared
        engine statistics; any custom ``stats`` (and
        ``vector_domains=False``) keeps the naive per-cell oracle.
        Output is byte-identical on every path: per-cell pruning is
        independent and results merge back in cell order.
        """
        vector = self._vector_pruner
        if vector is None or pruner.stats is not self.stats:
            return pruner.domains(cells)
        backend = self.engine.backend if self.engine is not None else None
        prune = getattr(backend, "prune_cells", None)
        if prune is not None and cells:
            params = (pruner.tau, pruner.max_domain, pruner.strategy,
                      tuple(pruner.attributes))
            results = prune(list(cells), params)
            if results is not None:
                vector.tally(len(cells), sum(len(d) for d in results))
                return {cell: domain
                        for cell, domain in zip(cells, results) if domain}
        return vector.domains(cells)

    # ------------------------------------------------------------------
    def _featurize_all(self, context: FeaturizationContext,
                       specs: list[tuple[Cell, list[str]]],
                       builder: FeatureMatrixBuilder) -> dict[str, int | str]:
        """Ground the unary features of every variable in ``specs``.

        With an engine, the whole stack grounds set-at-a-time over the
        column store (:class:`VectorFeaturizer`, byte-identical output);
        the naive per-cell loop remains the correctness oracle.
        """
        if self.engine is not None:
            featurizer = VectorFeaturizer(self.engine, context,
                                          self.constraints)
            return featurizer.featurize(specs, builder)
        featurizers = default_featurizers(context, self.constraints)
        for vid, (cell, domain) in enumerate(specs):
            self._featurize(builder, featurizers, vid, cell, domain)
        return {"feature_path": "naive"}

    def _featurize(self, builder: FeatureMatrixBuilder, featurizers,
                   vid: int, cell: Cell, domain: list[str]) -> None:
        for featurizer in featurizers:
            per_candidate = featurizer.features(cell, domain)
            for cand_idx, entries in enumerate(per_candidate):
                for key, value in entries:
                    if value != 0.0:
                        builder.add(vid, cand_idx, key, value)

    def _weak_label(self, context: FeaturizationContext, cell: Cell,
                    domain: list[str], init_index: int) -> int:
        """Weak training label for a noisy cell (candidate index, or -1).

        Default: the observed value (assumption (i) of Section 5.2 —
        errors are rarer than correct cells).  With source provenance and
        an entity key configured (Flights), the label is bootstrapped
        from the *plurality vote* of the cell's entity group instead —
        the EM seed of truth-finding systems like SLiMFast [35]; training
        against per-tuple observations would only teach the model to echo
        each source's own report.
        """
        group = context.entity_group_of(cell.tid)
        if context.source_attribute is not None and len(group) >= 3:
            idx = self.dataset.schema.index_of(cell.attribute)
            votes: dict[str, int] = {}
            for tid in group:
                v = self.dataset.row_ref(tid)[idx]
                if v is not None:
                    votes[v] = votes.get(v, 0) + 1
            if votes:
                mode = max(sorted(votes), key=lambda v: votes[v])
                if mode in domain:
                    return domain.index(mode)
        return init_index

    def _weak_labels(self, context: FeaturizationContext,
                     specs: list[tuple[Cell, list[str]]],
                     init_indices: list[int]) -> list[int]:
        """Weak labels for every query cell, vectorized when possible.

        The engine path replays :meth:`_weak_label` set-at-a-time: one
        entity-key group-by over the column store, then one plurality
        vote per (attribute, cell set) via :class:`EntityVoteModes`.
        Without the engine (or without an entity key) the per-cell
        oracle runs unchanged.
        """
        entity_attrs = list(self.config.source_entity_attributes)
        if (context.source_attribute is None or not entity_attrs
                or not specs):
            return list(init_indices)
        if self._vector_pruner is None:
            return [self._weak_label(context, cell, domain, init_index)
                    for (cell, domain), init_index in zip(specs,
                                                          init_indices)]
        if self._voter is None:
            self._voter = EntityVoteModes(self.engine, entity_attrs)
        labels = list(init_indices)
        groups: dict[str, list[int]] = {}
        for position, (cell, _) in enumerate(specs):
            groups.setdefault(cell.attribute, []).append(position)
        store = self.engine.store
        for attribute, positions in groups.items():
            tids = np.asarray([specs[p][0].tid for p in positions],
                              dtype=np.int64)
            modes = self._voter.modes(
                attribute, tids, self._vector_pruner._lex_rank(attribute))
            values = store.values(attribute)
            for position, code in zip(positions, modes.tolist()):
                if code < 0:
                    continue
                mode = values[code]
                domain = specs[position][1]
                if mode in domain:
                    labels[position] = domain.index(mode)
        return labels

    def _evidence_negatives(self, cells: list[Cell],
                            domains: list[list[str]]) -> list[list[str]]:
        """Extend every evidence domain with negatives in one pass.

        The engine path ranks each attribute's values once and merges
        per-cell prefixes (:func:`merged_negative_domains`); the naive
        per-cell :meth:`_with_negatives` walk stays the oracle.
        """
        wanted = self.config.evidence_negatives
        if wanted <= 0 or not cells:
            return domains
        if self._vector_pruner is not None:
            return merged_negative_domains(
                self.engine, self.stats, cells, domains, wanted,
                self.config.max_domain)
        return [self._with_negatives(cell, domain)
                for cell, domain in zip(cells, domains)]

    def _with_negatives(self, cell: Cell, domain: list[str]) -> list[str]:
        """Extend an evidence domain with frequent negative candidates.

        Evidence cells in homogeneous attributes often prune down to a
        singleton domain and then carry no learning signal; the most
        frequent attribute values act as contrastive negatives.
        """
        wanted = self.config.evidence_negatives
        if wanted <= 0:
            return domain
        extended = list(domain)
        for value, _count in self.stats.most_common(cell.attribute,
                                                    wanted + len(domain)):
            if len(extended) >= len(domain) + wanted:
                break
            if value not in extended:
                extended.append(value)
        return extended[: self.config.max_domain]

    def _sample_evidence(self, query_cells: set[Cell]) -> list[Cell]:
        """Clean cells used as ERM evidence, subsampled for scale.

        The clean mask is built as one boolean grid (tuples × repairable
        attributes, row-major — the order the old per-cell list
        comprehension produced) and only the subsampled cells are
        materialised as :class:`Cell` objects; same cells, same RNG
        stream, without constructing one Python object per clean cell
        first.
        """
        repairable = self.dataset.schema.data_attributes
        num_tuples = self.dataset.num_tuples
        column_of = {attr: i for i, attr in enumerate(repairable)}
        clean = np.ones((num_tuples, len(repairable)), dtype=bool)
        for cells in (self.detection.noisy_cells, query_cells):
            for cell in cells:
                column = column_of.get(cell.attribute)
                if column is not None:
                    clean[cell.tid, column] = False
        flat = np.nonzero(clean.ravel())[0]
        cap = self.config.max_training_cells
        if cap is not None and len(flat) > cap:
            rng = np.random.default_rng(self.config.seed)
            picked = rng.choice(len(flat), size=cap, replace=False)
            flat = flat[np.sort(picked)]
        width = len(repairable)
        return [Cell(int(i // width), repairable[i % width])
                for i in flat.tolist()]

    def _ground_matched(self):
        if not (self.config.use_external and self.dictionaries
                and self.matching_dependencies):
            return []
        return [
            match_dictionary(self.dataset, dictionary, self.matching_dependencies)
            for dictionary in self.dictionaries
        ]

    # ------------------------------------------------------------------
    # Algorithm 1 grounding: denial constraints as factors
    # ------------------------------------------------------------------
    def _ground_factors(self, graph: FactorGraph,
                        query_domains: dict[Cell, list[str]],
                        ) -> tuple[int, dict[str, int | str]]:
        config = self.config
        enumerator = make_pair_enumerator(
            self.dataset, query_domains, engine=self.engine,
            max_pairs=config.max_factor_pairs,
            chunk_pairs=config.factor_chunk_pairs,
            stream_budget=config.factor_stream_budget)
        hypergraph = self.detection.hypergraph
        # With the engine enumerator, factor tables are built set-at-a-time
        # over the column store; constraints it cannot vectorize (binary
        # similarity) fall back to the per-pair oracle below.
        builder = None
        if isinstance(enumerator, VectorPairEnumerator):
            builder = VectorFactorTableBuilder(
                self.engine, self.dataset, graph.variables, query_domains,
                max_table_cells=config.max_factor_table,
                weight=config.dc_factor_weight)
        # A sharding backend grounds supported constraints' chunks in
        # worker processes; the phase context hands workers everything a
        # builder clone needs (inherited zero-copy under fork).
        dispatch = None
        if builder is not None and self.engine is not None:
            backend = self.engine.backend
            dispatch = getattr(backend, "factor_chunks", None)
            if dispatch is not None and any(
                    builder.supports(dc) for dc in self.constraints):
                backend.configure(factors=(
                    self.constraints, graph.variables, query_domains,
                    config.max_factor_table, config.dc_factor_weight))
        skipped = 0
        pairs = 0
        for ci, dc in enumerate(self.constraints):
            with deep_span("compile.ground_dc", constraint=dc.name) as sp:
                dc_pairs = 0
                if dc.is_single_tuple:
                    skipped += self._ground_single_tuple_factors(graph, dc)
                elif builder is not None and builder.supports(dc):
                    dc_pairs, dc_skipped = self._ground_vector_dc(
                        graph, ci, dc, enumerator, builder, hypergraph,
                        dispatch)
                    skipped += dc_skipped
                else:
                    for t1, t2 in enumerator.pairs_for(
                            dc, config.use_partitioning, hypergraph):
                        dc_pairs += 1
                        if not self._ground_pair_factor(graph, dc, t1, t2):
                            skipped += 1
                pairs += dc_pairs
                if sp is not None:
                    sp.attributes["pairs"] = dc_pairs
        grounding: dict[str, int | str] = {
            "enumerator": type(enumerator).__name__}
        grounding.update(getattr(enumerator, "stats", {}))
        # The pairs actually walked by the grounding loop is authoritative
        # (the enumerator's own counter must not shadow it).
        grounding["pairs"] = pairs
        if builder is not None:
            grounding.update(
                {f"table_{key}": value
                 for key, value in builder.stats.items()})
        return skipped, grounding

    def _ground_vector_dc(self, graph: FactorGraph, ci: int,
                          dc: DenialConstraint, enumerator, builder,
                          hypergraph, dispatch) -> tuple[int, int]:
        """Ground one vectorizable constraint's pair chunks.

        With a sharding backend the chunks are buffered and fanned out:
        each worker runs the same ``_ground_chunk`` over its own builder
        clone and the parent merges factors, skip counts, and stats
        deltas back in chunk order — byte-identical to the serial walk.
        When dispatch is unavailable (or the pool broke mid-run) the
        chunks ground inline.
        """
        config = self.config
        chunks = enumerator.pair_chunks(
            dc, use_partitioning=config.use_partitioning,
            hypergraph=hypergraph)
        pairs = 0
        skipped = 0
        if dispatch is not None:
            buffered = [(ci, left, right) for left, right in chunks]
            results = dispatch(buffered) if buffered else []
            if results is not None:
                for (_, left, _), (factors, chunk_skipped, delta) in zip(
                        buffered, results):
                    pairs += len(left)
                    graph.add_factors(factors)
                    skipped += chunk_skipped
                    for key, value in delta.items():
                        builder.stats[key] += value
                return pairs, skipped
            chunks = ((left, right) for _, left, right in buffered)
        for left, right in chunks:
            pairs += len(left)
            factors, chunk_skipped = builder.ground_chunk(dc, left, right)
            graph.add_factors(factors)
            skipped += chunk_skipped
        return pairs, skipped

    def _ground_single_tuple_factors(self, graph: FactorGraph,
                                     dc: DenialConstraint) -> int:
        skipped = 0
        attrs = sorted(dc.attributes_of(1))
        touched_tids = {
            v.cell.tid for v in graph.variables
            if not v.is_evidence and v.cell.attribute in attrs
        }
        for tid in touched_tids:
            if not self._ground_factor_for_cells(
                    graph, dc, [(1, tid)], attrs_by_position={1: attrs}):
                skipped += 1
        return skipped

    def _ground_pair_factor(self, graph: FactorGraph, dc: DenialConstraint,
                            t1: int, t2: int) -> bool:
        attrs_by_position = {1: sorted(dc.attributes_of(1)),
                             2: sorted(dc.attributes_of(2))}
        return self._ground_factor_for_cells(
            graph, dc, [(1, t1), (2, t2)], attrs_by_position)

    def _ground_factor_for_cells(self, graph: FactorGraph,
                                 dc: DenialConstraint,
                                 positions: list[tuple[int, int]],
                                 attrs_by_position: dict[int, list[str]]) -> bool:
        """Ground one factor; returns False when skipped (cap / constant).

        Evidence cells and cells without variables are folded into the
        table as fixed context, so the resulting factor spans only query
        variables.
        """
        variables = graph.variables
        axis_vars: list = []
        base_values: dict[int, dict[str, str | None]] = {}
        cell_axes: list[tuple[int, str, int]] = []  # (position, attr, axis)
        for position, tid in positions:
            base_values[position] = self.dataset.tuple_dict(tid)
            for attr in attrs_by_position.get(position, ()):
                info = variables.by_cell(Cell(tid, attr))
                if info is not None and not info.is_evidence:
                    cell_axes.append((position, attr, len(axis_vars)))
                    axis_vars.append(info)

        if not axis_vars:
            return False
        shape = tuple(v.domain_size for v in axis_vars)
        table_cells = int(np.prod(shape))
        if table_cells > self.config.max_factor_table:
            return False

        table = np.ones(shape, dtype=np.int8)
        two_tuple = len(positions) == 2
        for combo in itertools.product(*(range(s) for s in shape)):
            values = {p: dict(base_values[p]) for p in base_values}
            for position, attr, axis in cell_axes:
                var = axis_vars[axis]
                values[position][attr] = var.domain[combo[axis]]
            if two_tuple:
                violated = (dc.violates(values[1], values[2])
                            or dc.violates(values[2], values[1]))
            else:
                violated = dc.violates(values[1])
            if violated:
                table[combo] = -1

        if np.all(table == 1) or np.all(table == -1):
            return False  # constant factor: no effect on the distribution
        graph.add_factor(ConstraintFactor(
            var_ids=tuple(v.vid for v in axis_vars), table=table,
            weight=self.config.dc_factor_weight, constraint_name=dc.name))
        return True
