"""Set-at-a-time Algorithm 2 domain pruning over the column store.

:class:`VectorDomainPruner` replays :class:`repro.core.domain.DomainPruner`
— the per-cell, string-keyed candidate generator of Algorithm 2 — in code
space, byte-identical output included: cells are grouped by attribute, the
``Pr[v | v'] >= tau`` test runs as one CSR expansion per ``(attr, other)``
pair over :meth:`EngineStatistics.joint_code_counts`, the per-candidate
best score is a single ``np.maximum.at`` scatter, and the naive path's
rank / truncate / init-reinstatement semantics (score ties broken
lexicographically on the value string, the observed value forced back
after truncation, most-common fallback for empty domains) collapse to one
``np.lexsort`` per attribute group.

The module also hosts the compiler's other per-cell Algorithm 2
scaffolding, vectorized over the same store: entity-group plurality votes
(:class:`EntityVoteModes`, the weak-supervision seed) and the evidence
negative-candidate merge (:func:`merged_negative_domains`).  The naive
implementations stay behind as the correctness oracles; the hypothesis
suite in ``tests/core/test_vector_domain.py`` pins byte-equality.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.dataset import Cell
from repro.engine import ops

_STRATEGIES = ("cooccurrence", "active")


def _lex_rank_table(values: list[str]) -> np.ndarray:
    """Code → rank of the code's value in lexicographic value order.

    The naive pruner sorts candidates by ``(-score, value)`` with the
    value compared as a string; ranks let the vectorized path express the
    same tie-break as an integer sort key (one ``sorted`` per attribute,
    not per cell).
    """
    order = sorted(range(len(values)), key=values.__getitem__)
    ranks = np.empty(len(values), dtype=np.int64)
    ranks[np.asarray(order, dtype=np.int64)] = np.arange(len(values), dtype=np.int64)
    return ranks


class VectorDomainPruner:
    """Algorithm 2 candidate domains, one attribute group at a time.

    Mirrors :class:`~repro.core.domain.DomainPruner`'s constructor knobs
    and ``candidates`` / ``domains`` surface, but prunes whole cell sets
    against the engine's cached code-space count tables instead of
    walking per-cell co-occurrence dicts.
    """

    def __init__(
        self,
        engine,
        tau: float = 0.5,
        max_domain: int = 24,
        attributes: list[str] | None = None,
        strategy: str = "cooccurrence",
    ):
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown domain strategy {strategy!r}; pick one of {_STRATEGIES}"
            )
        self.engine = engine
        self.dataset = engine.dataset
        self.tau = tau
        self.max_domain = max_domain
        self.attributes = list(attributes or self.dataset.schema.data_attributes)
        self.strategy = strategy
        self._stats = engine.statistics()
        self._lex_ranks: dict[str, np.ndarray] = {}
        self._fallbacks: dict[str, list[str]] = {}
        self._active: dict[str, tuple[list[str], np.ndarray]] = {}
        #: Pruning counters, surfaced as ``grounding_prune_*`` in the
        #: compiled model's size report.
        self.stats: dict[str, int | str] = {
            "prune_path": "vector",
            "prune_cells": 0,
            "prune_candidates": 0,
        }

    # ------------------------------------------------------------------
    def candidates(self, cell: Cell) -> list[str]:
        """Candidate repairs for one cell (Algorithm 2)."""
        return self.prune([cell])[0]

    def domains(self, cells: list[Cell]) -> dict[Cell, list[str]]:
        """Candidate domains per cell, skipping cells that prune to nothing."""
        pruned = self.prune(cells)
        return {cell: domain for cell, domain in zip(cells, pruned) if domain}

    def prune(self, cells: list[Cell]) -> list[list[str]]:
        """Candidate domains aligned with ``cells`` (empties included)."""
        out: list[list[str] | None] = [None] * len(cells)
        groups: dict[str, list[int]] = {}
        for position, cell in enumerate(cells):
            groups.setdefault(cell.attribute, []).append(position)
        for attr, positions in groups.items():
            tids = np.asarray([cells[p].tid for p in positions], dtype=np.int64)
            if self.strategy == "active":
                domains = self._active_group(attr, tids)
            else:
                domains = self._cooccurrence_group(attr, tids)
            for position, domain in zip(positions, domains):
                out[position] = domain
        self.tally(len(cells), sum(len(d) for d in out))
        return out

    def tally(self, cells: int, candidates: int) -> None:
        """Account a pruning pass (also fed by the parallel dispatch)."""
        self.stats["prune_cells"] = int(self.stats["prune_cells"]) + cells
        self.stats["prune_candidates"] = (
            int(self.stats["prune_candidates"]) + candidates
        )

    # ------------------------------------------------------------------
    # Per-attribute lookup tables (cached across prune calls)
    # ------------------------------------------------------------------
    def _lex_rank(self, attribute: str) -> np.ndarray:
        ranks = self._lex_ranks.get(attribute)
        if ranks is None:
            ranks = _lex_rank_table(self.engine.store.values(attribute))
            self._lex_ranks[attribute] = ranks
        return ranks

    def _fallback_domain(self, attribute: str) -> list[str]:
        """The ``most_common(attr, 1)`` singleton for empty prunes."""
        fallback = self._fallbacks.get(attribute)
        if fallback is None:
            counts = self._stats.code_counts(attribute)
            if len(counts):
                # First max = first-seen code, the Counter tie-break.
                value = self.engine.store.values(attribute)[int(np.argmax(counts))]
                fallback = [value]
            else:
                fallback = []
            self._fallbacks[attribute] = fallback
        return fallback

    def _active_base(self, attribute: str) -> tuple[list[str], np.ndarray]:
        """The attribute's most-common prefix and a code-membership mask."""
        cached = self._active.get(attribute)
        if cached is None:
            counts = self._stats.code_counts(attribute)
            cap = self.max_domain
            # Stable sort on -counts = Counter.most_common: ties keep
            # first-seen (insertion) order.
            ranked = np.argsort(-counts, kind="stable")[:cap]
            values = self.engine.store.values(attribute)
            ranked_codes = ranked.tolist()
            base = [values[code] for code in ranked_codes]
            member = np.zeros(len(counts), dtype=bool)
            member[ranked] = True
            cached = (base, member)
            self._active[attribute] = cached
        return cached

    # ------------------------------------------------------------------
    # Strategy kernels
    # ------------------------------------------------------------------
    def _active_group(self, attribute: str, tids: np.ndarray) -> list[list[str]]:
        base, member = self._active_base(attribute)
        values = self.engine.store.values(attribute)
        init_codes = self.engine.store.codes(attribute)[tids].tolist()
        domains = []
        for code in init_codes:
            if code < 0 or member[code]:
                domains.append(list(base))
            elif len(base) >= self.max_domain:
                domains.append(base[:-1] + [values[code]])
            else:
                domains.append(base + [values[code]])
        return domains

    def _cooccurrence_group(self, attribute: str, tids: np.ndarray) -> list[list[str]]:
        """Algorithm 2 for every cell of one attribute at once."""
        store = self.engine.store
        stats = self._stats
        n = len(tids)
        cardinality = max(store.cardinality(attribute), 1)
        init_codes = store.codes(attribute)[tids].astype(np.int64)

        # Candidate stream: (cell, code, score) triples.  The observed
        # value enters with score 1.0 — no conditional can exceed it
        # (joint <= denominator), matching the naive dict's fixed entry.
        cell_parts: list[np.ndarray] = []
        code_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        observed = np.nonzero(init_codes >= 0)[0]
        if len(observed):
            cell_parts.append(observed)
            code_parts.append(init_codes[observed])
            score_parts.append(np.ones(len(observed), dtype=np.float64))

        for other in self.attributes:
            if other == attribute:
                continue
            context = store.codes(other)[tids].astype(np.int64)
            with_context = np.nonzero(context >= 0)[0]
            if not len(with_context):
                continue
            indptr, cand_codes, joint = stats.conditional_table(attribute, other)
            given = context[with_context]
            counts = indptr[given + 1] - indptr[given]
            rows = ops.expand_ranges(indptr[given], counts)
            if not len(rows):
                continue
            # Observed context codes always have count >= 1, so the naive
            # path's zero-denominator skip can never trigger here.
            denominator = stats.code_counts(other)[given].astype(np.int64)
            scores = joint[rows] / np.repeat(denominator, counts)
            passed = scores >= self.tau
            cell_parts.append(np.repeat(with_context, counts)[passed])
            code_parts.append(cand_codes[rows][passed])
            score_parts.append(scores[passed])

        if not cell_parts:
            fallback = self._fallback_domain(attribute)
            return [list(fallback) for _ in range(n)]

        cell_of = np.concatenate(cell_parts)
        codes = np.concatenate(code_parts)
        scores = np.concatenate(score_parts)

        # Best score per (cell, candidate): max is order-independent, so
        # the scatter reproduces the naive dict's "keep the larger" walk.
        keys = cell_of * cardinality + codes
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        best = np.zeros(len(unique_keys), dtype=np.float64)
        np.maximum.at(best, inverse, scores)
        cand_cell = unique_keys // cardinality
        cand_code = unique_keys % cardinality

        # sorted(scores.items(), key=lambda kv: (-kv[1], kv[0])) per cell.
        order = np.lexsort((self._lex_rank(attribute)[cand_code], -best, cand_cell))
        cand_cell = cand_cell[order]
        cand_code = cand_code[order]

        counts = np.bincount(cand_cell, minlength=n)
        within = ops.segment_positions(counts)
        kept_counts = np.minimum(counts, self.max_domain)
        kept_codes = cand_code[within < self.max_domain]

        # `domain[-1] = init` when truncation displaced the observed
        # value: locate each cell's init among the ranked candidates and
        # overwrite the last kept slot when it ranked past the cut.
        init_position = np.full(n, -1, dtype=np.int64)
        is_init = cand_code == init_codes[cand_cell]
        init_position[cand_cell[is_init]] = within[is_init]
        ends = np.cumsum(kept_counts)
        displaced = np.nonzero(init_position >= self.max_domain)[0]
        kept_codes[ends[displaced] - 1] = init_codes[displaced]

        values = store.values(attribute)
        flat_codes = kept_codes.tolist()
        decoded = [values[code] for code in flat_codes]
        domains = []
        fallback = self._fallback_domain(attribute)
        start = 0
        # repro: allow-loop per-cell output lists, one slice per cell
        for count in kept_counts.tolist():
            if count:
                stop = start + count
                domains.append(decoded[start:stop])
                start = stop
            else:
                domains.append(list(fallback))
        return domains


class EntityVoteModes:
    """Plurality-vote winners per entity group, one attribute at a time.

    Vectorizes the compiler's ``_weak_label`` scaffolding: tuples are
    grouped once by their composite entity key (NULL components exclude a
    tuple, exactly like ``FeaturizationContext.entity_group_of``), and
    :meth:`modes` returns each queried tuple's group-plurality code for
    one attribute — ``-1`` when the group is smaller than the weak-label
    quorum (3) or casts no votes.  Ties break to the lexicographically
    smallest value, the naive ``max(sorted(votes), key=votes.get)``.
    """

    def __init__(self, engine, entity_attributes: list[str]):
        store = engine.store
        self.engine = engine
        keys = ops.combine_codes([store.codes(attr) for attr in entity_attributes])
        valid = np.nonzero(keys >= 0)[0]
        members = valid[np.argsort(keys[valid], kind="stable")]
        starts, sizes = ops.bucket_extents(keys[members])
        rows = store.num_rows
        self._members = members
        self._group_start = np.full(rows, -1, dtype=np.int64)
        self._group_size = np.zeros(rows, dtype=np.int64)
        if len(members):
            self._group_start[members] = np.repeat(starts, sizes)
            self._group_size[members] = np.repeat(sizes, sizes)

    def modes(
        self,
        attribute: str,
        tids: np.ndarray,
        lex_rank: np.ndarray,
    ) -> np.ndarray:
        """Plurality code per tid for ``attribute`` (-1: no usable vote)."""
        tids = np.asarray(tids, dtype=np.int64)
        out = np.full(len(tids), -1, dtype=np.int64)
        eligible = np.nonzero(
            (self._group_start[tids] >= 0) & (self._group_size[tids] >= 3)
        )[0]
        if not len(eligible):
            return out
        starts = self._group_start[tids[eligible]]
        unique_starts, inverse = np.unique(starts, return_inverse=True)
        group_sizes = self._group_size[self._members[unique_starts]]
        voters = self._members[ops.expand_ranges(unique_starts, group_sizes)]
        group_of = np.repeat(
            np.arange(len(unique_starts), dtype=np.int64),
            group_sizes,
        )
        votes = self.engine.store.codes(attribute)[voters].astype(np.int64)
        cast = votes >= 0
        group_of, votes = group_of[cast], votes[cast]
        modes = np.full(len(unique_starts), -1, dtype=np.int64)
        if len(votes):
            cardinality = max(self.engine.store.cardinality(attribute), 1)
            tally_keys, tally = np.unique(
                group_of * cardinality + votes,
                return_counts=True,
            )
            vote_group = tally_keys // cardinality
            vote_code = tally_keys % cardinality
            order = np.lexsort((lex_rank[vote_code], -tally, vote_group))
            _, first = np.unique(vote_group[order], return_index=True)
            winners = order[first]
            modes[vote_group[winners]] = vote_code[winners]
        out[eligible] = modes[inverse]
        return out


def merged_negative_domains(
    engine,
    stats,
    cells: list[Cell],
    domains: list[list[str]],
    wanted: int,
    max_domain: int,
) -> list[list[str]]:
    """Evidence domains extended with frequent negatives, set-at-a-time.

    Replays ``ModelCompiler._with_negatives`` for every evidence cell at
    once: instead of a per-cell ``most_common(attr, wanted + len(domain))``
    heap walk, each attribute is ranked once and every cell probes only
    its own ``wanted + len(domain)`` ranked prefix, appending the first
    ``wanted`` non-members in rank order and truncating to ``max_domain``.
    """
    if wanted <= 0:
        return domains
    out: list[list[str] | None] = [None] * len(cells)
    groups: dict[str, list[int]] = {}
    for position, cell in enumerate(cells):
        groups.setdefault(cell.attribute, []).append(position)
    store = engine.store
    for attribute, positions in groups.items():
        counts = stats.code_counts(attribute)
        ranked = np.argsort(-counts, kind="stable")
        values = store.values(attribute)
        codebook = {value: code for code, value in enumerate(values)}
        cardinality = max(len(values), 1)
        sizes = np.asarray([len(domains[p]) for p in positions], dtype=np.int64)
        widths = np.minimum(sizes + wanted, len(ranked))
        if not int(widths.sum()):
            # Nothing observed to rank: the naive walk appends nothing
            # but still truncates to the domain cap.
            for position in positions:
                out[position] = domains[position][:max_domain]
            continue

        # Membership probe in code space: a domain value absent from the
        # data can never match a ranked (observed) value, so it is
        # dropped from the key set rather than encoded.
        member_cells = np.repeat(np.arange(len(positions), dtype=np.int64), sizes)
        member_codes = np.asarray(
            [codebook.get(value, -1) for p in positions for value in domains[p]],
            dtype=np.int64,
        )
        present = member_codes >= 0
        member_keys = member_cells[present] * cardinality + member_codes[present]

        probe_cells = np.repeat(np.arange(len(positions), dtype=np.int64), widths)
        probe_codes = ranked[ops.segment_positions(widths)]
        probe_keys = probe_cells * cardinality + probe_codes
        fresh = ~np.isin(probe_keys, member_keys)

        # Running count of fresh candidates within each cell's prefix:
        # keep the first `wanted` of them, in rank order.
        running = np.cumsum(fresh)
        prefix_starts = np.concatenate(([0], np.cumsum(widths)[:-1])).astype(np.int64)
        segment_base = np.repeat((running - fresh)[prefix_starts], widths)
        take = fresh & ((running - segment_base) <= wanted)
        appended_counts = np.bincount(probe_cells[take], minlength=len(positions))
        appended_codes = probe_codes[take].tolist()
        appended = [values[code] for code in appended_codes]

        start = 0
        # repro: allow-loop per-cell output-domain merge, one slice per cell
        for position, count in zip(positions, appended_counts.tolist()):
            stop = start + count
            extended = domains[position] + appended[start:stop]
            start = stop
            out[position] = extended[:max_domain]
    return out
