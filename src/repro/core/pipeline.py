"""The HoloClean facade: detect → compile → learn → infer → repair.

Reproduces the three-module workflow of Figure 2:

1. **Error detection** — denial-constraint violations (plus any extra
   detectors supplied by the caller) split the dataset into noisy and
   clean cells.
2. **Compilation** — Algorithm 2 prunes candidate domains, featurizers
   ground the unary rules, and (in factor variants) Algorithm 1 grounds
   denial constraints into factors, optionally restricted by Algorithm 3's
   tuple partitioning.  With the engine enabled the factor self-join runs
   on the relational backend (``VectorPairEnumerator``); the resulting
   grounding counters surface in ``RepairResult.size_report``.
3. **Repair** — weights are learned by ERM over the evidence cells;
   marginals come from the exact softmax (independent-variable relaxation)
   or Gibbs sampling (factor variants); each noisy cell is assigned its
   MAP value.

Timings for the three phases are recorded exactly as the paper reports
them (violation detection / compilation / learning+inference).
"""

from __future__ import annotations

import time

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.matching import MatchingDependency
from repro.core.compiler import CompiledModel, ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.core.repair import CellInference, RepairResult
from repro.dataset.dataset import Dataset
from repro.detect.base import DetectionResult, ErrorDetector
from repro.detect.violations import ViolationDetector
from repro.engine import Engine
from repro.external.dictionary import ExternalDictionary
from repro.inference.gibbs import GibbsSampler
from repro.inference.softmax import SoftmaxTrainer


class HoloClean:
    """End-to-end holistic data repairing.

    Example
    -------
    >>> from repro import HoloClean, HoloCleanConfig, parse_dc
    >>> hc = HoloClean(HoloCleanConfig(tau=0.5))
    >>> result = hc.repair(dataset, constraints)        # doctest: +SKIP
    >>> result.repaired                                  # doctest: +SKIP
    """

    def __init__(self, config: HoloCleanConfig | None = None):
        self.config = config or HoloCleanConfig()

    # ------------------------------------------------------------------
    def repair(self, dataset: Dataset, constraints: list[DenialConstraint],
               dictionaries: list[ExternalDictionary] = (),
               matching_dependencies: list[MatchingDependency] = (),
               extra_detectors: list[ErrorDetector] = (),
               detection: DetectionResult | None = None) -> RepairResult:
        """Run the full pipeline and return the repair result.

        Parameters
        ----------
        dataset:
            The dirty relation; it is not mutated (repairs land in a copy).
        constraints:
            Denial constraints Σ.
        dictionaries, matching_dependencies:
            Optional external information (Section 4.1's ``ExtDict``).
        extra_detectors:
            Additional error detectors whose findings are unioned with the
            violation detector's.
        detection:
            A precomputed detection result (skips the detect phase); used
            when callers share detection across configurations.
        """
        timings: dict[str, float] = {}
        engine = self._build_engine(dataset)

        started = time.perf_counter()
        if detection is None:
            detection = self._detect(dataset, constraints, extra_detectors,
                                     engine)
        timings["detect"] = time.perf_counter() - started

        started = time.perf_counter()
        compiler = ModelCompiler(dataset, constraints, self.config, detection,
                                 dictionaries=list(dictionaries),
                                 matching_dependencies=list(matching_dependencies),
                                 engine=engine)
        model = compiler.compile()
        timings["compile"] = time.perf_counter() - started

        started = time.perf_counter()
        weights, losses = self._learn(model)
        marginals = self._infer(model, weights)
        result = self._apply_repairs(dataset, model, marginals)
        timings["repair"] = time.perf_counter() - started

        result.timings = timings
        result.size_report = model.size_report()
        result.training_losses = losses
        result.config = self.config
        return result

    # ------------------------------------------------------------------
    def _build_engine(self, dataset: Dataset) -> Engine | None:
        """The shared grounding engine: one columnar encoding of the dirty
        dataset feeding detection, pruning, featurization, and DC-factor
        pair enumeration."""
        if not self.config.use_engine:
            return None
        return Engine(dataset, backend=self.config.engine_backend)

    def _detect(self, dataset: Dataset, constraints: list[DenialConstraint],
                extra_detectors: list[ErrorDetector],
                engine: Engine | None = None) -> DetectionResult:
        detection = ViolationDetector(constraints, engine=engine).detect(dataset)
        for detector in extra_detectors:
            detection.merge(detector.detect(dataset))
        return detection

    def _learn(self, model: CompiledModel):
        """ERM over the evidence cells, with the minimality prior held out.

        The minimality prior is an inference-time prior over repair
        decisions ("a positive constant", Section 4.2), not a learnable
        part of the likelihood: since every training label *is* the
        initial value, letting the prior participate in the training-time
        scores makes it absorb the labels and starves the genuine
        signals (co-occurrence, source reliability) of gradient.  We
        therefore pin it to 0 during the fit and restore the configured
        constant for inference.
        """
        config = self.config
        space = model.graph.space
        fixed = space.fixed_weights
        minimality_idx = space.get(("minimality",))
        if minimality_idx is not None:
            fixed[minimality_idx] = 0.0
        trainer = SoftmaxTrainer(
            model.graph.matrix, epochs=config.epochs,
            learning_rate=config.learning_rate, l2=config.l2,
            max_training_vars=config.max_training_cells, seed=config.seed,
            fixed_weights=fixed)
        outcome = trainer.train(model.evidence_ids, model.evidence_labels)
        if minimality_idx is not None:
            outcome.weights[minimality_idx] = config.minimality_weight
        return outcome.weights, outcome.losses

    def _infer(self, model: CompiledModel,
               weights: np.ndarray) -> dict[int, np.ndarray]:
        if model.graph.factors:
            sampler = GibbsSampler(model.graph, weights, seed=self.config.seed)
            outcome = sampler.run(burn_in=self.config.gibbs_burn_in,
                                  sweeps=self.config.gibbs_sweeps)
            return outcome.marginals
        trainer = SoftmaxTrainer(model.graph.matrix)
        return trainer.marginals(weights, model.query_ids)

    def _apply_repairs(self, dataset: Dataset, model: CompiledModel,
                       marginals: dict[int, np.ndarray]) -> RepairResult:
        repaired = dataset.copy(name=f"{dataset.name}-repaired")
        inferences: dict = {}
        for vid in model.query_ids:
            info = model.graph.variables[vid]
            marginal = marginals[vid]
            best = int(np.argmax(marginal))
            chosen = info.domain[best]
            inference = CellInference(
                cell=info.cell,
                init_value=dataset.cell_value(info.cell),
                chosen_value=chosen,
                confidence=float(marginal[best]),
                domain=list(info.domain),
                marginal=np.asarray(marginal, dtype=np.float64))
            inferences[info.cell] = inference
            if inference.is_repair:
                repaired.set_value(info.cell.tid, info.cell.attribute, chosen)
        return RepairResult(repaired=repaired, inferences=inferences)
