"""The HoloClean facade over the staged repair API.

Reproduces the three-module workflow of Figure 2:

1. **Error detection** — denial-constraint violations (plus any extra
   detectors supplied by the caller) split the dataset into noisy and
   clean cells.
2. **Compilation** — Algorithm 2 prunes candidate domains, featurizers
   ground the unary rules, and (in factor variants) Algorithm 1 grounds
   denial constraints into factors, optionally restricted by Algorithm 3's
   tuple partitioning.  With the engine enabled the factor self-join runs
   on the relational backend (``VectorPairEnumerator``); the resulting
   grounding counters surface in ``RepairResult.size_report``.
3. **Repair** — weights are learned by ERM over the evidence cells;
   marginals come from the exact softmax (independent-variable relaxation)
   or Gibbs sampling (factor variants); each noisy cell is assigned its
   MAP value.

:meth:`HoloClean.repair` is a thin veneer over
:meth:`repro.core.stages.RepairPlan.default` run on a fresh
:class:`~repro.core.stages.RepairContext`; callers that want partial
re-runs (reuse a detection, reuse a compiled model, inject feedback)
drive the stages directly — see :mod:`repro.core.stages` and
:class:`~repro.core.session.RepairSession`.  Timings for the three
phases are recorded exactly as the paper reports them (violation
detection / compilation / learning+inference).
"""

from __future__ import annotations

from repro.constraints.denial import DenialConstraint
from repro.constraints.matching import MatchingDependency
from repro.core.config import HoloCleanConfig
from repro.core.repair import RepairResult
from repro.core.stages import RepairContext, RepairPlan
from repro.dataset.dataset import Dataset
from repro.detect.base import DetectionResult, ErrorDetector
from repro.external.dictionary import ExternalDictionary


class HoloClean:
    """End-to-end holistic data repairing.

    Example
    -------
    >>> from repro import HoloClean, HoloCleanConfig, parse_dc
    >>> hc = HoloClean(HoloCleanConfig(tau=0.5))
    >>> result = hc.repair(dataset, constraints)        # doctest: +SKIP
    >>> result.repaired                                  # doctest: +SKIP
    """

    def __init__(self, config: HoloCleanConfig | None = None):
        self.config = config or HoloCleanConfig()

    # ------------------------------------------------------------------
    def repair(
        self,
        dataset: Dataset,
        constraints: list[DenialConstraint],
        dictionaries: list[ExternalDictionary] = (),
        matching_dependencies: list[MatchingDependency] = (),
        extra_detectors: list[ErrorDetector] = (),
        detection: DetectionResult | None = None,
    ) -> RepairResult:
        """Run the default plan end to end and return the repair result.

        Parameters
        ----------
        dataset:
            The dirty relation; it is not mutated (repairs land in a copy).
        constraints:
            Denial constraints Σ.
        dictionaries, matching_dependencies:
            Optional external information (Section 4.1's ``ExtDict``).
        extra_detectors:
            Additional error detectors whose findings are unioned with the
            violation detector's.
        detection:
            A precomputed detection result (skips the detect stage); used
            when callers share detection across configurations.
        """
        ctx = self.context(
            dataset,
            constraints,
            dictionaries=dictionaries,
            matching_dependencies=matching_dependencies,
            extra_detectors=extra_detectors,
            detection=detection,
        )
        return RepairPlan.default().run(ctx).result

    def context(
        self,
        dataset: Dataset,
        constraints: list[DenialConstraint],
        dictionaries: list[ExternalDictionary] = (),
        matching_dependencies: list[MatchingDependency] = (),
        extra_detectors: list[ErrorDetector] = (),
        detection: DetectionResult | None = None,
    ) -> RepairContext:
        """A fresh :class:`RepairContext` for staged execution.

        Use this instead of :meth:`repair` to keep the intermediate
        artifacts (detection, compiled model, weights, marginals) for
        partial re-runs.
        """
        return RepairContext(
            dataset=dataset,
            constraints=list(constraints),
            config=self.config,
            dictionaries=list(dictionaries),
            matching_dependencies=list(matching_dependencies),
            extra_detectors=list(extra_detectors),
            detection=detection,
        )
