"""The staged repair API: Detect → Compile → Learn → Infer → Apply.

Figure 2 of the paper describes HoloClean as explicit modules (error
detection, compilation, repair); this module makes that decomposition
the public API instead of a private method chain.  One
:class:`RepairContext` carries the evolving state of a repair — the
dirty dataset, the configuration, the shared grounding
:class:`~repro.engine.Engine`, the
:class:`~repro.detect.base.DetectionResult`, the compiled model,
learned weights, marginals, and finally the
:class:`~repro.core.repair.RepairResult` — and five stage objects each
transform that context:

* :class:`DetectStage` — denial-constraint violations plus any extra
  detectors split the dataset into noisy and clean cells;
* :class:`CompileStage` — Algorithm 2 pruning, featurization, and (in
  factor variants) Algorithm 1 grounding produce a
  :class:`~repro.core.compiler.CompiledModel`;
* :class:`LearnStage` — ERM over the evidence cells (plus any
  user-feedback evidence recorded on the context);
* :class:`InferStage` — exact softmax marginals, or Gibbs sampling when
  constraint factors are present;
* :class:`ApplyStage` — MAP assignment per noisy cell, feedback clamps,
  and packaging into a :class:`~repro.core.repair.RepairResult`.

A :class:`RepairPlan` composes stages; :meth:`RepairPlan.default` is
the paper's pipeline.  Because every artifact lives on the context,
callers can re-enter anywhere: keep a context's detection and re-run
compilation under a different configuration, or keep its compiled
model and re-run only learn → infer → apply (the Section 2.2 feedback
loop — :class:`~repro.core.session.RepairSession` is built exactly
this way).  Stages that find their artifact already on the context
skip themselves, so re-running a full plan on a warm context only
repeats the learning half.

Each stage records its wall-clock under its name in
``RepairContext.timings``; :meth:`RepairContext.phase_timings` folds
those into the three phases the paper reports (detection /
compilation / learning+inference), which is what lands in
``RepairResult.timings``.

Telemetry (:mod:`repro.obs`) is threaded through the same objects: the
context carries a :class:`~repro.obs.trace.Tracer` (built lazily from
``HoloCleanConfig.trace_level`` / ``trace_memory``) and a
:class:`~repro.obs.metrics.MetricsRegistry`; :meth:`Stage.run` opens
one span per stage, each stage records its headline numbers in the
registry, and :class:`ApplyStage` packages everything into the
:class:`~repro.obs.report.RunReport` attached to the result.  Tracing
is observational only — a traced run is byte-identical to an untraced
one.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.matching import MatchingDependency
from repro.core.compiler import CompiledModel, ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.core.repair import CellInference, RepairResult
from repro.dataset.dataset import Cell, Dataset
from repro.detect.base import DetectionResult, ErrorDetector
from repro.detect.violations import ViolationDetector
from repro.engine import Engine
from repro.external.dictionary import ExternalDictionary
from repro.inference.gibbs import GibbsSampler
from repro.inference.softmax import SoftmaxTrainer, TrainingResult
from repro.obs import MetricsRegistry, Tracer, build_run_report
from repro.obs.fingerprint import (
    combine_fingerprints,
    config_fingerprint,
    constraints_fingerprint,
    dataset_fingerprint,
)

#: Stage names of the default plan, in pipeline order.
STAGE_ORDER = ("detect", "compile", "learn", "infer", "apply")

#: Context artifact → human-readable description, used by
#: :meth:`RepairPlan.run` to name exactly what a partial re-entry is
#: missing (e.g. ``starting_at("learn")`` with no compiled model).
ARTIFACT_LABELS = {
    "detection": "DetectionResult",
    "model": "CompiledModel",
    "weights": "learned weights",
    "marginals": "inferred marginals",
    "result": "RepairResult",
}

#: Context artifact → the stage of the default plan that produces it.
ARTIFACT_PRODUCERS = {
    "detection": "detect",
    "model": "compile",
    "weights": "learn",
    "marginals": "infer",
    "result": "apply",
}


@dataclass
class RepairContext:
    """Shared state threaded through the stages of one repair.

    The first block is the problem statement (immutable inputs); the
    second block is filled in by the stages; the third block carries
    Section 2.2 user feedback for :class:`LearnStage` /
    :class:`ApplyStage` to fold in.  Artifacts persist across plan
    runs, which is what makes partial re-runs (reused detection,
    reused model) possible — clear a field to force its stage to
    recompute.
    """

    # --- inputs -----------------------------------------------------------
    dataset: Dataset
    constraints: list[DenialConstraint]
    config: HoloCleanConfig = field(default_factory=HoloCleanConfig)
    dictionaries: list[ExternalDictionary] = field(default_factory=list)
    matching_dependencies: list[MatchingDependency] = field(default_factory=list)
    extra_detectors: list[ErrorDetector] = field(default_factory=list)

    # --- artifacts produced by the stages --------------------------------
    engine: Engine | None = None
    detection: DetectionResult | None = None
    model: CompiledModel | None = None
    weights: np.ndarray | None = None
    losses: list[float] = field(default_factory=list)
    marginals: dict[int, np.ndarray] | None = None
    result: RepairResult | None = None
    #: Per-stage wall-clock, keyed by stage name; a stage overwrites its
    #: entry every time it runs.  Skipped stages leave no entry (their
    #: status lands in :attr:`stage_status` instead).
    timings: dict[str, float] = field(default_factory=dict)

    # --- telemetry ---------------------------------------------------------
    #: Trace spans of this repair; built lazily from the config's
    #: ``trace_level`` / ``trace_memory`` knobs (``None`` when tracing is
    #: off).  Shared across plan runs on the same context, so re-entries
    #: append their spans to the same trace.
    tracer: Tracer | None = None
    #: Named counters/gauges/labels/series recorded by the stages.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Stage name → ``"ran"`` or ``"skipped"`` for the most recent plan
    #: run — a skipped stage (artifact already on the context) is
    #: explicitly distinguishable from one that ran instantly.
    stage_status: dict[str, str] = field(default_factory=dict)

    # --- user feedback (Section 2.2) --------------------------------------
    #: Cell → user-verified value.  In-domain values become labeled
    #: evidence in :class:`LearnStage` and clamps in :class:`ApplyStage`;
    #: out-of-domain values are applied to the repaired dataset directly.
    feedback: dict[Cell, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def ensure_engine(self) -> Engine | None:
        """The shared grounding engine (or ``None`` when disabled).

        One columnar encoding of the dirty dataset feeds detection,
        pruning, featurization, and DC-factor pair enumeration; it is
        built lazily on first demand and cached on the context.
        """
        if self.engine is None and self.config.use_engine:
            self.engine = Engine(
                self.dataset,
                backend=self.config.engine_backend,
                parallel_workers=self.config.parallel_workers,
            )
        return self.engine

    def ensure_tracer(self) -> Tracer | None:
        """The repair's tracer (or ``None`` when ``trace_level="off"``).

        Built lazily on first demand from the config's knobs and cached
        on the context, like the engine.
        """
        if self.tracer is None and self.config.trace_level != "off":
            self.tracer = Tracer(
                level=self.config.trace_level, memory=self.config.trace_memory
            )
        return self.tracer

    def span(self, name: str, **attributes):
        """A stage-level span context manager (no-op when tracing is off)."""
        tracer = self.ensure_tracer()
        if tracer is None:
            return nullcontext(None)
        return tracer.span(name, **attributes)

    def fingerprints(self) -> dict[str, str]:
        """Content hashes of the repair's inputs.

        ``dataset`` and ``constraints`` identify *what* is being
        repaired (the serving session key); ``config`` identifies *how*
        (the same fingerprint stamped on every
        :class:`~repro.obs.report.RunReport`).  Stable across processes
        and object identities — two contexts built from equal inputs
        fingerprint identically.
        """
        return {
            "dataset": dataset_fingerprint(self.dataset),
            "constraints": constraints_fingerprint(self.constraints),
            "config": config_fingerprint(self.config),
        }

    def content_fingerprint(self) -> str:
        """One stable token for (dataset, constraints, config).

        Shared by the serving session store and checkpoint filenames
        (:mod:`repro.serve`); see :meth:`fingerprints` for the
        components.
        """
        parts = self.fingerprints()
        return combine_fingerprints(
            parts["dataset"], parts["constraints"], parts["config"]
        )

    def phase_timings(self) -> dict[str, float]:
        """Stage timings folded into the paper's three reported phases."""
        repair = sum(
            self.timings.get(name, 0.0) for name in ("learn", "infer", "apply")
        )
        return {
            "detect": self.timings.get("detect", 0.0),
            "compile": self.timings.get("compile", 0.0),
            "repair": repair,
        }


@dataclass
class FeedbackEvidence:
    """User feedback resolved against a compiled model's variables."""

    extra_ids: list[int] = field(default_factory=list)
    extra_labels: list[int] = field(default_factory=list)
    clamps: dict[int, int] = field(default_factory=dict)
    out_of_domain: dict[Cell, str] = field(default_factory=dict)


def resolve_feedback(
    model: CompiledModel,
    feedback: dict[Cell, str],
) -> FeedbackEvidence:
    """Split verified cells into labeled evidence, clamps, and direct edits.

    Verified values inside a variable's candidate domain become strong
    supervision (extra evidence for :class:`LearnStage`) and clamps
    (:class:`ApplyStage` forces the one-hot marginal); values outside
    the domain cannot be expressed in the model and are applied to the
    repaired dataset as-is.  Cells with no variable are ignored.
    """
    resolved = FeedbackEvidence()
    for cell, value in feedback.items():
        info = model.graph.variables.by_cell(cell)
        if info is None:
            continue
        index = info.candidate_index(value)
        if index is None:
            resolved.out_of_domain[cell] = value
            continue
        resolved.extra_ids.append(info.vid)
        resolved.extra_labels.append(index)
        resolved.clamps[info.vid] = index
    return resolved


class Stage:
    """One pipeline stage: a callable ``run(ctx) -> ctx`` with timing.

    Subclasses implement :meth:`execute`; :meth:`run` wraps it with a
    trace span and a wall-clock measurement recorded under :attr:`name`
    in ``ctx.timings``.  A stage whose :meth:`should_run` returns False
    is skipped entirely: any previously recorded timing stays intact,
    no timing is fabricated, and ``ctx.stage_status`` records
    ``"skipped"`` so a skip is distinguishable from an instant run.

    :attr:`requires` / :attr:`provides` declare the context artifacts a
    stage consumes and produces (by ``RepairContext`` field name);
    :meth:`RepairPlan.run` validates them up front so a partial
    re-entry with a missing prerequisite fails with a ``ValueError``
    naming the artifact instead of failing deep inside the stage.
    """

    name: str = "stage"
    #: Context artifacts that must be present before this stage runs.
    requires: tuple[str, ...] = ()
    #: Context artifacts this stage fills in.
    provides: tuple[str, ...] = ()

    def run(self, ctx: RepairContext) -> RepairContext:
        if not self.should_run(ctx):
            ctx.stage_status[self.name] = "skipped"
            return ctx
        ctx.stage_status[self.name] = "ran"
        started = time.perf_counter()
        with ctx.span(self.name):
            ctx = self.execute(ctx)
        ctx.timings[self.name] = time.perf_counter() - started
        return ctx

    def __call__(self, ctx: RepairContext) -> RepairContext:
        return self.run(ctx)

    def should_run(self, ctx: RepairContext) -> bool:
        """False when the stage's artifact is already on the context."""
        return True

    def execute(self, ctx: RepairContext) -> RepairContext:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DetectStage(Stage):
    """Error detection: violations ∪ extra detectors → noisy cells.

    Skips itself when the context already carries a detection result
    (precomputed or kept from an earlier run).
    """

    name = "detect"
    provides = ("detection",)

    def should_run(self, ctx: RepairContext) -> bool:
        return ctx.detection is None

    def execute(self, ctx: RepairContext) -> RepairContext:
        detector = ViolationDetector(ctx.constraints, engine=ctx.ensure_engine())
        detection = detector.detect(ctx.dataset)
        for detector in ctx.extra_detectors:
            detection.merge(detector.detect(ctx.dataset))
        ctx.detection = detection
        ctx.metrics.gauge("detect.noisy_cells", len(detection.noisy_cells))
        ctx.metrics.gauge("detect.violations", len(detection.hypergraph))
        return ctx


class CompileStage(Stage):
    """Compilation: signals → grounded probabilistic model.

    Skips itself when the context already carries a compiled model;
    clear ``ctx.model`` to force recompilation (e.g. after changing
    the configuration).
    """

    name = "compile"
    requires = ("detection",)
    provides = ("model",)

    def should_run(self, ctx: RepairContext) -> bool:
        return ctx.model is None

    def execute(self, ctx: RepairContext) -> RepairContext:
        if ctx.detection is None:
            raise RuntimeError("run DetectStage first: context has no detection")
        compiler = ModelCompiler(
            ctx.dataset,
            ctx.constraints,
            ctx.config,
            ctx.detection,
            dictionaries=ctx.dictionaries,
            matching_dependencies=ctx.matching_dependencies,
            engine=ctx.ensure_engine(),
        )
        ctx.model = compiler.compile()
        report = ctx.model.size_report()
        ctx.metrics.ingest(report, prefix="compile.")
        ctx.metrics.gauge(
            "compile.pairs_enumerated", int(report.get("grounding_pairs", 0))
        )
        ctx.metrics.gauge(
            "compile.factors_emitted", int(report.get("constraint_factors", 0))
        )
        ctx.metrics.gauge(
            "compile.feature_entries", int(report.get("feature_entries", 0))
        )
        return ctx


class LearnStage(Stage):
    """Weight learning: ERM over evidence cells plus feedback evidence."""

    name = "learn"
    requires = ("model",)
    provides = ("weights",)

    def execute(self, ctx: RepairContext) -> RepairContext:
        if ctx.model is None:
            raise RuntimeError("run CompileStage first: context has no model")
        resolved = resolve_feedback(ctx.model, ctx.feedback)
        outcome = self.train(
            ctx.model,
            ctx.config,
            extra_ids=resolved.extra_ids,
            extra_labels=resolved.extra_labels,
        )
        ctx.weights = outcome.weights
        ctx.losses = outcome.losses
        ctx.metrics.extend("learn.epoch_loss", outcome.losses)
        ctx.metrics.gauge("learn.epochs", len(outcome.losses))
        if outcome.losses:
            ctx.metrics.gauge("learn.final_loss", outcome.losses[-1])
        return ctx

    @staticmethod
    def train(
        model: CompiledModel,
        config: HoloCleanConfig,
        extra_ids: list[int] = (),
        extra_labels: list[int] = (),
    ) -> TrainingResult:
        """Fit the model's weights with the minimality prior held out.

        The minimality prior is an inference-time prior over repair
        decisions ("a positive constant", Section 4.2), not a learnable
        part of the likelihood: since every training label *is* the
        initial value, letting the prior participate in the
        training-time scores makes it absorb the labels and starves the
        genuine signals (co-occurrence, source reliability) of
        gradient.  We therefore pin it to 0 during the fit and restore
        the configured constant for inference.  ``extra_ids`` /
        ``extra_labels`` append user-verified cells as strong
        supervision.
        """
        space = model.graph.space
        fixed = space.fixed_weights
        minimality_idx = space.get(("minimality",))
        if minimality_idx is not None:
            fixed[minimality_idx] = 0.0
        trainer = SoftmaxTrainer(
            model.graph.matrix,
            epochs=config.epochs,
            learning_rate=config.learning_rate,
            l2=config.l2,
            max_training_vars=config.max_training_cells,
            seed=config.seed,
            fixed_weights=fixed,
        )
        outcome = trainer.train(
            model.evidence_ids + list(extra_ids),
            model.evidence_labels + list(extra_labels),
        )
        if minimality_idx is not None:
            outcome.weights[minimality_idx] = config.minimality_weight
        return outcome


class InferStage(Stage):
    """Marginal inference: exact softmax, or Gibbs when factors exist."""

    name = "infer"
    requires = ("model", "weights")
    provides = ("marginals",)

    def execute(self, ctx: RepairContext) -> RepairContext:
        if ctx.model is None or ctx.weights is None:
            raise RuntimeError("run LearnStage first: context has no weights")
        model, config = ctx.model, ctx.config
        if model.graph.factors:
            sampler = GibbsSampler(model.graph, ctx.weights, seed=config.seed)
            outcome = sampler.run(
                burn_in=config.gibbs_burn_in,
                sweeps=config.gibbs_sweeps,
            )
            ctx.marginals = outcome.marginals
            ctx.metrics.label("infer.method", "gibbs")
            ctx.metrics.gauge("infer.gibbs_sweeps", outcome.sweeps)
            ctx.metrics.gauge("infer.gibbs_samples", outcome.samples)
            ctx.metrics.gauge("infer.gibbs_moves", outcome.moves)
            ctx.metrics.gauge("infer.gibbs_move_rate", outcome.move_rate)
        else:
            trainer = SoftmaxTrainer(model.graph.matrix)
            ctx.marginals = trainer.marginals(ctx.weights, model.query_ids)
            ctx.metrics.label("infer.method", "softmax")
        ctx.metrics.gauge("infer.query_variables", len(model.query_ids))
        return ctx


class ApplyStage(Stage):
    """MAP assignment and packaging into a :class:`RepairResult`.

    Feedback clamps force verified cells to their one-hot marginal;
    out-of-domain feedback values are written to the repaired dataset
    directly.  The result's ``timings`` report the three paper phases
    (including this stage's own wall-clock, folded in after the run).
    """

    name = "apply"
    requires = ("model", "marginals")
    provides = ("result",)

    def run(self, ctx: RepairContext) -> RepairContext:
        ctx = super().run(ctx)
        # Re-fold timings now that this stage's own cost is recorded,
        # then snapshot the full telemetry bundle onto the result.
        if ctx.result is not None:
            ctx.result.timings = ctx.phase_timings()
            ctx.result.report = build_run_report(ctx)
        return ctx

    def execute(self, ctx: RepairContext) -> RepairContext:
        if ctx.model is None or ctx.marginals is None:
            raise RuntimeError("run InferStage first: context has no marginals")
        model, dataset = ctx.model, ctx.dataset
        resolved = resolve_feedback(model, ctx.feedback)
        repaired = dataset.copy(name=f"{dataset.name}-repaired")
        inferences: dict[Cell, CellInference] = {}
        for vid in model.query_ids:
            info = model.graph.variables[vid]
            if vid in resolved.clamps:
                index = resolved.clamps[vid]
                marginal = np.zeros(info.domain_size)
                marginal[index] = 1.0
            else:
                marginal = ctx.marginals[vid]
                index = int(np.argmax(marginal))
            chosen = info.domain[index]
            inference = CellInference(
                cell=info.cell,
                init_value=dataset.cell_value(info.cell),
                chosen_value=chosen,
                confidence=float(marginal[index]),
                domain=list(info.domain),
                marginal=np.asarray(marginal, dtype=np.float64),
            )
            inferences[info.cell] = inference
            if inference.is_repair:
                repaired.set_value(info.cell.tid, info.cell.attribute, chosen)

        # Feedback values outside the candidate domain are applied as-is.
        for cell, value in resolved.out_of_domain.items():
            repaired.set_value(cell.tid, cell.attribute, value)
            inferences[cell] = CellInference(
                cell=cell,
                init_value=dataset.cell_value(cell),
                chosen_value=value,
                confidence=1.0,
                domain=[value],
                marginal=np.array([1.0]),
            )

        # ``timings`` is folded in by run() once this stage's own
        # wall-clock is recorded.
        ctx.result = RepairResult(
            repaired=repaired,
            inferences=inferences,
            size_report=model.size_report(),
            training_losses=list(ctx.losses),
            config=ctx.config,
        )
        ctx.metrics.gauge("apply.noisy_cells", len(inferences))
        ctx.metrics.gauge("apply.repairs", ctx.result.num_repairs)
        return ctx


class RepairPlan:
    """An ordered composition of stages applied to one context.

    :meth:`default` is the paper's pipeline; :meth:`starting_at`
    slices a suffix for partial re-runs (e.g. ``starting_at("learn")``
    to reuse a context's detection and model and redo only
    learn → infer → apply).
    """

    def __init__(self, stages: list[Stage]):
        self.stages = list(stages)

    @classmethod
    def default(cls) -> "RepairPlan":
        stages = [
            DetectStage(),
            CompileStage(),
            LearnStage(),
            InferStage(),
            ApplyStage(),
        ]
        return cls(stages)

    # ------------------------------------------------------------------
    @property
    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def starting_at(self, name: str) -> "RepairPlan":
        """The sub-plan from the named stage onward.

        The slice itself cannot know whether the context it will later
        receive carries the artifacts the skipped prefix would have
        produced, so the prerequisite check happens in :meth:`run`:
        running the sub-plan on a context that is missing one (e.g.
        re-entering at ``learn`` with no compiled model) raises a
        ``ValueError`` naming the missing artifact before any stage
        executes.
        """
        names = self.stage_names
        if name not in names:
            raise ValueError(f"no stage named {name!r}; plan has {names}")
        return RepairPlan(self.stages[names.index(name) :])

    def missing_requirements(self, ctx: RepairContext) -> list[tuple[str, str]]:
        """``(stage name, artifact)`` pairs this run would find absent.

        Walks the plan in order, tracking which artifacts are already on
        the context and which each non-skipping stage will produce, so a
        requirement satisfied by an *earlier stage of this same plan*
        does not count as missing.
        """
        available = {
            artifact
            for artifact in ARTIFACT_LABELS
            if getattr(ctx, artifact, None) is not None
        }
        missing: list[tuple[str, str]] = []
        for stage in self.stages:
            if not stage.should_run(ctx):
                continue
            for artifact in stage.requires:
                if artifact not in available:
                    missing.append((stage.name, artifact))
            available.update(stage.provides)
        return missing

    def validate(self, ctx: RepairContext) -> None:
        """Raise ``ValueError`` if the context cannot support this plan.

        This is the error surface partial re-entry rests on: the serving
        layer maps it to a client error (HTTP 400), distinct from a
        failure inside a stage (HTTP 500).
        """
        missing = self.missing_requirements(ctx)
        if missing:
            stage_name, artifact = missing[0]
            producer = ARTIFACT_PRODUCERS[artifact]
            raise ValueError(
                f"cannot run stage {stage_name!r}: context has no "
                f"{ARTIFACT_LABELS[artifact]} (ctx.{artifact} is None) — "
                f"run the {producer!r} stage first, e.g. "
                f"RepairPlan.default().starting_at({producer!r}), or "
                f"rehydrate the context from a checkpoint"
            )

    def run(self, ctx: RepairContext) -> RepairContext:
        self.validate(ctx)
        for stage in self.stages:
            ctx = stage.run(ctx)
        return ctx

    def __call__(self, ctx: RepairContext) -> RepairContext:
        return self.run(ctx)

    def __repr__(self) -> str:
        return f"RepairPlan({' -> '.join(self.stage_names)})"
