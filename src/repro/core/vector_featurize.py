"""Vectorized featurization: set-at-a-time grounding of the unary rules.

The original HoloClean grounds the inference rules of Section 4.2 as
set-oriented queries inside DeepDive; the naive reproduction replays them
as per-(cell, candidate) Python loops (:mod:`repro.core.featurize`).  With
detection, pruning, pair enumeration and factor tables vectorized, those
loops dominate ``ModelCompiler.compile``; :class:`VectorFeaturizer` is the
equivalent set-at-a-time stage over the engine's
:class:`~repro.engine.store.ColumnStore`:

* candidate grids are gathered per attribute from the ``domain_code_index``
  CSR (one gather per attribute instead of one Python walk per cell);
* minimality and frequency (leave-one-out included) become array
  comparisons against the engine's per-code value counts;
* pair-tied co-occurrence is answered by binary-searching the engine's
  bincount joint tables (:meth:`EngineStatistics.joint_code_counts`);
* source-reliability votes reduce to one group-by over the entity key;
* denial-constraint features run the engine's partner joins and the
  code-space predicate evaluators shared with
  :class:`~repro.core.factor_tables.VectorFactorTableBuilder`
  (constraints with binary similarity predicates fall back to the naive
  featurizer, as do external-dictionary matches).

The output is **byte-identical** to the naive featurizer stack: the same
:class:`~repro.inference.features.FeatureSpace` key allocation order, the
same row order, and the same per-row entry order and values.  Each family
emits ``(var, candidate, within-rank, key token, value)`` entry arrays;
one global merge re-establishes the naive loop's interleaving — feature
keys are allocated in first-appearance order of the
(variable, featurizer, candidate, entry) stream, rows store entries in
(featurizer, entry) order — and everything lands through one batched
:meth:`FeatureMatrixBuilder.add_entries` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, TupleRef
from repro.core.factor_tables import CodeSpace
from repro.core.featurize import (
    ConstraintFeaturizer,
    CooccurFeaturizer,
    FeaturizationContext,
    Featurizer,
    FrequencyFeaturizer,
    MinimalityFeaturizer,
    SourceFeaturizer,
    default_featurizers,
)
from repro.dataset.dataset import Cell
from repro.engine import ops
from repro.inference.features import FeatureMatrixBuilder
from repro.obs.trace import deep_span

_ORDER_OPS = (Operator.LT, Operator.GT, Operator.LTE, Operator.GTE)


@dataclass
class _Entries:
    """One batch of sparse feature entries, pre-merge.

    ``within`` orders entries inside one (variable, candidate,
    featurizer) group — it reproduces the order the naive featurizer's
    per-candidate list would carry, and only needs to be *sortable*, not
    dense.  ``token`` indexes ``keys`` (batch-local weight keys; the
    merge dedups equal keys across batches through the feature space).
    """

    rank: int
    var: np.ndarray
    cand: np.ndarray
    within: np.ndarray
    token: np.ndarray
    value: np.ndarray
    keys: list[Hashable]


@dataclass
class _AttrBlock:
    """All variables of one attribute, columnarised.

    ``flat_*`` arrays have one element per (variable, candidate) row, in
    row order; candidate codes live in the attribute's own dictionary,
    extended in place for candidate values absent from the data.
    """

    attribute: str
    var_idx: np.ndarray
    tids: np.ndarray
    sizes: np.ndarray
    flat_var: np.ndarray
    flat_cand: np.ndarray
    flat_code: np.ndarray
    flat_init: np.ndarray
    values: list[str]  # extended code → value


class VectorFeaturizer:
    """Grounds the whole featurizer stack set-at-a-time over the engine.

    Parameters mirror what :meth:`ModelCompiler.compile` hands the naive
    stack: the shared :class:`FeaturizationContext` (dataset, statistics,
    config, matched relations) and the denial constraints.  The actual
    featurizer composition is taken from :func:`default_featurizers`, so
    toggled-off families behave exactly as in the naive path; families
    without a vectorized implementation run through a naive adapter that
    feeds the same merge, keeping the output byte-identical under any
    configuration.
    """

    def __init__(self, engine, context: FeaturizationContext,
                 constraints: list[DenialConstraint]):
        self.engine = engine
        self.context = context
        self.constraints = list(constraints)
        self._stats = engine.statistics()
        self._blocks: dict[str, _AttrBlock] = {}
        self._domains_by_attr: dict[str, dict[Cell, list[str]]] = {}
        self._specs: list[tuple[Cell, list[str]]] = []
        self._spaces: dict[tuple[str, ...], CodeSpace] = {}
        self._space_cands: dict[tuple[int, str], np.ndarray] = {}
        self._joint_cache: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        #: Featurization counters surfaced as ``grounding_feature_*``.
        self.stats: dict[str, int | str] = {}

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def featurize(self, specs: list[tuple[Cell, list[str]]],
                  builder: FeatureMatrixBuilder) -> dict[str, int | str]:
        """Ground features for all variables and land them in ``builder``.

        ``specs`` lists ``(cell, domain)`` per variable in variable-id
        order (the order the compiler registered them); entries arrive
        through one batched :meth:`FeatureMatrixBuilder.add_entries`
        call, byte-identical to the naive per-cell loop.
        """
        self._specs = list(specs)
        self._build_blocks()
        stack = default_featurizers(self.context, self.constraints)
        batches: list[_Entries] = []
        vectorized = naive = 0
        for rank, featurizer in enumerate(stack):
            with deep_span("featurize.family",
                           family=type(featurizer).__name__) as sp:
                family = self._family(featurizer, rank)
                if family is None:
                    family = [self._naive_entries(rank, featurizer)]
                    naive += 1
                else:
                    vectorized += 1
                batches.extend(family)
                if sp is not None:
                    sp.attributes["entries"] = int(
                        sum(len(b.var) for b in family))
        with deep_span("featurize.emit", batches=len(batches)):
            emitted = self._emit(batches, builder)
        self.stats.update({
            "feature_path": "vector",
            "feature_rows": int(sum(len(d) for _, d in self._specs)),
            "feature_entries": emitted,
            "feature_vector_families": vectorized,
            "feature_naive_families": naive,
        })
        self.stats.setdefault("feature_dc_fallbacks", 0)
        return dict(self.stats)

    def _family(self, featurizer: Featurizer, rank: int) -> list[_Entries] | None:
        kind = type(featurizer)
        if kind is MinimalityFeaturizer:
            return self._minimality(rank)
        if kind is FrequencyFeaturizer:
            return self._frequency(rank)
        if kind is CooccurFeaturizer:
            return self._cooccur(rank)
        if kind is SourceFeaturizer:
            return self._source(rank)
        if kind is ConstraintFeaturizer:
            return self._constraint(featurizer, rank)
        return None  # external matches and unknown subclasses: naive adapter

    # ------------------------------------------------------------------
    # Shared per-attribute artifacts
    # ------------------------------------------------------------------
    def _build_blocks(self) -> None:
        store = self.engine.store
        domains_by_attr: dict[str, dict[Cell, list[str]]] = {}
        vars_by_attr: dict[str, list[int]] = {}
        for vid, (cell, domain) in enumerate(self._specs):
            domains_by_attr.setdefault(cell.attribute, {})[cell] = domain
            vars_by_attr.setdefault(cell.attribute, []).append(vid)
        self._domains_by_attr = domains_by_attr
        for attr, vids in vars_by_attr.items():
            codebook = {v: i for i, v in enumerate(store.values(attr))}
            csr = store.domain_code_index(attr, domains_by_attr[attr], codebook)
            var_idx = np.asarray(vids, dtype=np.int64)
            tids = np.asarray([self._specs[v][0].tid for v in vids],
                              dtype=np.int64)
            sizes = np.asarray([len(self._specs[v][1]) for v in vids],
                               dtype=np.int64)
            positions = ops.expand_ranges(csr.indptr[tids], sizes)
            values: list[str] = [""] * len(codebook)
            for value, code in codebook.items():
                values[code] = value
            self._blocks[attr] = _AttrBlock(
                attribute=attr, var_idx=var_idx, tids=tids, sizes=sizes,
                flat_var=np.repeat(var_idx, sizes),
                flat_cand=ops.segment_positions(sizes),
                flat_code=csr.codes[positions],
                flat_init=np.repeat(
                    store.codes(attr)[tids].astype(np.int64), sizes),
                values=values)

    def _space(self, *attrs: str) -> CodeSpace:
        key = tuple(sorted(set(attrs)))
        space = self._spaces.get(key)
        if space is None:
            space = CodeSpace(self.engine.store, key, self._domains_by_attr)
            self._spaces[key] = space
        return space

    def _cand_codes_in(self, space: CodeSpace, block: _AttrBlock) -> np.ndarray:
        """The block's flat candidate codes re-coded into ``space``."""
        key = (id(space), block.attribute)
        cached = self._space_cands.get(key)
        if cached is None:
            csr = space.csr(block.attribute)
            positions = ops.expand_ranges(csr.indptr[block.tids], block.sizes)
            cached = csr.codes[positions]
            self._space_cands[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Families
    # ------------------------------------------------------------------
    def _minimality(self, rank: int) -> list[_Entries]:
        out = []
        for block in self._blocks.values():
            hit = block.flat_code == block.flat_init
            n = int(hit.sum())
            if not n:
                continue
            out.append(_Entries(
                rank, block.flat_var[hit], block.flat_cand[hit],
                np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64),
                np.ones(n, dtype=np.float64), keys=[("minimality",)]))
        return out

    def _frequency(self, rank: int) -> list[_Entries]:
        out = []
        for attr, block in self._blocks.items():
            counts = self._stats.code_counts(attr)
            total = int(counts.sum())
            padded = np.zeros(max(len(block.values), 1), dtype=np.int64)
            padded[:len(counts)] = counts
            count = (padded[block.flat_code]
                     - (block.flat_code == block.flat_init))
            denom = total - (block.flat_init >= 0).astype(np.int64)
            rf = np.zeros(len(count), dtype=np.float64)
            live = denom > 0
            rf[live] = count[live] / denom[live]
            n = len(rf)
            pair = np.tile(np.arange(2, dtype=np.int64), n)
            out.append(_Entries(
                rank, np.repeat(block.flat_var, 2),
                np.repeat(block.flat_cand, 2), pair, pair.copy(),
                np.repeat(rf, 2), keys=[("freq", attr), ("freq*",)]))
        return out

    def _joint_lookup(self, attr: str, other: str, a_codes: np.ndarray,
                      o_codes: np.ndarray) -> np.ndarray:
        """Joint counts of ``(attr=a, other=b)`` code pairs (0 if absent)."""
        cached = self._joint_cache.get((attr, other))
        if cached is None:
            table = self._stats.joint_code_counts(attr, other)
            stride = max(self.engine.store.cardinality(other), 1)
            cached = (table[:, 0] * stride + table[:, 1], table[:, 2])
            self._joint_cache[(attr, other)] = cached
        keys, counts = cached
        if not len(keys):
            return np.zeros(len(a_codes), dtype=np.int64)
        stride = max(self.engine.store.cardinality(other), 1)
        query = a_codes * stride + o_codes
        pos = np.minimum(np.searchsorted(keys, query), len(keys) - 1)
        return np.where(keys[pos] == query, counts[pos], 0)

    def _cooccur(self, rank: int) -> list[_Entries]:
        ctx = self.context
        store = self.engine.store
        schema = ctx.dataset.schema
        tying = ctx.config.cooccur_tying
        smoothing = ctx.config.cooccur_smoothing
        out = []
        for attr, block in self._blocks.items():
            others = [o for o in schema.data_attributes if o != attr]
            for j, other in enumerate(others):
                oc = store.codes(other)[block.tids].astype(np.int64)
                if not (oc >= 0).any():
                    continue  # all-NULL context column: nothing conditions
                if tying == "pair":
                    ocounts = self._stats.code_counts(other)
                    denom = np.where(oc >= 0,
                                     ocounts[np.maximum(oc, 0)] - 1, 0)
                    keep = denom > 0
                else:
                    keep = oc >= 0
                if not keep.any():
                    continue
                keep_flat = np.repeat(keep, block.sizes)
                fvar = block.flat_var[keep_flat]
                fcand = block.flat_cand[keep_flat]
                fcode = block.flat_code[keep_flat]
                focode = np.repeat(oc, block.sizes)[keep_flat]
                if tying == "pair":
                    joint = (self._joint_lookup(attr, other, fcode, focode)
                             - (fcode == block.flat_init[keep_flat]))
                    hit = joint > 0
                    if not hit.any():
                        continue
                    fdenom = np.repeat(denom, block.sizes)[keep_flat]
                    p = joint[hit] / (fdenom[hit] + smoothing)
                    n = int(hit.sum())
                    pair = np.tile(
                        np.arange(2 * j, 2 * j + 2, dtype=np.int64), n)
                    tok = np.tile(np.arange(2, dtype=np.int64), n)
                    out.append(_Entries(
                        rank, np.repeat(fvar[hit], 2),
                        np.repeat(fcand[hit], 2), pair, tok,
                        np.repeat(p, 2),
                        keys=[("cooc", attr, other), ("cooc*",)]))
                else:  # "value": the paper-literal w(d, f) tying
                    card_o = max(store.cardinality(other), 1)
                    enc = fcode * card_o + focode
                    uniq, token = np.unique(enc, return_inverse=True)
                    o_values = store.values(other)
                    keys = [("cooc", attr, block.values[e // card_o],
                             other, o_values[e % card_o])
                            # repro: allow-loop per-unique-code key labels, not per-row
                            for e in uniq.tolist()]
                    out.append(_Entries(
                        rank, fvar, fcand,
                        np.full(len(fvar), j, dtype=np.int64),
                        token.astype(np.int64),
                        np.ones(len(fvar), dtype=np.float64), keys=keys))
        return out

    def _source(self, rank: int) -> list[_Entries]:
        ctx = self.context
        store = self.engine.store
        source_attr = ctx.source_attribute
        entity_attrs = ctx.config.source_entity_attributes
        if source_attr is None or not entity_attrs:
            return []
        # One group-by over the entity key: members sorted by (group, tid).
        ekey = ops.combine_codes([store.codes(a) for a in entity_attrs])
        valid_rows = np.nonzero(ekey >= 0)[0]
        if not len(valid_rows):
            return []
        members = valid_rows[np.argsort(ekey[valid_rows], kind="stable")]
        starts, gsizes = ops.bucket_extents(ekey[members])
        n = len(ekey)
        tid_start = np.full(n, -1, dtype=np.int64)
        tid_size = np.zeros(n, dtype=np.int64)
        tid_start[members] = np.repeat(starts, gsizes)
        tid_size[members] = np.repeat(gsizes, gsizes)
        s_codes = store.codes(source_attr).astype(np.int64)
        source_values = store.values(source_attr)
        src_keys: list[Hashable] = [("src", v) for v in source_values]
        card_s = max(len(source_values), 1)
        out = []
        for attr, block in self._blocks.items():
            a_codes = store.codes(attr).astype(np.int64)
            card_a = max(store.cardinality(attr), 1)
            vstart = tid_start[block.tids]
            vsize = tid_size[block.tids]
            keep = (vstart >= 0) & (vsize >= 2)
            if not keep.any():
                continue
            own_tids = block.tids[keep]
            sizes_kept = vsize[keep]
            # Expand (variable, group member) pairs in ascending-tid order.
            pk = np.repeat(np.arange(len(own_tids), dtype=np.int64),
                           sizes_kept)
            ptid = members[ops.expand_ranges(vstart[keep], sizes_kept)]
            ok = ((ptid != own_tids[pk]) & (a_codes[ptid] >= 0)
                  & (s_codes[ptid] >= 0))
            pk, ptid = pk[ok], ptid[ok]
            if not len(pk):
                continue
            pv, ps = a_codes[ptid], s_codes[ptid]
            # Votes: count per (variable, value, source) plus the first
            # stream position, which fixes the naive Counter's insertion
            # (= first-partner) order.
            uvs, vs_id = np.unique(pv * card_s + ps, return_inverse=True)
            ukey = pk * len(uvs) + vs_id
            uniq, first, counts = np.unique(
                ukey, return_index=True, return_counts=True)
            uk, uvs_idx = uniq // len(uvs), uniq % len(uvs)
            uv, us = uvs[uvs_idx] // card_s, uvs[uvs_idx] % card_s
            order = np.lexsort((first, uv, uk))
            uk, uv, us = uk[order], uv[order], us[order]
            first, counts = first[order], counts[order]
            gkey = uk * card_a + uv  # ascending after the lexsort
            # Join candidates against the vote groups.
            keep_flat = np.repeat(keep, block.sizes)
            fvar = block.flat_var[keep_flat]
            fcand = block.flat_cand[keep_flat]
            fcode = block.flat_code[keep_flat]
            fk = np.repeat(np.arange(len(own_tids), dtype=np.int64),
                           block.sizes[keep])
            in_data = fcode < card_a  # extended codes never gather votes
            query = fk * card_a + np.minimum(fcode, card_a - 1)
            lo = np.searchsorted(gkey, query)
            hi = np.searchsorted(gkey, query, side="right")
            hits = np.where(in_data, hi - lo, 0)
            if not hits.sum():
                continue
            src_pos = ops.expand_ranges(lo, hits)
            out.append(_Entries(
                rank, np.repeat(fvar, hits), np.repeat(fcand, hits),
                first[src_pos], us[src_pos],
                counts[src_pos].astype(np.float64), keys=src_keys))
        return out

    # ------------------------------------------------------------------
    # Denial-constraint features (Section 5.2)
    # ------------------------------------------------------------------
    def _constraint(self, featurizer: ConstraintFeaturizer,
                    rank: int) -> list[_Entries]:
        out: list[_Entries] = []
        fallbacks = 0
        sequence = list(featurizer.constraints) + list(
            featurizer.single_constraints)
        plan: list[tuple[int, DenialConstraint, str]] = []
        for di, dc in enumerate(sequence):
            if not all(p.is_code_comparable for p in dc.predicates):
                mode = "naive"
            elif dc.is_single_tuple:
                mode = "single"
            else:
                mode = "pair"
            plan.append((di, dc, mode))
        sharded = self._dispatch_dcs(rank, sequence, plan)
        for di, dc, mode in plan:
            if mode == "naive":
                out.append(self._naive_dc(rank, di, dc, featurizer))
                fallbacks += 1
            elif sharded is not None:
                out.extend(sharded[di])
            elif mode == "single":
                out.extend(self._single_dc(rank, di, dc))
            else:
                out.extend(self._pair_dc(rank, di, dc))
        self.stats["feature_dc_fallbacks"] = (
            int(self.stats.get("feature_dc_fallbacks", 0)) + fallbacks)
        return out

    def _dispatch_dcs(self, rank: int, sequence, plan):
        """Fan code-comparable DC evaluations out to a sharding backend.

        Each worker rebuilds this featurizer's attribute blocks from the
        shared column store (a deterministic function of the specs) and
        evaluates whole constraints; entry batches merge back in the
        serial walk's (constraint, attribute-block) order.  Returns
        ``{di: [_Entries]}`` for dispatched constraints, or ``None`` to
        keep the serial path (no sharding backend, nothing to dispatch,
        or a broken pool).  Similarity constraints need the naive
        per-cell oracle and always stay parent-side.
        """
        backend = self.engine.backend
        dispatch = getattr(backend, "dc_feature_batches", None)
        if dispatch is None:
            return None
        tasks = [(di, rank, mode) for di, _, mode in plan if mode != "naive"]
        if not tasks:
            return None
        backend.configure(featurize=(
            self._specs, self.constraints, self.context.config, sequence))
        results = dispatch(tasks)
        if results is None:
            return None
        return {di: entries
                for (di, _, _), entries in zip(tasks, results)}

    def _predicate_term(self, pred, lhs_codes: np.ndarray,
                        rhs_codes: np.ndarray | None,
                        space: CodeSpace) -> np.ndarray:
        if isinstance(pred.right, Const):
            lut = pred.constant_mask(space.values)
            return lut[np.maximum(lhs_codes, 0)] & (lhs_codes >= 0)
        keys = space.order_keys if pred.op in _ORDER_OPS else None
        return pred.compare_coded(lhs_codes, rhs_codes, keys)

    def _single_dc(self, rank: int, di: int,
                   dc: DenialConstraint) -> list[_Entries]:
        out = []
        for attr, block in self._blocks.items():
            if attr not in dc.attributes:
                continue
            violated: np.ndarray | None = None
            for pred in dc.predicates:
                attrs = [pred.left.attribute]
                if isinstance(pred.right, TupleRef):
                    attrs.append(pred.right.attribute)
                space = self._space(*attrs)

                def operand(ref_attr: str) -> np.ndarray:
                    if ref_attr == attr:
                        return self._cand_codes_in(space, block)
                    return np.repeat(space.fixed(ref_attr)[block.tids],
                                     block.sizes)

                lhs = operand(pred.left.attribute)
                rhs = (operand(pred.right.attribute)
                       if isinstance(pred.right, TupleRef) else None)
                term = self._predicate_term(pred, lhs, rhs, space)
                violated = term if violated is None else violated & term
                if not violated.any():
                    break
            if violated is None or not violated.any():
                continue
            n = int(violated.sum())
            out.append(_Entries(
                rank, block.flat_var[violated], block.flat_cand[violated],
                np.full(n, di, dtype=np.int64), np.zeros(n, dtype=np.int64),
                np.ones(n, dtype=np.float64), keys=[("dc", dc.name)]))
        return out

    def _pair_dc(self, rank: int, di: int,
                 dc: DenialConstraint) -> list[_Entries]:
        cap_value = self.context.config.dc_feature_cap
        out = []
        for attr, block in self._blocks.items():
            if attr not in dc.attributes:
                continue
            totals = np.zeros(len(block.flat_var), dtype=np.int64)
            for own_pos in (1, 2):
                if attr not in dc.attributes_of(own_pos):
                    continue
                totals += self._count_dc_violations(dc, own_pos, block)
            hit = totals > 0
            if not hit.any():
                continue
            n = int(hit.sum())
            value = (np.minimum(totals[hit].astype(np.float64), cap_value)
                     / cap_value)
            out.append(_Entries(
                rank, block.flat_var[hit], block.flat_cand[hit],
                np.full(n, di, dtype=np.int64), np.zeros(n, dtype=np.int64),
                value, keys=[("dc", dc.name)]))
        return out

    def _count_dc_violations(self, dc: DenialConstraint, own_pos: int,
                             block: _AttrBlock) -> np.ndarray:
        """Violations each candidate completes playing ``own_pos``.

        Mirrors :meth:`ConstraintFeaturizer._count_violations`: partners
        joined on the constraint's equality predicates over *initial*
        values, the variable's own key carrying the candidate value, the
        first ``max_dc_feature_partners`` non-self partners (ascending
        tuple id) checked against the remaining predicates.
        """
        cap = self.context.config.max_dc_feature_partners
        flat_tids = np.repeat(block.tids, block.sizes)
        n_flat = len(flat_tids)
        own_cols: list[np.ndarray] = []
        partner_cols: list[np.ndarray] = []
        for pred in dc.equijoin_predicates:
            own_ref = (pred.left if pred.left.tuple_index == own_pos
                       else pred.right)
            partner_ref = (pred.right if own_ref is pred.left else pred.left)
            space = self._space(own_ref.attribute, partner_ref.attribute)
            partner_cols.append(space.fixed(partner_ref.attribute))
            if own_ref.attribute == block.attribute:
                own_cols.append(self._cand_codes_in(space, block))
            else:
                own_cols.append(space.fixed(own_ref.attribute)[flat_tids])
        if own_cols:
            keys_own, keys_partner = ops.combine_codes_pairwise(
                own_cols, partner_cols)
        else:  # no equality predicate: every tuple is a join partner
            keys_own = np.zeros(n_flat, dtype=np.int64)
            keys_partner = np.zeros(self.engine.store.num_rows,
                                    dtype=np.int64)
        psort = np.argsort(keys_partner, kind="stable")
        sorted_keys = keys_partner[psort]
        lo = np.searchsorted(sorted_keys, keys_own)
        hi = np.searchsorted(sorted_keys, keys_own, side="right")
        bucket = np.where(keys_own >= 0, hi - lo, 0)
        # The naive loop examines at most `cap` non-self partners, so a
        # (cap + 1)-wide window always covers them even with self inside.
        window = np.minimum(bucket, cap + 1)
        total = int(window.sum())
        if total == 0:
            return np.zeros(n_flat, dtype=np.int64)
        eflat = np.repeat(np.arange(n_flat, dtype=np.int64), window)
        ptid = psort[ops.expand_ranges(lo, window)]
        pos = ops.segment_positions(window)
        self_flag = ptid == flat_tids[eflat]
        cum = np.cumsum(self_flag)
        seg_starts = np.concatenate(([0], np.cumsum(window)[:-1]))
        seg_starts = np.minimum(seg_starts, total - 1)
        base = cum - self_flag  # exclusive prefix at each position
        seg_cum = cum - np.repeat(base[seg_starts], window)
        keep = ~self_flag & ((pos - seg_cum) < cap)
        kflat, kptid = eflat[keep], ptid[keep]
        if not len(kflat):
            return np.zeros(n_flat, dtype=np.int64)

        violated = np.ones(len(kflat), dtype=bool)
        for pred in dc.predicates:
            attrs = [pred.left.attribute]
            if isinstance(pred.right, TupleRef):
                attrs.append(pred.right.attribute)
            space = self._space(*attrs)

            def operand(ref) -> np.ndarray:
                if ref.tuple_index == own_pos:
                    if ref.attribute == block.attribute:
                        return self._cand_codes_in(space, block)[kflat]
                    return space.fixed(ref.attribute)[flat_tids[kflat]]
                return space.fixed(ref.attribute)[kptid]

            lhs = operand(pred.left)
            rhs = (operand(pred.right)
                   if isinstance(pred.right, TupleRef) else None)
            violated &= self._predicate_term(pred, lhs, rhs, space)
            if not violated.any():
                return np.zeros(n_flat, dtype=np.int64)
        return np.bincount(kflat[violated], minlength=n_flat)

    def _naive_dc(self, rank: int, di: int, dc: DenialConstraint,
                  featurizer: ConstraintFeaturizer) -> _Entries:
        """One constraint evaluated by the naive oracle (similarity DCs)."""
        config = self.context.config
        dataset = self.context.dataset
        var_l: list[int] = []
        cand_l: list[int] = []
        value_l: list[float] = []
        for vid, (cell, domain) in enumerate(self._specs):
            if cell.attribute not in dc.attributes:
                continue
            if dc.is_single_tuple:
                simulated = dataset.tuple_dict(cell.tid)
                for i, d in enumerate(domain):
                    simulated[cell.attribute] = d
                    if dc.violates(simulated):
                        var_l.append(vid)
                        cand_l.append(i)
                        value_l.append(1.0)
            else:
                for i, d in enumerate(domain):
                    total = (featurizer._count_violations(dc, cell, d, 1)
                             + featurizer._count_violations(dc, cell, d, 2))
                    if total:
                        var_l.append(vid)
                        cand_l.append(i)
                        value_l.append(min(float(total), config.dc_feature_cap)
                                       / config.dc_feature_cap)
        n = len(var_l)
        return _Entries(
            rank, np.asarray(var_l, dtype=np.int64),
            np.asarray(cand_l, dtype=np.int64),
            np.full(n, di, dtype=np.int64), np.zeros(n, dtype=np.int64),
            np.asarray(value_l, dtype=np.float64), keys=[("dc", dc.name)])

    # ------------------------------------------------------------------
    # Naive adapter (external matches, unknown featurizer subclasses)
    # ------------------------------------------------------------------
    def _naive_entries(self, rank: int, featurizer: Featurizer) -> _Entries:
        var_l: list[int] = []
        cand_l: list[int] = []
        within_l: list[int] = []
        token_l: list[int] = []
        value_l: list[float] = []
        tokens: dict[Hashable, int] = {}
        keys: list[Hashable] = []
        for vid, (cell, domain) in enumerate(self._specs):
            per_candidate = featurizer.features(cell, domain)
            for ci, entries in enumerate(per_candidate):
                for wi, (key, value) in enumerate(entries):
                    tok = tokens.get(key)
                    if tok is None:
                        tok = len(keys)
                        tokens[key] = tok
                        keys.append(key)
                    var_l.append(vid)
                    cand_l.append(ci)
                    within_l.append(wi)
                    token_l.append(tok)
                    value_l.append(value)
        return _Entries(
            rank, np.asarray(var_l, dtype=np.int64),
            np.asarray(cand_l, dtype=np.int64),
            np.asarray(within_l, dtype=np.int64),
            np.asarray(token_l, dtype=np.int64),
            np.asarray(value_l, dtype=np.float64), keys=keys)

    # ------------------------------------------------------------------
    # Merge and emission
    # ------------------------------------------------------------------
    def _emit(self, batches: list[_Entries],
              builder: FeatureMatrixBuilder) -> int:
        """Merge family batches into the naive loop's exact entry stream.

        Weight keys are allocated in the first-appearance order of the
        (variable, featurizer, candidate, entry) stream — the order the
        naive ``builder.add`` calls hit ``space.index`` — and rows land
        in (variable, candidate) order with (featurizer, entry)-ordered
        entries, all through one :meth:`add_entries` call.
        """
        batches = [b for b in batches if len(b.var)]
        if not batches:
            return 0
        var = np.concatenate([b.var for b in batches])
        cand = np.concatenate([b.cand for b in batches])
        within = np.concatenate([b.within for b in batches])
        value = np.concatenate([b.value for b in batches])
        rank = np.concatenate([
            np.full(len(b.var), b.rank, dtype=np.int64) for b in batches])
        offsets = np.cumsum([0] + [len(b.keys) for b in batches])
        token = np.concatenate([
            b.token + offset for b, offset in zip(batches, offsets)])
        all_keys: list[Hashable] = [k for b in batches for k in b.keys]

        live = value != 0.0  # the naive loop drops zero-valued entries
        var, cand, within = var[live], cand[live], within[live]
        value, rank, token = value[live], rank[live], token[live]
        if not len(var):
            return 0

        alloc_order = np.lexsort((within, cand, rank, var))
        alloc_tokens = token[alloc_order]
        uniq, first = np.unique(alloc_tokens, return_index=True)
        lut = np.full(int(offsets[-1]), -1, dtype=np.int64)
        # repro: allow-loop per-unique-token LUT fill in first-appearance order
        for tok in uniq[np.argsort(first, kind="stable")].tolist():
            lut[tok] = builder.space.index(all_keys[tok])
        key_idx = lut[token]

        row_order = np.lexsort((within, rank, cand, var))
        builder.add_entries(var[row_order], cand[row_order],
                            key_idx[row_order], value[row_order])
        return int(len(var))
