"""DDlog rendering of HoloClean's compiled program.

HoloClean compiles every signal into DDlog inference rules executed by
DeepDive (Section 4).  Our engine grounds the equivalent model directly,
but this module reproduces the *declarative view*: given a configuration
and constraints it emits the same rules the paper shows, including
Algorithm 1's factor templates (Example 4) and the Section 5.2 relaxation
(Example 6).  The strings double as documentation and as a check that the
compilation logic matches the paper's construction.
"""

from __future__ import annotations

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, Predicate, TupleRef

_DDLOG_OP = {
    Operator.EQ: "=",
    Operator.NEQ: "!=",
    Operator.LT: "<",
    Operator.GT: ">",
    Operator.LTE: "<=",
    Operator.GTE: ">=",
    Operator.SIM: "~",
    Operator.NSIM: "!~",
}


def random_variable_rule() -> str:
    """The rule introducing one categorical variable per cell (§4.2)."""
    return "Value?(t, a, d) :- Domain(t, a, d)"


def quantitative_statistics_rule() -> str:
    return "Value?(t, a, d) :- HasFeature(t, a, f) weight = w(d, f)"


def external_data_rule() -> str:
    return "Value?(t, a, d) :- Matched(t, a, d, k) weight = w(k)"


def minimality_rule() -> str:
    return "Value?(t, a, d) :- InitValue(t, a, d) weight = w"


def _scope_condition(pred: Predicate, var1: str, var2: str | None) -> str:
    op = _DDLOG_OP[pred.op]
    rhs = f'"{pred.right.value}"' if isinstance(pred.right, Const) else var2
    return f"{var1} {op} {rhs}"


def dc_factor_rule(dc: DenialConstraint, weight: float | str = "w") -> str:
    """Algorithm 1: one factor template per denial constraint (Example 4).

    Each predicate contributes ``Value?`` atoms to the negated head and a
    scope condition over the candidate variables.
    """
    head_atoms: list[str] = []
    scope: list[str] = []
    var_names: dict[tuple[int, str], str] = {}

    def var_for(ref: TupleRef) -> str:
        key = (ref.tuple_index, ref.attribute)
        if key not in var_names:
            var_names[key] = f"v{len(var_names) + 1}"
            head_atoms.append(
                f"Value?(t{ref.tuple_index}, {ref.attribute}, {var_names[key]})")
        return var_names[key]

    for pred in dc.predicates:
        left_var = var_for(pred.left)
        if isinstance(pred.right, TupleRef):
            right_var = var_for(pred.right)
            scope.append(_scope_condition(pred, left_var, right_var))
        else:
            scope.append(_scope_condition(pred, left_var, None))

    body = "Tuple(t1)" if dc.is_single_tuple else "Tuple(t1), Tuple(t2)"
    head = " ^ ".join(head_atoms)
    return f"!({head}) :- {body}, [{', '.join(scope)}] weight = {weight}"


def relaxed_dc_rules(dc: DenialConstraint) -> list[str]:
    """Section 5.2: decompose a DC rule into per-variable relaxed rules.

    For each ``Value?`` predicate of the Algorithm 1 template, emit a rule
    whose head keeps only that predicate while all others become
    ``InitValue`` body atoms (Example 6); the weight becomes learnable.
    """
    cell_refs: list[TupleRef] = []
    seen: set[tuple[int, str]] = set()
    for pred in dc.predicates:
        for ref in (pred.left, pred.right):
            if isinstance(ref, TupleRef) and (ref.tuple_index, ref.attribute) not in seen:
                seen.add((ref.tuple_index, ref.attribute))
                cell_refs.append(ref)

    rules: list[str] = []
    for head_ref in cell_refs:
        var_names: dict[tuple[int, str], str] = {}
        body_atoms: list[str] = []
        scope: list[str] = []

        def var_for(ref: TupleRef) -> str:
            key = (ref.tuple_index, ref.attribute)
            if key not in var_names:
                var_names[key] = f"v{len(var_names) + 1}"
                relation = ("Value?" if key == (head_ref.tuple_index,
                                                head_ref.attribute)
                            else "InitValue")
                atom = (f"{relation}(t{ref.tuple_index}, {ref.attribute}, "
                        f"{var_names[key]})")
                if relation == "InitValue":
                    body_atoms.append(atom)
            return var_names[key]

        head_var = var_for(head_ref)
        head = (f"!Value?(t{head_ref.tuple_index}, {head_ref.attribute}, "
                f"{head_var})")
        for pred in dc.predicates:
            left_var = var_for(pred.left)
            if isinstance(pred.right, TupleRef):
                right_var = var_for(pred.right)
                scope.append(_scope_condition(pred, left_var, right_var))
            else:
                scope.append(_scope_condition(pred, left_var, None))

        tuples = "Tuple(t1)" if dc.is_single_tuple else "Tuple(t1), Tuple(t2)"
        body = ", ".join(body_atoms + [tuples])
        extra_scope = [] if dc.is_single_tuple else ["t1 != t2"]
        scope_text = ", ".join(extra_scope + scope)
        rules.append(f"{head} :- {body}, [{scope_text}] weight = w")
    return rules


def compile_program(constraints: list[DenialConstraint], *,
                    use_dc_feats: bool = True, use_dc_factors: bool = False,
                    use_external: bool = False, use_minimality: bool = True,
                    dc_factor_weight: float = 2.0) -> list[str]:
    """The full DDlog listing for a configuration (documentation view)."""
    program = [random_variable_rule(), quantitative_statistics_rule()]
    if use_external:
        program.append(external_data_rule())
    if use_minimality:
        program.append(minimality_rule())
    for dc in constraints:
        if use_dc_factors:
            program.append(dc_factor_rule(dc, dc_factor_weight))
        if use_dc_feats:
            program.extend(relaxed_dc_rules(dc))
    return program
