"""The DDlog relations of Section 4.1, as concrete builders.

HoloClean's compiler first generates the relations ``Tuple``,
``InitValue``, ``Domain``, ``HasFeature``, and (optionally) ``ExtDict`` /
``Matched``; inference rules are then grounded against them.  Our grounding
works directly on these structures; the builders below expose them for
inspection and testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.domain import DomainPruner
from repro.dataset.dataset import Cell, Dataset
from repro.external.matcher import MatchedRelation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine


def tuple_relation(dataset: Dataset) -> range:
    """``Tuple(t)``: all tuple identifiers."""
    return dataset.tuple_ids


def init_value_relation(dataset: Dataset,
                        attributes: list[str] | None = None,
                        engine: "Engine | None" = None) -> dict[Cell, str | None]:
    """``InitValue(t, a, v)``: every cell's initial observed value.

    With an engine, values are decoded column-at-a-time from the columnar
    store instead of probing the row store cell-by-cell; the resulting
    mapping (including its row-major key order) is identical.
    """
    attrs = attributes or dataset.schema.names
    if engine is not None and engine.dataset is dataset:
        columns = {a: engine.store.decoded_column(a) for a in attrs}
        return {
            Cell(tid, a): columns[a][tid]
            for tid in dataset.tuple_ids
            for a in attrs
        }
    return {
        Cell(tid, a): dataset.value(tid, a)
        for tid in dataset.tuple_ids
        for a in attrs
    }


def domain_relation(pruner: DomainPruner, cells) -> dict[Cell, list[str]]:
    """``Domain(t, a, d)``: pruned candidate values per cell (Algorithm 2)."""
    return pruner.domains(cells)


@dataclass
class CompiledRelations:
    """The materialised relations behind one compiled model."""

    dataset: Dataset
    domain: dict[Cell, list[str]]
    matched: list[MatchedRelation] = field(default_factory=list)

    @property
    def num_random_variables(self) -> int:
        return len(self.domain)

    def init_value(self, cell: Cell) -> str | None:
        return self.dataset.cell_value(cell)
