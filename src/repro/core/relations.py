"""The DDlog relations of Section 4.1, as concrete builders.

HoloClean's compiler first generates the relations ``Tuple``,
``InitValue``, ``Domain``, ``HasFeature``, and (optionally) ``ExtDict`` /
``Matched``; inference rules are then grounded against them.  Our grounding
works directly on these structures; the builders below expose them for
inspection and testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.domain import DomainPruner
from repro.dataset.dataset import Cell, Dataset
from repro.external.matcher import MatchedRelation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine


def tuple_relation(dataset: Dataset) -> range:
    """``Tuple(t)``: all tuple identifiers."""
    return dataset.tuple_ids


def init_value_relation(dataset: Dataset,
                        attributes: list[str] | None = None,
                        engine: "Engine | None" = None,
                        cells=None) -> dict[Cell, str | None]:
    """``InitValue(t, a, v)``: every cell's initial observed value.

    With an engine, values are decoded column-at-a-time from the columnar
    store instead of probing the row store cell-by-cell; the resulting
    mapping (including its key order) is identical.  ``cells`` restricts
    the relation to the given cells (in their iteration order) — what the
    compiler uses to materialise exactly the slice of ``InitValue`` its
    variables ground against, instead of all ``|D| × |attrs|`` cells.
    """
    if cells is not None:
        if engine is not None and engine.dataset is dataset:
            columns: dict[str, list[str | None]] = {}
            out: dict[Cell, str | None] = {}
            for cell in cells:
                column = columns.get(cell.attribute)
                if column is None:
                    column = engine.store.decoded_column(cell.attribute)
                    columns[cell.attribute] = column
                out[cell] = column[cell.tid]
            return out
        return {cell: dataset.cell_value(cell) for cell in cells}
    attrs = attributes or dataset.schema.names
    if engine is not None and engine.dataset is dataset:
        full_columns = {a: engine.store.decoded_column(a) for a in attrs}
        return {
            Cell(tid, a): full_columns[a][tid]
            for tid in dataset.tuple_ids
            for a in attrs
        }
    return {
        Cell(tid, a): dataset.value(tid, a)
        for tid in dataset.tuple_ids
        for a in attrs
    }


def domain_relation(pruner: DomainPruner, cells) -> dict[Cell, list[str]]:
    """``Domain(t, a, d)``: pruned candidate values per cell (Algorithm 2)."""
    return pruner.domains(cells)


@dataclass
class CompiledRelations:
    """The materialised relations behind one compiled model.

    ``init_values`` is the materialised ``InitValue`` relation the
    compiler grounded against (column-decoded by the engine when one is
    available); cells outside it — attributes the model never touched —
    fall back to a live dataset probe.
    """

    dataset: Dataset
    domain: dict[Cell, list[str]]
    matched: list[MatchedRelation] = field(default_factory=list)
    init_values: dict[Cell, str | None] = field(default_factory=dict)

    @property
    def num_random_variables(self) -> int:
        return len(self.domain)

    def init_value(self, cell: Cell) -> str | None:
        if cell in self.init_values:
            return self.init_values[cell]
        return self.dataset.cell_value(cell)
