"""Featurizers: translating repair signals into model features (Section 4.2).

Each featurizer grounds one family of DDlog inference rules into sparse
features on (cell, candidate) rows:

* :class:`CooccurFeaturizer` — ``Value?(t,a,d) :- HasFeature(t,a,f)
  weight = w(d,f)``: the values of the tuple's other cells are the
  features capturing quantitative statistics of the dataset.
* :class:`FrequencyFeaturizer` — marginal value frequencies (the empirical
  distribution component of the statistical profile).
* :class:`MinimalityFeaturizer` — ``Value?(t,a,d) :- InitValue(t,a,d)
  weight = w``: minimality as a prior, not a hard principle.
* :class:`ExternalMatchFeaturizer` — ``Value?(t,a,d) :- Matched(t,a,d,k)
  weight = w(k)``: per-dictionary reliability.
* :class:`SourceFeaturizer` — provenance features ("if the provenance …
  is provided we use this information as additional features"), which let
  the model learn per-source trustworthiness as in SLiMFast [35].
* :class:`ConstraintFeaturizer` — the Section 5.2 relaxation: for each
  denial constraint, the number of violations a candidate assignment would
  complete against other tuples' *initial* values (Example 6), with a
  learnable per-constraint weight.
"""

from __future__ import annotations

import abc
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Hashable

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import TupleRef
from repro.core.config import HoloCleanConfig
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.stats import Statistics
from repro.external.matcher import MatchedRelation

#: A sparse feature: (weight key, value).
FeatureEntry = tuple[Hashable, float]


@dataclass
class FeaturizationContext:
    """Shared state handed to every featurizer."""

    dataset: Dataset
    stats: Statistics
    config: HoloCleanConfig
    matched: list[MatchedRelation] = field(default_factory=list)

    def __post_init__(self) -> None:
        schema = self.dataset.schema
        sources = schema.with_role("source")
        self.source_attribute: str | None = sources[0] if sources else None
        self._entity_groups: dict[tuple, list[int]] | None = None
        # Schema positions of the entity key, resolved once: entity_group_of
        # is hot on the weak-label path (one call per query cell).
        self._entity_idxs: list[int] = [
            schema.index_of(a) for a in self.config.source_entity_attributes]

    # -- entity groups for the source featurizer -------------------------
    def entity_groups(self) -> dict[tuple, list[int]]:
        """Tuples grouped by the configured entity key (built lazily)."""
        if self._entity_groups is None:
            groups: dict[tuple, list[int]] = defaultdict(list)
            if self._entity_idxs:
                idxs = self._entity_idxs
                for tid in self.dataset.tuple_ids:
                    row = self.dataset.row_ref(tid)
                    key = tuple(row[i] for i in idxs)
                    if all(v is not None for v in key):
                        groups[key].append(tid)
            self._entity_groups = dict(groups)
        return self._entity_groups

    def entity_group_of(self, tid: int) -> list[int]:
        idxs = self._entity_idxs
        if not idxs:
            return []
        row = self.dataset.row_ref(tid)
        key = tuple(row[i] for i in idxs)
        if any(v is None for v in key):
            return []
        return self.entity_groups().get(key, [])


class Featurizer(abc.ABC):
    """Produces per-candidate sparse features for one cell."""

    name: str = "featurizer"

    def __init__(self, context: FeaturizationContext):
        self.context = context

    @abc.abstractmethod
    def features(self, cell: Cell,
                 candidates: list[str]) -> list[list[FeatureEntry]]:
        """One feature list per candidate, aligned with ``candidates``."""


# ---------------------------------------------------------------------------
class MinimalityFeaturizer(Featurizer):
    """Fires on the candidate equal to the cell's initial value."""

    name = "minimality"

    def features(self, cell: Cell, candidates: list[str]):
        init = self.context.dataset.cell_value(cell)
        return [
            [(("minimality",), 1.0)] if d == init else []
            for d in candidates
        ]


class FrequencyFeaturizer(Featurizer):
    """Relative frequency of the candidate within its attribute.

    Emits the per-attribute feature plus a global backoff feature so that
    attributes with little evidence coverage still share the learned
    "frequent values are likelier" signal.
    """

    name = "frequency"

    def features(self, cell: Cell, candidates: list[str]):
        stats = self.context.stats
        attr = cell.attribute
        init = self.context.dataset.cell_value(cell)
        counts = stats.counts(attr)
        total = sum(counts.values())
        out = []
        for d in candidates:
            # Leave-one-out: the cell's own occurrence must not support
            # its own (possibly erroneous) value.
            count = counts.get(d, 0) - (1 if d == init else 0)
            denom = total - (1 if init is not None else 0)
            rf = count / denom if denom > 0 else 0.0
            out.append([(("freq", attr), rf), (("freq*",), rf)])
        return out


class CooccurFeaturizer(Featurizer):
    """Co-occurrence of the candidate with the tuple's other cell values.

    Two weight-tying schemes (``config.cooccur_tying``):

    * ``"pair"`` — one weight per attribute pair; the feature value is the
      empirical conditional ``Pr[d | v']``.  Compact and generalising.
    * ``"value"`` — the paper-literal ``w(d, f)``: one weight per
      (candidate value, other-cell value) combination with indicator
      value 1.0.
    """

    name = "cooccur"

    def features(self, cell: Cell, candidates: list[str]):
        ctx = self.context
        attr = cell.attribute
        row = ctx.dataset.row_ref(cell.tid)
        schema = ctx.dataset.schema
        tying = ctx.config.cooccur_tying
        init = ctx.dataset.cell_value(cell)
        per_candidate: list[list[FeatureEntry]] = [[] for _ in candidates]
        for other_attr in schema.data_attributes:
            if other_attr == attr:
                continue
            other_value = row[schema.index_of(other_attr)]
            if other_value is None:
                continue
            if tying == "pair":
                # Leave-one-out: the tuple itself is excluded from both the
                # conditioning count and (for its own value) the joint —
                # otherwise every observed value becomes self-evidently
                # "likely", a label leak that cripples weak-label training.
                denom = ctx.stats.frequency(other_attr, other_value) - 1
                if denom <= 0:
                    continue
                cooc = ctx.stats.cooccurring_values(attr, other_attr, other_value)
                for i, d in enumerate(candidates):
                    joint = cooc.get(d, 0) - (1 if d == init else 0)
                    if joint > 0:
                        p = joint / (denom + ctx.config.cooccur_smoothing)
                        per_candidate[i].append(
                            (("cooc", attr, other_attr), p))
                        # Global backoff: lets sparsely-covered attribute
                        # pairs inherit the generic co-occurrence signal.
                        per_candidate[i].append((("cooc*",), p))
            else:  # "value": literal w(d, f)
                for i, d in enumerate(candidates):
                    per_candidate[i].append(
                        (("cooc", attr, d, other_attr, other_value), 1.0))
        return per_candidate


class SourceFeaturizer(Featurizer):
    """Source-reliability features over entity groups.

    For the cell's attribute, every tuple in the same entity group (same
    flight, say) "votes" for its own value with a feature keyed by the
    reporting source; learning turns these into per-source trust weights.
    """

    name = "source"

    def features(self, cell: Cell, candidates: list[str]):
        ctx = self.context
        per_candidate: list[list[FeatureEntry]] = [[] for _ in candidates]
        source_attr = ctx.source_attribute
        if source_attr is None or not ctx.config.source_entity_attributes:
            return per_candidate
        group = ctx.entity_group_of(cell.tid)
        if len(group) < 2:
            return per_candidate
        schema = ctx.dataset.schema
        a_idx = schema.index_of(cell.attribute)
        s_idx = schema.index_of(source_attr)
        votes: dict[str, Counter] = defaultdict(Counter)
        for tid in group:
            if tid == cell.tid:
                continue  # leave-one-out: a cell cannot vouch for itself
            row = ctx.dataset.row_ref(tid)
            value, source = row[a_idx], row[s_idx]
            if value is not None and source is not None:
                votes[value][source] += 1
        for i, d in enumerate(candidates):
            for source, count in votes.get(d, {}).items():
                per_candidate[i].append((("src", source), float(count)))
        return per_candidate


class ExternalMatchFeaturizer(Featurizer):
    """Fires when a candidate agrees with an external dictionary match."""

    name = "external"

    def features(self, cell: Cell, candidates: list[str]):
        per_candidate: list[list[FeatureEntry]] = [[] for _ in candidates]
        for matched in self.context.matched:
            for match in matched.for_cell(cell):
                for i, d in enumerate(candidates):
                    if d == match.value:
                        per_candidate[i].append(
                            (("ext", match.dictionary), 1.0))
        return per_candidate


# ---------------------------------------------------------------------------
class ConstraintFeaturizer(Featurizer):
    """Section 5.2: denial constraints as features over initial values.

    For cell ``c``, candidate ``d``, and constraint σ mentioning ``c``'s
    attribute, counts the tuples whose *initial* values would complete a
    violation of σ if ``c`` were set to ``d`` (both tuple positions are
    considered).  The count is capped and normalised; the per-constraint
    weight is learned and is expected to become negative — candidates that
    would create violations are penalised.
    """

    name = "constraint"

    def __init__(self, context: FeaturizationContext,
                 constraints: list[DenialConstraint]):
        super().__init__(context)
        self.constraints = [dc for dc in constraints if not dc.is_single_tuple]
        self.single_constraints = [dc for dc in constraints if dc.is_single_tuple]
        self._indexes: dict[tuple[str, int], dict[tuple, list[int]]] = {}

    # -- partner indexes over initial values -----------------------------
    def _join_attrs(self, dc: DenialConstraint, position: int) -> list[str]:
        attrs = []
        for pred in dc.equijoin_predicates:
            assert isinstance(pred.right, TupleRef)
            ref = pred.left if pred.left.tuple_index == position else pred.right
            attrs.append(ref.attribute)
        return attrs

    def _partner_index(self, dc: DenialConstraint,
                       partner_position: int) -> dict[tuple, list[int]]:
        """Join-key → tuple ids, with partners playing ``partner_position``."""
        key = (dc.name, partner_position)
        index = self._indexes.get(key)
        if index is None:
            attrs = self._join_attrs(dc, partner_position)
            ds = self.context.dataset
            idxs = [ds.schema.index_of(a) for a in attrs]
            built: dict[tuple, list[int]] = defaultdict(list)
            for tid in ds.tuple_ids:
                row = ds.row_ref(tid)
                jkey = tuple(row[i] for i in idxs)
                if all(v is not None for v in jkey):
                    built[jkey].append(tid)
            index = dict(built)
            self._indexes[key] = index
        return index

    # -- violation counting ------------------------------------------------
    def _count_violations(self, dc: DenialConstraint, cell: Cell,
                          candidate: str, own_position: int) -> int:
        """Violations completed by ``cell := candidate`` in one position."""
        if cell.attribute not in dc.attributes_of(own_position):
            return 0
        ds = self.context.dataset
        simulated = ds.tuple_dict(cell.tid)
        simulated[cell.attribute] = candidate

        partner_position = 2 if own_position == 1 else 1
        own_join_attrs = self._join_attrs(dc, own_position)
        jkey = tuple(simulated.get(a) for a in own_join_attrs)
        if any(v is None for v in jkey):
            return 0
        partners = self._partner_index(dc, partner_position).get(jkey, ())
        cap = self.context.config.max_dc_feature_partners
        count = 0
        examined = 0
        for tid in partners:
            if tid == cell.tid:
                continue
            examined += 1
            if examined > cap:
                break
            partner = ds.tuple_dict(tid)
            if own_position == 1:
                violated = dc.violates(simulated, partner)
            else:
                violated = dc.violates(partner, simulated)
            if violated:
                count += 1
        return count

    def features(self, cell: Cell, candidates: list[str]):
        config = self.context.config
        per_candidate: list[list[FeatureEntry]] = [[] for _ in candidates]
        for dc in self.constraints:
            if cell.attribute not in dc.attributes:
                continue
            for i, d in enumerate(candidates):
                total = (self._count_violations(dc, cell, d, 1)
                         + self._count_violations(dc, cell, d, 2))
                if total:
                    value = min(float(total), config.dc_feature_cap)
                    per_candidate[i].append(
                        (("dc", dc.name), value / config.dc_feature_cap))
        # Single-tuple constraints: does the candidate itself violate?
        for dc in self.single_constraints:
            if cell.attribute not in dc.attributes:
                continue
            simulated = self.context.dataset.tuple_dict(cell.tid)
            for i, d in enumerate(candidates):
                simulated[cell.attribute] = d
                if dc.violates(simulated):
                    per_candidate[i].append((("dc", dc.name), 1.0))
        return per_candidate


# ---------------------------------------------------------------------------
def default_featurizers(context: FeaturizationContext,
                        constraints: list[DenialConstraint]) -> list[Featurizer]:
    """The featurizer stack implied by the configuration."""
    config = context.config
    stack: list[Featurizer] = []
    if config.use_minimality:
        stack.append(MinimalityFeaturizer(context))
    if config.use_frequency:
        stack.append(FrequencyFeaturizer(context))
    if config.use_cooccur:
        stack.append(CooccurFeaturizer(context))
    if config.use_source and context.source_attribute is not None:
        stack.append(SourceFeaturizer(context))
    if config.use_external and context.matched:
        stack.append(ExternalMatchFeaturizer(context))
    if config.use_dc_feats and constraints:
        stack.append(ConstraintFeaturizer(context, constraints))
    return stack
