"""Interactive repair sessions with user feedback.

Section 2.2 of the paper: "we can use these marginal probabilities to
solicit user feedback.  For example, we can ask users to verify repairs
with low marginal probabilities and use those as labeled examples to
retrain the parameters of HoloClean's model using standard incremental
learning and inference techniques [37]."

:class:`RepairSession` implements that loop:

1. :meth:`run` — the ordinary pipeline, keeping the compiled model;
2. :meth:`low_confidence` — the repair proposals a reviewer should check;
3. :meth:`feedback` — record user-verified values for individual cells;
4. :meth:`rerun` — retrain with the verified cells as labeled evidence
   (and clamp them), then re-infer everything else.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.denial import DenialConstraint
from repro.constraints.matching import MatchingDependency
from repro.core.compiler import CompiledModel, ModelCompiler
from repro.core.config import HoloCleanConfig
from repro.core.repair import CellInference, RepairResult
from repro.dataset.dataset import Cell, Dataset
from repro.detect.base import DetectionResult, ErrorDetector
from repro.detect.violations import ViolationDetector
from repro.external.dictionary import ExternalDictionary
from repro.inference.gibbs import GibbsSampler
from repro.inference.softmax import SoftmaxTrainer


class RepairSession:
    """A stateful repair workflow over one dataset.

    Parameters mirror :meth:`repro.core.pipeline.HoloClean.repair`; the
    session additionally retains the compiled model so user feedback can
    be folded in without recompiling.
    """

    def __init__(self, dataset: Dataset, constraints: list[DenialConstraint],
                 config: HoloCleanConfig | None = None,
                 dictionaries: list[ExternalDictionary] = (),
                 matching_dependencies: list[MatchingDependency] = (),
                 extra_detectors: list[ErrorDetector] = ()):
        self.dataset = dataset
        self.constraints = list(constraints)
        self.config = config or HoloCleanConfig()
        self.dictionaries = list(dictionaries)
        self.matching_dependencies = list(matching_dependencies)
        self.extra_detectors = list(extra_detectors)
        self._model: CompiledModel | None = None
        self._detection: DetectionResult | None = None
        self._feedback: dict[Cell, str] = {}
        self._last_result: RepairResult | None = None

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def run(self) -> RepairResult:
        """Detect, compile, learn, infer — and keep the model around."""
        self._detection = ViolationDetector(self.constraints).detect(self.dataset)
        for detector in self.extra_detectors:
            self._detection.merge(detector.detect(self.dataset))
        compiler = ModelCompiler(
            self.dataset, self.constraints, self.config, self._detection,
            dictionaries=self.dictionaries,
            matching_dependencies=self.matching_dependencies)
        self._model = compiler.compile()
        return self._infer_and_package()

    def rerun(self) -> RepairResult:
        """Re-learn and re-infer with the accumulated feedback."""
        if self._model is None:
            return self.run()
        return self._infer_and_package()

    # ------------------------------------------------------------------
    # Review & feedback
    # ------------------------------------------------------------------
    def low_confidence(self, below: float = 0.7) -> list[CellInference]:
        """Suggested repairs whose marginal falls below the threshold,
        sorted least-confident first — the review queue of Section 2.2."""
        if self._last_result is None:
            raise RuntimeError("run() the session before reviewing")
        queue = [inf for inf in self._last_result.repairs.values()
                 if inf.confidence < below]
        return sorted(queue, key=lambda inf: inf.confidence)

    def feedback(self, cell: Cell, correct_value: str) -> None:
        """Record a user-verified value for one cell."""
        if self._model is not None and \
                self._model.graph.variables.by_cell(cell) is None:
            raise KeyError(f"{cell} is not a noisy cell of this session")
        self._feedback[cell] = correct_value

    @property
    def feedback_count(self) -> int:
        return len(self._feedback)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _infer_and_package(self) -> RepairResult:
        model = self._model
        assert model is not None
        config = self.config

        # Fold feedback into training: verified cells become labeled
        # evidence (strong supervision) and are clamped at their value.
        extra_ids: list[int] = []
        extra_labels: list[int] = []
        clamped: dict[int, int] = {}
        for cell, value in self._feedback.items():
            info = model.graph.variables.by_cell(cell)
            if info is None:
                continue
            index = info.candidate_index(value)
            if index is None:
                continue  # outside the domain: applied directly below
            extra_ids.append(info.vid)
            extra_labels.append(index)
            clamped[info.vid] = index

        space = model.graph.space
        fixed = space.fixed_weights
        minimality_idx = space.get(("minimality",))
        if minimality_idx is not None:
            fixed[minimality_idx] = 0.0
        trainer = SoftmaxTrainer(
            model.graph.matrix, epochs=config.epochs,
            learning_rate=config.learning_rate, l2=config.l2,
            max_training_vars=config.max_training_cells, seed=config.seed,
            fixed_weights=fixed)
        outcome = trainer.train(model.evidence_ids + extra_ids,
                                model.evidence_labels + extra_labels)
        weights = outcome.weights
        if minimality_idx is not None:
            weights[minimality_idx] = config.minimality_weight

        if model.graph.factors:
            sampler = GibbsSampler(model.graph, weights, seed=config.seed)
            marginals = sampler.run(burn_in=config.gibbs_burn_in,
                                    sweeps=config.gibbs_sweeps).marginals
        else:
            marginals = trainer.marginals(weights, model.query_ids)

        repaired = self.dataset.copy(name=f"{self.dataset.name}-repaired")
        inferences: dict[Cell, CellInference] = {}
        for vid in model.query_ids:
            info = model.graph.variables[vid]
            if vid in clamped:
                index = clamped[vid]
                marginal = np.zeros(info.domain_size)
                marginal[index] = 1.0
            else:
                marginal = marginals[vid]
                index = int(np.argmax(marginal))
            chosen = info.domain[index]
            inference = CellInference(
                cell=info.cell, init_value=self.dataset.cell_value(info.cell),
                chosen_value=chosen, confidence=float(marginal[index]),
                domain=list(info.domain),
                marginal=np.asarray(marginal, dtype=np.float64))
            inferences[info.cell] = inference
            if inference.is_repair:
                repaired.set_value(info.cell.tid, info.cell.attribute, chosen)

        # Feedback values outside the candidate domain are applied as-is.
        for cell, value in self._feedback.items():
            info = model.graph.variables.by_cell(cell)
            if info is not None and info.candidate_index(value) is None:
                repaired.set_value(cell.tid, cell.attribute, value)
                inferences[cell] = CellInference(
                    cell=cell, init_value=self.dataset.cell_value(cell),
                    chosen_value=value, confidence=1.0, domain=[value],
                    marginal=np.array([1.0]))

        result = RepairResult(repaired=repaired, inferences=inferences,
                              size_report=model.size_report(),
                              training_losses=outcome.losses,
                              config=config)
        self._last_result = result
        return result
