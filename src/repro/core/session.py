"""Interactive repair sessions with user feedback.

Section 2.2 of the paper: "we can use these marginal probabilities to
solicit user feedback.  For example, we can ask users to verify repairs
with low marginal probabilities and use those as labeled examples to
retrain the parameters of HoloClean's model using standard incremental
learning and inference techniques [37]."

:class:`RepairSession` implements that loop on top of the staged API
(:mod:`repro.core.stages`):

1. :meth:`run` — the default plan on a fresh context, keeping every
   artifact (engine, detection, compiled model) around;
2. :meth:`low_confidence` — the repair proposals a reviewer should check;
3. :meth:`feedback` — record user-verified values for individual cells;
4. :meth:`rerun` — re-run only learn → infer → apply on the retained
   context: verified cells become labeled evidence in
   :class:`~repro.core.stages.LearnStage` and clamps in
   :class:`~repro.core.stages.ApplyStage`, so feedback retrains the
   weights without recompiling the model.
"""

from __future__ import annotations

from repro.constraints.denial import DenialConstraint
from repro.constraints.matching import MatchingDependency
from repro.core.compiler import CompiledModel
from repro.core.config import HoloCleanConfig
from repro.core.repair import CellInference, RepairResult
from repro.core.stages import RepairContext, RepairPlan
from repro.dataset.dataset import Cell, Dataset
from repro.detect.base import ErrorDetector
from repro.external.dictionary import ExternalDictionary
from repro.obs.report import RunReport


class RepairSession:
    """A stateful repair workflow over one dataset.

    Parameters mirror :meth:`repro.core.pipeline.HoloClean.repair`; the
    session additionally retains the repair context (grounding engine,
    detection result, compiled model) so user feedback can be folded in
    without recompiling.
    """

    def __init__(
        self,
        dataset: Dataset,
        constraints: list[DenialConstraint],
        config: HoloCleanConfig | None = None,
        dictionaries: list[ExternalDictionary] = (),
        matching_dependencies: list[MatchingDependency] = (),
        extra_detectors: list[ErrorDetector] = (),
    ):
        self.dataset = dataset
        self.constraints = list(constraints)
        self.config = config or HoloCleanConfig()
        self.dictionaries = list(dictionaries)
        self.matching_dependencies = list(matching_dependencies)
        self.extra_detectors = list(extra_detectors)
        self._ctx: RepairContext | None = None
        self._feedback: dict[Cell, str] = {}
        self._last_result: RepairResult | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_context(cls, ctx: RepairContext) -> "RepairSession":
        """Wrap an existing context — e.g. one rehydrated from a
        serving checkpoint (:mod:`repro.serve.checkpoint`).

        The session adopts the context's inputs, artifacts, and
        accumulated feedback as-is, so :meth:`rerun` re-enters the
        staged plan at ``learn`` without repeating detect/compile, and
        :meth:`feedback` keeps validating cells against the retained
        compiled model.
        """
        session = cls(
            ctx.dataset,
            ctx.constraints,
            config=ctx.config,
            dictionaries=ctx.dictionaries,
            matching_dependencies=ctx.matching_dependencies,
            extra_detectors=ctx.extra_detectors,
        )
        session._ctx = ctx
        session._feedback = dict(ctx.feedback)
        session._last_result = ctx.result
        return session

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def run(self) -> RepairResult:
        """Run the default plan on a fresh context and keep it around."""
        self._ctx = RepairContext(
            dataset=self.dataset,
            constraints=self.constraints,
            config=self.config,
            dictionaries=self.dictionaries,
            matching_dependencies=self.matching_dependencies,
            extra_detectors=self.extra_detectors,
        )
        return self._execute(RepairPlan.default())

    def rerun(self) -> RepairResult:
        """Re-learn and re-infer with the accumulated feedback.

        Detection and the compiled model are reused from the retained
        context; only the learn → infer → apply suffix runs again.
        """
        if self._ctx is None or self._ctx.model is None:
            return self.run()
        return self._execute(RepairPlan.default().starting_at("learn"))

    @property
    def context(self) -> RepairContext | None:
        """The retained repair context (``None`` before :meth:`run`)."""
        return self._ctx

    @property
    def model(self) -> CompiledModel | None:
        """The compiled model of the last run (``None`` before it)."""
        return self._ctx.model if self._ctx is not None else None

    @property
    def last_report(self) -> RunReport | None:
        """Telemetry of the most recent run/rerun (``None`` before one).

        Reruns share the context's tracer, so the report's trace tree
        accumulates spans across the feedback loop's iterations.
        """
        if self._last_result is None:
            return None
        return self._last_result.report

    # ------------------------------------------------------------------
    # Review & feedback
    # ------------------------------------------------------------------
    def low_confidence(self, below: float = 0.7) -> list[CellInference]:
        """Suggested repairs whose marginal falls below the threshold,
        sorted least-confident first — the review queue of Section 2.2."""
        if self._last_result is None:
            raise RuntimeError("run() the session before reviewing")
        queue = [
            inf for inf in self._last_result.repairs.values() if inf.confidence < below
        ]
        return sorted(queue, key=lambda inf: inf.confidence)

    def feedback(self, cell: Cell, correct_value: str) -> None:
        """Record a user-verified value for one cell."""
        model = self.model
        if model is not None and model.graph.variables.by_cell(cell) is None:
            raise KeyError(f"{cell} is not a noisy cell of this session")
        self._feedback[cell] = correct_value

    @property
    def feedback_count(self) -> int:
        return len(self._feedback)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute(self, plan: RepairPlan) -> RepairResult:
        ctx = self._ctx
        assert ctx is not None
        ctx.feedback = dict(self._feedback)
        self._ctx = ctx = plan.run(ctx)
        self._last_result = ctx.result
        return ctx.result
