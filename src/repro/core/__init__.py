"""HoloClean core: the paper's primary contribution.

Compilation (Section 4), scaling optimizations (Section 5 — Algorithm 2
domain pruning, Algorithm 3 tuple partitioning, and the denial-constraint
relaxation), and the end-to-end repair pipeline (Figure 2), exposed as
the staged Detect → Compile → Learn → Infer → Apply API of
:mod:`repro.core.stages` (``RepairContext`` + ``RepairPlan``), with
:class:`~repro.core.pipeline.HoloClean` as the one-shot facade and
:class:`~repro.core.session.RepairSession` as the feedback loop.
"""

from repro.core.config import HoloCleanConfig, VARIANTS
from repro.core.domain import DomainPruner
from repro.core.partition import (
    PairEnumerator,
    TupleGroup,
    VectorPairEnumerator,
    make_pair_enumerator,
    tuple_groups,
)
from repro.core.featurize import (
    FeaturizationContext,
    Featurizer,
    MinimalityFeaturizer,
    FrequencyFeaturizer,
    CooccurFeaturizer,
    SourceFeaturizer,
    ExternalMatchFeaturizer,
    ConstraintFeaturizer,
    default_featurizers,
)
from repro.core.compiler import CompiledModel, ModelCompiler
from repro.core.stages import (
    STAGE_ORDER,
    ApplyStage,
    CompileStage,
    DetectStage,
    FeedbackEvidence,
    InferStage,
    LearnStage,
    RepairContext,
    RepairPlan,
    Stage,
    resolve_feedback,
)
from repro.core.pipeline import HoloClean
from repro.core.repair import CellInference, RepairResult
from repro.core.session import RepairSession
from repro.core import rules

__all__ = [
    "HoloCleanConfig",
    "VARIANTS",
    "DomainPruner",
    "PairEnumerator",
    "TupleGroup",
    "VectorPairEnumerator",
    "make_pair_enumerator",
    "tuple_groups",
    "FeaturizationContext",
    "Featurizer",
    "MinimalityFeaturizer",
    "FrequencyFeaturizer",
    "CooccurFeaturizer",
    "SourceFeaturizer",
    "ExternalMatchFeaturizer",
    "ConstraintFeaturizer",
    "default_featurizers",
    "CompiledModel",
    "ModelCompiler",
    "STAGE_ORDER",
    "Stage",
    "DetectStage",
    "CompileStage",
    "LearnStage",
    "InferStage",
    "ApplyStage",
    "FeedbackEvidence",
    "RepairContext",
    "RepairPlan",
    "resolve_feedback",
    "HoloClean",
    "CellInference",
    "RepairResult",
    "RepairSession",
    "rules",
]
