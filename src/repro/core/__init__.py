"""HoloClean core: the paper's primary contribution.

Compilation (Section 4), scaling optimizations (Section 5 — Algorithm 2
domain pruning, Algorithm 3 tuple partitioning, and the denial-constraint
relaxation), and the end-to-end repair pipeline (Figure 2).
"""

from repro.core.config import HoloCleanConfig, VARIANTS
from repro.core.domain import DomainPruner
from repro.core.partition import (
    PairEnumerator,
    TupleGroup,
    VectorPairEnumerator,
    make_pair_enumerator,
    tuple_groups,
)
from repro.core.featurize import (
    FeaturizationContext,
    Featurizer,
    MinimalityFeaturizer,
    FrequencyFeaturizer,
    CooccurFeaturizer,
    SourceFeaturizer,
    ExternalMatchFeaturizer,
    ConstraintFeaturizer,
    default_featurizers,
)
from repro.core.compiler import CompiledModel, ModelCompiler
from repro.core.pipeline import HoloClean
from repro.core.repair import CellInference, RepairResult
from repro.core.session import RepairSession
from repro.core import rules

__all__ = [
    "HoloCleanConfig",
    "VARIANTS",
    "DomainPruner",
    "PairEnumerator",
    "TupleGroup",
    "VectorPairEnumerator",
    "make_pair_enumerator",
    "tuple_groups",
    "FeaturizationContext",
    "Featurizer",
    "MinimalityFeaturizer",
    "FrequencyFeaturizer",
    "CooccurFeaturizer",
    "SourceFeaturizer",
    "ExternalMatchFeaturizer",
    "ConstraintFeaturizer",
    "default_featurizers",
    "CompiledModel",
    "ModelCompiler",
    "HoloClean",
    "CellInference",
    "RepairResult",
    "RepairSession",
    "rules",
]
