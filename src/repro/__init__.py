"""HoloClean reproduction: holistic data repairs with probabilistic inference.

This package reproduces *HoloClean: Holistic Data Repairs with
Probabilistic Inference* (Rekatsinas, Chu, Ilyas, Ré — VLDB 2017) as a
self-contained Python library: the probabilistic repair engine, every
substrate it depends on (constraint language, error detection, a
DeepDive-style inference engine, external-data matching), the three
competing baselines of the evaluation (Holistic, KATARA, SCARE), and
generators for the four evaluation datasets.

Quickstart
----------
>>> from repro import HoloClean, HoloCleanConfig, parse_fd
>>> fds = [parse_fd("Zip -> City,State")]
>>> dcs = [dc for fd in fds for dc in fd.to_denial_constraints()]
>>> result = HoloClean(HoloCleanConfig(tau=0.5)).repair(dataset, dcs)  # doctest: +SKIP

The staged API exposes the same pipeline as five re-runnable stages
over a shared :class:`RepairContext` — run the default plan once, then
re-enter from any stage with new knobs without repeating the ones
before it (``parallel_workers`` shards grounding across processes with
byte-identical results):

>>> from repro import RepairContext, RepairPlan
>>> ctx = RepairContext(dataset, dcs, HoloCleanConfig(parallel_workers=4))  # doctest: +SKIP
>>> ctx = RepairPlan.default().run(ctx)  # doctest: +SKIP
>>> ctx.config, ctx.model = ctx.config.with_(tau=0.7), None  # doctest: +SKIP
>>> ctx = RepairPlan.default().starting_at("compile").run(ctx)  # detection reused  # doctest: +SKIP
>>> ctx.result.report  # RunReport: trace forest + metrics + fingerprint  # doctest: +SKIP
"""

from repro.dataset import Attribute, Cell, Dataset, NULL, Schema, Statistics
from repro.dataset import read_csv, write_csv
from repro.constraints import (
    DenialConstraint,
    FunctionalDependency,
    MatchingDependency,
    MatchPredicate,
    Operator,
    Predicate,
    TupleRef,
    Const,
    parse_dc,
    parse_dcs,
    parse_fd,
    format_dc,
)
from repro.detect import (
    DetectionResult,
    EnsembleDetector,
    ExternalDetector,
    NullDetector,
    OutlierDetector,
    ViolationDetector,
)
from repro.engine import ColumnStore, Engine, backend_names, register_backend
from repro.external import ExternalDictionary
from repro.obs import RunReport
from repro.core import (
    ApplyStage,
    CompileStage,
    DetectStage,
    HoloClean,
    HoloCleanConfig,
    InferStage,
    LearnStage,
    RepairContext,
    RepairPlan,
    RepairResult,
    RepairSession,
    CellInference,
    DomainPruner,
    VARIANTS,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "Cell",
    "Dataset",
    "NULL",
    "Schema",
    "Statistics",
    "read_csv",
    "write_csv",
    "DenialConstraint",
    "FunctionalDependency",
    "MatchingDependency",
    "MatchPredicate",
    "Operator",
    "Predicate",
    "TupleRef",
    "Const",
    "parse_dc",
    "parse_dcs",
    "parse_fd",
    "format_dc",
    "DetectionResult",
    "EnsembleDetector",
    "ExternalDetector",
    "NullDetector",
    "OutlierDetector",
    "ViolationDetector",
    "ColumnStore",
    "Engine",
    "backend_names",
    "register_backend",
    "ExternalDictionary",
    "RunReport",
    "HoloClean",
    "HoloCleanConfig",
    "RepairContext",
    "RepairPlan",
    "DetectStage",
    "CompileStage",
    "LearnStage",
    "InferStage",
    "ApplyStage",
    "RepairResult",
    "RepairSession",
    "CellInference",
    "DomainPruner",
    "VARIANTS",
    "__version__",
]
