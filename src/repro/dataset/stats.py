"""Quantitative statistics of a dataset.

These statistics back two parts of the paper:

* **Algorithm 2 (domain pruning)** uses the empirical conditional
  ``Pr[v | v_c'] = #(v, v_c' together) / #(v_c')`` to select candidate
  repairs whose co-occurrence probability exceeds a threshold τ.
* **Quantitative-statistics features** (Section 4.2) use value frequencies
  and co-occurrence strengths as evidence in the probabilistic model.

Pairwise counts are computed lazily per attribute pair and cached, so the
cost is O(#tuples) per pair actually used rather than O(#tuples · #attrs²)
up front.
"""

from __future__ import annotations

from collections import Counter

from repro.dataset.dataset import Dataset


class Statistics:
    """Frequency and co-occurrence statistics over a :class:`Dataset`.

    All statistics ignore NULL values — a NULL neither counts as a value
    nor conditions anything, matching the paper's treatment of missing
    data as cells to be inferred rather than observations.
    """

    def __init__(self, dataset: Dataset):
        self._dataset = dataset
        self._single: dict[str, Counter[str]] = {}
        self._pair: dict[tuple[str, str], Counter[tuple[str, str]]] = {}

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    # ------------------------------------------------------------------
    # Single-attribute statistics
    # ------------------------------------------------------------------
    def counts(self, attribute: str) -> Counter:
        """Value → occurrence count for one attribute (cached)."""
        cached = self._single.get(attribute)
        if cached is None:
            cached = self._build_counts(attribute)
            self._single[attribute] = cached
        return cached

    def _build_counts(self, attribute: str) -> Counter:
        """Count one attribute's values; overridden by the engine-backed
        subclass (:class:`repro.engine.stats.EngineStatistics`)."""
        idx = self._dataset.schema.index_of(attribute)
        built: Counter = Counter()
        for tid in self._dataset.tuple_ids:
            v = self._dataset.row_ref(tid)[idx]
            if v is not None:
                built[v] += 1
        return built

    def frequency(self, attribute: str, value: str) -> int:
        """Number of tuples where ``attribute = value``."""
        return self.counts(attribute).get(value, 0)

    def relative_frequency(self, attribute: str, value: str) -> float:
        """``frequency / #non-NULL values`` of the attribute (0 if empty)."""
        counts = self.counts(attribute)
        total = sum(counts.values())
        if total == 0:
            return 0.0
        return counts.get(value, 0) / total

    # ------------------------------------------------------------------
    # Pairwise co-occurrence statistics
    # ------------------------------------------------------------------
    def pair_counts(self, attr_a: str, attr_b: str) -> Counter:
        """(value_a, value_b) → co-occurrence count for an attribute pair.

        The underlying scan runs once per unordered pair (under the
        sorted key); the swapped orientation is derived from it and
        cached too, so callers on Algorithm 2's inner loop and the
        co-occurrence featurizer never rebuild the counter per call.
        Returned counters are shared caches — callers must not mutate
        them.
        """
        if attr_a == attr_b:
            raise ValueError("co-occurrence requires two distinct attributes")
        cached = self._pair.get((attr_a, attr_b))
        if cached is not None:
            return cached
        key = (attr_a, attr_b) if attr_a <= attr_b else (attr_b, attr_a)
        base = self._pair.get(key)
        if base is None:
            base = self._build_pair_counts(key)
            self._pair[key] = base
        if (attr_a, attr_b) == key:
            return base
        # Present (and cache) the symmetric counter in caller order.
        swapped = Counter({(b, a): n for (a, b), n in base.items()})
        self._pair[(attr_a, attr_b)] = swapped
        return swapped

    def _build_pair_counts(self, key: tuple[str, str]) -> Counter:
        """Count co-occurrences for a (sorted) attribute pair; overridden
        by the engine-backed subclass."""
        ia = self._dataset.schema.index_of(key[0])
        ib = self._dataset.schema.index_of(key[1])
        built: Counter = Counter()
        for tid in self._dataset.tuple_ids:
            row = self._dataset.row_ref(tid)
            va, vb = row[ia], row[ib]
            if va is not None and vb is not None:
                built[(va, vb)] += 1
        return built

    def cooccurrence(self, attr_a: str, value_a: str,
                     attr_b: str, value_b: str) -> int:
        """Count of tuples where both values appear together."""
        key_sorted = attr_a <= attr_b
        counter = self.pair_counts(attr_a, attr_b) if key_sorted else None
        if counter is not None:
            return counter.get((value_a, value_b), 0)
        counter = self.pair_counts(attr_b, attr_a)
        return counter.get((value_b, value_a), 0)

    def conditional(self, attr: str, value: str,
                    given_attr: str, given_value: str) -> float:
        """Empirical ``Pr[attr=value | given_attr=given_value]``.

        This is exactly the quantity thresholded by τ in Algorithm 2:
        ``#(value, given_value) appear together / #(given_value)``.
        Returns 0.0 when the conditioning value never appears.
        """
        denom = self.frequency(given_attr, given_value)
        if denom == 0:
            return 0.0
        return self.cooccurrence(attr, value, given_attr, given_value) / denom

    def cooccurring_values(self, attr: str, given_attr: str,
                           given_value: str) -> dict[str, int]:
        """All values of ``attr`` co-occurring with ``given_attr=given_value``.

        Returns value → joint count; the candidate-generation inner loop of
        Algorithm 2 iterates this mapping instead of the full active domain,
        which is equivalent (values that never co-occur have Pr = 0 < τ)
        and much faster.
        """
        out: dict[str, int] = {}
        if attr <= given_attr:
            for (va, vb), n in self.pair_counts(attr, given_attr).items():
                if vb == given_value:
                    out[va] = n
        else:
            for (vb, va), n in self.pair_counts(given_attr, attr).items():
                if vb == given_value:
                    out[va] = n
        return out

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def num_distinct(self, attribute: str) -> int:
        return len(self.counts(attribute))

    def most_common(self, attribute: str, k: int = 1) -> list[tuple[str, int]]:
        return self.counts(attribute).most_common(k)

    def invalidate(self) -> None:
        """Drop caches after the underlying dataset was mutated."""
        self._single.clear()
        self._pair.clear()
