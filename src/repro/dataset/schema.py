"""Schema definitions for datasets cleaned by HoloClean.

A :class:`Schema` is an ordered collection of named attributes.  HoloClean
treats every value as an opaque categorical token (the paper's model assigns
one categorical random variable per cell), so attributes carry no numeric
type — only an optional human-readable ``role`` used by featurizers (for
example, marking an attribute as the provenance/source column).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Attribute:
    """A single named column of a relation.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    role:
        Optional marker used by featurizers.  Recognised roles:
        ``"source"`` (tuple provenance, used by the source featurizer) and
        ``"id"`` (an identifier that should never be repaired).
    """

    name: str
    role: str = "data"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")


class Schema:
    """An ordered, immutable set of attributes.

    Supports lookup by name or positional index and iteration in
    declaration order.
    """

    def __init__(self, attributes: list[Attribute] | list[str]):
        attrs: list[Attribute] = []
        for a in attributes:
            attrs.append(Attribute(a) if isinstance(a, str) else a)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate attribute names: {dupes}")
        if not attrs:
            raise ValueError("schema must have at least one attribute")
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._index: dict[str, int] = {a.name: i for i, a in enumerate(attrs)}

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> list[str]:
        """Attribute names in declaration order."""
        return [a.name for a in self._attributes]

    def index_of(self, name: str) -> int:
        """Positional index of attribute ``name`` (raises ``KeyError``)."""
        return self._index[name]

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self._index[name]]

    def has(self, name: str) -> bool:
        return name in self._index

    def with_role(self, role: str) -> list[str]:
        """Names of all attributes carrying the given role."""
        return [a.name for a in self._attributes if a.role == role]

    @property
    def data_attributes(self) -> list[str]:
        """Attributes eligible for repair (role ``"data"``)."""
        return [a.name for a in self._attributes if a.role == "data"]

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({[a.name for a in self._attributes]!r})"
