"""CSV loading and saving for datasets.

The paper's datasets (Hospital, Flights, Food, Physicians) ship as CSV
files; this module reads them into :class:`~repro.dataset.Dataset` objects
with NULL normalisation (empty fields become NULL) and writes repaired
datasets back out.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.dataset.dataset import Dataset
from repro.dataset.schema import Attribute, Schema


def read_csv(path: str | Path, name: str | None = None,
             source_attribute: str | None = None) -> Dataset:
    """Load a CSV file with a header row into a :class:`Dataset`.

    Parameters
    ----------
    path:
        File to read.  The first row is the schema.
    name:
        Dataset name; defaults to the file stem.
    source_attribute:
        If given, that column is marked with role ``"source"`` so the
        source-reliability featurizer can use it (the Flights dataset
        records which web source provided each tuple).
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        attrs = [
            Attribute(col, role="source" if col == source_attribute else "data")
            for col in header
        ]
        schema = Schema(attrs)
        ds = Dataset(schema, name=name or path.stem)
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{lineno}: row has {len(row)} fields, "
                    f"header has {len(header)}")
            ds.append([v if v != "" else None for v in row])
    return ds


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to CSV; NULL values become empty fields."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(dataset.schema.names)
        for tid in dataset.tuple_ids:
            writer.writerow(["" if v is None else v for v in dataset.row_ref(tid)])
