"""Relational substrate: schemas, datasets, cells, and dataset statistics.

This package models the dirty relation ``D`` from the paper (Section 2.1):
a set of tuples, each a set of cells ``t[a]``, together with the empirical
statistics (value frequencies and pairwise co-occurrences) that drive both
HoloClean's domain pruning (Algorithm 2) and its quantitative-statistics
features (Section 4.2).
"""

from repro.dataset.schema import Attribute, Schema
from repro.dataset.dataset import Cell, Dataset, NULL
from repro.dataset.stats import Statistics
from repro.dataset.csv_io import read_csv, write_csv

__all__ = [
    "Attribute",
    "Schema",
    "Cell",
    "Dataset",
    "NULL",
    "Statistics",
    "read_csv",
    "write_csv",
]
