"""The dirty relation ``D``: tuples, cells, and value access.

Terminology follows Section 2.1 of the paper: a dataset is a set of tuples,
each tuple ``t`` is a set of cells ``Cells[t] = {A_i[t]}``, and every cell
``c`` has an observed initial value ``v_c``.  Repairs update cell values;
a ground-truth (clean) copy of the same relation uses the same classes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.dataset.schema import Schema

#: Canonical representation of a missing value.  Empty strings read from CSV
#: files are normalised to ``NULL`` on load.
NULL: None = None


class Cell(NamedTuple):
    """Identifier of a single cell ``t[a]``: a (tuple id, attribute) pair."""

    tid: int
    attribute: str

    def __repr__(self) -> str:  # compact: t12.City
        return f"t{self.tid}.{self.attribute}"


class Dataset:
    """An in-memory relation with mutable cell values.

    Values are stored row-major as lists aligned with the schema order.
    All values are either strings or :data:`NULL`; callers are expected to
    normalise numbers to strings before loading (HoloClean's model treats
    every domain as categorical).
    """

    def __init__(self, schema: Schema, rows: Iterable[list[str | None]] | None = None,
                 name: str = "dataset"):
        self.schema = schema
        self.name = name
        self._rows: list[list[str | None]] = []
        if rows is not None:
            for row in rows:
                self.append(row)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(cls, schema: Schema, records: Iterable[dict[str, str | None]],
                   name: str = "dataset") -> "Dataset":
        """Build a dataset from dict records; missing keys become NULL."""
        ds = cls(schema, name=name)
        for rec in records:
            unknown = set(rec) - set(schema.names)
            if unknown:
                raise KeyError(f"record has attributes not in schema: {sorted(unknown)}")
            ds.append([rec.get(a, NULL) for a in schema.names])
        return ds

    def append(self, row: list[str | None]) -> int:
        """Append a row (list aligned to schema order); returns its tuple id."""
        if len(row) != len(self.schema):
            raise ValueError(
                f"row has {len(row)} values, schema has {len(self.schema)}")
        normalised = [self._normalise(v) for v in row]
        self._rows.append(normalised)
        return len(self._rows) - 1

    @staticmethod
    def _normalise(value: str | None) -> str | None:
        if value is None:
            return NULL
        if not isinstance(value, str):
            value = str(value)
        stripped = value.strip()
        return stripped if stripped else NULL

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        return len(self._rows)

    @property
    def num_cells(self) -> int:
        return len(self._rows) * len(self.schema)

    @property
    def tuple_ids(self) -> range:
        return range(len(self._rows))

    def value(self, tid: int, attribute: str) -> str | None:
        """Current value of cell ``t[a]``."""
        return self._rows[tid][self.schema.index_of(attribute)]

    def cell_value(self, cell: Cell) -> str | None:
        return self.value(cell.tid, cell.attribute)

    def set_value(self, tid: int, attribute: str, value: str | None) -> None:
        self._rows[tid][self.schema.index_of(attribute)] = self._normalise(value)

    def row(self, tid: int) -> list[str | None]:
        """The raw value list of tuple ``tid`` (a copy)."""
        return list(self._rows[tid])

    def row_ref(self, tid: int) -> list[str | None]:
        """The raw value list of tuple ``tid`` without copying.

        Internal fast path for detectors and featurizers; callers must not
        mutate the returned list.
        """
        return self._rows[tid]

    def tuple_dict(self, tid: int) -> dict[str, str | None]:
        """Tuple ``tid`` as an attribute → value mapping."""
        return dict(zip(self.schema.names, self._rows[tid]))

    def cells(self) -> Iterator[Cell]:
        """All cells in row-major order."""
        for tid in range(len(self._rows)):
            for attr in self.schema.names:
                yield Cell(tid, attr)

    def cells_of(self, tid: int) -> list[Cell]:
        return [Cell(tid, a) for a in self.schema.names]

    # ------------------------------------------------------------------
    # Domains and comparison
    # ------------------------------------------------------------------
    def active_domain(self, attribute: str) -> list[str]:
        """Distinct non-NULL values of ``attribute`` in first-seen order.

        This is the classic *active domain* used as the candidate-repair
        space by constraint-based methods [7, 12]; HoloClean prunes it via
        Algorithm 2.
        """
        idx = self.schema.index_of(attribute)
        seen: dict[str, None] = {}
        for row in self._rows:
            v = row[idx]
            if v is not None and v not in seen:
                seen[v] = None
        return list(seen)

    def copy(self, name: str | None = None) -> "Dataset":
        clone = Dataset(self.schema, name=name or self.name)
        clone._rows = [list(r) for r in self._rows]
        return clone

    def diff(self, other: "Dataset") -> list[Cell]:
        """Cells whose values differ between ``self`` and ``other``."""
        if self.schema != other.schema or self.num_tuples != other.num_tuples:
            raise ValueError("can only diff datasets with identical shape")
        out: list[Cell] = []
        for tid in range(self.num_tuples):
            mine, theirs = self._rows[tid], other._rows[tid]
            for i, attr in enumerate(self.schema.names):
                if mine[i] != theirs[i]:
                    out.append(Cell(tid, attr))
        return out

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    def __repr__(self) -> str:
        return (f"Dataset(name={self.name!r}, tuples={self.num_tuples}, "
                f"attributes={len(self.schema)})")
