"""Run reports: one JSON-serializable record of where a repair went.

A :class:`RunReport` bundles the trace forest, the metrics registry,
the configuration (plus a stable fingerprint for cache keys and
cross-run comparison), the dataset shape, and per-stage timings/status.
It is attached to every :class:`~repro.core.repair.RepairResult` by the
apply stage, written to disk via ``repro --report out.json``, and
rendered as a text flamegraph-style summary by ``repro trace`` and
:meth:`render_text`.

The builder is duck-typed over :class:`~repro.core.stages.RepairContext`
so this module imports nothing from :mod:`repro.core` (no cycles:
``core`` imports ``obs``, never the reverse).
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.fingerprint import config_fingerprint
from repro.obs.trace import Span

__all__ = ["RunReport", "build_run_report", "config_fingerprint"]

#: Character budget of the flamegraph bar column in :meth:`render_text`.
_BAR_WIDTH = 24


@dataclass
class RunReport:
    """Telemetry record of one repair run."""

    dataset: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    fingerprint: str = ""
    stage_status: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    phase_timings: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    trace: dict | None = None
    created_at: float = field(default_factory=time.time)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "dataset": dict(self.dataset),
            "config": dict(self.config),
            "fingerprint": self.fingerprint,
            "stage_status": dict(self.stage_status),
            "timings": dict(self.timings),
            "phase_timings": dict(self.phase_timings),
            "metrics": self.metrics,
            "trace": self.trace,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        return cls(
            dataset=dict(payload.get("dataset", {})),
            config=dict(payload.get("config", {})),
            fingerprint=payload.get("fingerprint", ""),
            stage_status=dict(payload.get("stage_status", {})),
            timings=dict(payload.get("timings", {})),
            phase_timings=dict(payload.get("phase_timings", {})),
            metrics=payload.get("metrics", {}),
            trace=payload.get("trace"),
            created_at=payload.get("created_at", 0.0),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    def trace_spans(self) -> list[Span]:
        """The trace forest rebuilt as :class:`Span` objects."""
        if not self.trace:
            return []
        return [Span.from_dict(s) for s in self.trace.get("spans", ())]

    def stage_names_traced(self) -> list[str]:
        """Names of the root (stage-level) spans, in order."""
        return [span.name for span in self.trace_spans()]

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """A flamegraph-style text summary of the run."""
        lines: list[str] = []
        dataset = self.dataset or {}
        lines.append(
            "run report: dataset={name} rows={rows} attributes={attrs} "
            "config={fp}".format(
                name=dataset.get("name", "?"),
                rows=dataset.get("rows", "?"),
                attrs=dataset.get("attributes", "?"),
                fp=self.fingerprint or "?",
            )
        )
        total = sum(self.phase_timings.values())
        lines.append(
            "phases: "
            + "  ".join(f"{k}={v:.3f}s" for k, v in self.phase_timings.items())
            + f"  total={total:.3f}s"
        )
        if self.stage_status:
            lines.append(
                "stages: "
                + "  ".join(f"{k}:{v}" for k, v in self.stage_status.items())
            )

        roots = self.trace_spans()
        if roots:
            level = (self.trace or {}).get("level", "?")
            count = (self.trace or {}).get("span_count", len(roots))
            lines.append(f"\ntrace ({level} level, {count} spans):")
            scale = max((r.duration for r in roots), default=0.0) or 1.0
            for root in roots:
                self._render_span(root, root.duration or scale, 0, lines)

        metrics = self.metrics or {}
        gauges = metrics.get("gauges", {})
        counters = metrics.get("counters", {})
        labels = metrics.get("labels", {})
        summaries = metrics.get("series_summary", {})
        if gauges or counters or labels or summaries:
            lines.append("\nmetrics:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]:g} (counter)")
            for name in sorted(gauges):
                lines.append(f"  {name} = {gauges[name]:g}")
            for name in sorted(labels):
                lines.append(f"  {name} = {labels[name]}")
            for name in sorted(summaries):
                s = summaries[name]
                lines.append(
                    f"  {name}: n={s['count']:g} first={s['first']:.4g} "
                    f"last={s['last']:.4g} min={s['min']:.4g} "
                    f"max={s['max']:.4g}"
                )
        return "\n".join(lines)

    def _render_span(
        self, span: Span, scale: float, depth: int, lines: list[str]
    ) -> None:
        filled = 0
        if scale > 0:
            filled = max(1, round(_BAR_WIDTH * span.duration / scale))
        bar = ("█" * min(filled, _BAR_WIDTH)).ljust(_BAR_WIDTH, "·")
        label = ("  " * depth + span.name).ljust(32)
        mem = ""
        if span.py_mem_peak is not None:
            mem = f"  peak={span.py_mem_peak / 1e6:.1f}MB"
        attrs = ""
        if span.attributes:
            rendered = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            attrs = f"  [{rendered}]"
        lines.append(f"  {label} {bar} {span.duration:8.3f}s{mem}{attrs}")
        for child in span.children:
            self._render_span(child, scale, depth + 1, lines)


def build_run_report(ctx) -> RunReport:
    """Assemble a :class:`RunReport` from a repair context (duck-typed).

    ``ctx`` needs ``dataset`` (with ``name``/``num_tuples``/``schema``),
    ``config`` (a dataclass), ``stage_status``, ``timings``,
    ``phase_timings()``, ``metrics``, and optionally ``tracer``.
    """
    dataset = ctx.dataset
    shape = {
        "name": getattr(dataset, "name", "?"),
        "rows": getattr(dataset, "num_tuples", None),
        "attributes": len(getattr(dataset.schema, "names", ())),
    }
    if dataclasses.is_dataclass(ctx.config) and not isinstance(ctx.config, type):
        config = dataclasses.asdict(ctx.config)
    else:  # pragma: no cover - configs are always dataclasses today
        config = dict(ctx.config or {})
    tracer = getattr(ctx, "tracer", None)
    metrics = getattr(ctx, "metrics", None)
    scalars = (int, float, str, bool, type(None))
    safe_config = {
        k: v if isinstance(v, scalars) else str(v) for k, v in config.items()
    }
    return RunReport(
        dataset=shape,
        config=safe_config,
        fingerprint=config_fingerprint(ctx.config),
        stage_status=dict(getattr(ctx, "stage_status", {})),
        timings=dict(ctx.timings),
        phase_timings=ctx.phase_timings(),
        metrics=metrics.as_dict() if metrics is not None else {},
        trace=tracer.to_dict() if tracer is not None else None,
    )
