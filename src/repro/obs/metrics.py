"""A registry of named counters, gauges, labels, and series.

One :class:`MetricsRegistry` rides on each
:class:`~repro.core.stages.RepairContext` and absorbs every number the
pipeline used to scatter across ad-hoc dicts: the ``grounding_*`` /
graph size-report counters (ingested verbatim via :meth:`ingest`, so
``RepairResult.size_report`` keys stay byte-identical — the existing
equivalence tests are the oracle) plus the new per-stage telemetry
(pairs enumerated, factors emitted, feature entries, Gibbs move rate,
trainer loss per epoch).  The registry is what lands in the
:class:`~repro.obs.report.RunReport`.

Four kinds:

* **counter** — monotone accumulator (:meth:`inc`);
* **gauge** — last-write-wins numeric (:meth:`gauge`);
* **label** — last-write-wins string (:meth:`label`), for categorical
  facts like the featurization path;
* **series** — an ordered list of observations (:meth:`observe` /
  :meth:`extend`), e.g. the per-epoch training loss; summarised by
  :meth:`summaries`.
"""

from __future__ import annotations

#: Observations kept per series; beyond it, early entries are dropped
#: (the summary still reflects only the retained window — repair-scale
#: series such as epoch losses never approach the cap).
SERIES_CAP = 4096


class MetricsRegistry:
    """Named counters/gauges/labels/series for one repair run."""

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.labels: dict[str, str] = {}
        self.series: dict[str, list[float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to a counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to the given value."""
        self.gauges[name] = value

    def label(self, name: str, value: str) -> None:
        """Set a categorical label."""
        self.labels[name] = str(value)

    def observe(self, name: str, value: float) -> None:
        """Append one observation to a series."""
        bucket = self.series.setdefault(name, [])
        bucket.append(float(value))
        if len(bucket) > SERIES_CAP:
            del bucket[: len(bucket) - SERIES_CAP]

    def extend(self, name: str, values) -> None:
        """Append many observations to a series."""
        for value in values:
            self.observe(name, value)

    # ------------------------------------------------------------------
    def ingest(self, mapping: dict, prefix: str = "") -> None:
        """Absorb an ad-hoc stats dict: numbers → gauges, strings → labels.

        This is how the compiler's ``size_report`` counters (the
        ``grounding_*`` keys among them) enter the registry without
        renaming — the report dict itself is still produced exactly as
        before, the registry is just the one API consumers read.
        """
        for key, value in mapping.items():
            name = f"{prefix}{key}"
            if isinstance(value, bool):
                self.gauge(name, int(value))
            elif isinstance(value, (int, float)):
                self.gauge(name, value)
            else:
                self.label(name, str(value))

    # ------------------------------------------------------------------
    def summaries(self) -> dict[str, dict[str, float]]:
        """Per-series ``{count, min, max, mean, first, last}``."""
        out: dict[str, dict[str, float]] = {}
        for name, values in self.series.items():
            if not values:
                continue
            out[name] = {
                "count": len(values),
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
                "first": values[0],
                "last": values[-1],
            }
        return out

    def as_dict(self) -> dict:
        """JSON-ready snapshot (series kept in full, plus summaries)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "labels": dict(self.labels),
            "series": {k: list(v) for k, v in self.series.items()},
            "series_summary": self.summaries(),
        }

    def __len__(self) -> int:
        return (
            len(self.counters)
            + len(self.gauges)
            + len(self.labels)
            + len(self.series)
        )

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, labels={len(self.labels)}, "
            f"series={len(self.series)})"
        )
