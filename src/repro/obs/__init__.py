"""Observability for the repair pipeline: traces, metrics, run reports.

The telemetry subsystem threaded through the staged API
(:mod:`repro.core.stages`):

* :mod:`~repro.obs.trace` — :class:`Tracer` / :class:`Span`:
  hierarchical wall-clock + memory spans; stages open coarse spans,
  hot paths open deep child spans via :func:`deep_span` when
  ``HoloCleanConfig.trace_level = "deep"``.
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry`: named
  counters/gauges/labels/series absorbing the ``grounding_*``
  size-report counters plus per-stage telemetry.
* :mod:`~repro.obs.report` — :class:`RunReport`: the JSON-serializable
  bundle (trace + metrics + config fingerprint + dataset shape)
  attached to every :class:`~repro.core.repair.RepairResult` and
  rendered by ``repro trace``.
* :mod:`~repro.obs.fingerprint` — stable content hashes of datasets,
  constraint sets, and configs, shared by run reports, the serving
  session store, and checkpoint filenames.
* :mod:`~repro.obs.logging` — the ``repro.*`` structured logger used by
  the CLIs.

The package imports nothing from :mod:`repro.core` or
:mod:`repro.engine`, so every layer may depend on it freely.
"""

from __future__ import annotations

from repro.obs.fingerprint import (
    combine_fingerprints,
    config_fingerprint,
    constraints_fingerprint,
    dataset_fingerprint,
)
from repro.obs.logging import (
    add_verbosity_flags,
    configure,
    get_logger,
    verbosity_from,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport, build_run_report
from repro.obs.trace import (
    TRACE_LEVELS,
    Span,
    Tracer,
    active_tracer,
    deep_enabled,
    deep_span,
)

__all__ = [
    "TRACE_LEVELS",
    "MetricsRegistry",
    "RunReport",
    "Span",
    "Tracer",
    "active_tracer",
    "add_verbosity_flags",
    "build_run_report",
    "combine_fingerprints",
    "config_fingerprint",
    "configure",
    "constraints_fingerprint",
    "dataset_fingerprint",
    "deep_enabled",
    "deep_span",
    "get_logger",
    "verbosity_from",
]
