"""Trace spans: a lightweight hierarchical profiler for one repair.

HoloClean's evaluation (Tables 2-4 of the paper) reports *per-phase*
runtimes and grounded-model sizes; this module is how the reproduction
emits that evidence from every run instead of only from hand-written
benchmarks.  A :class:`Tracer` records a forest of :class:`Span`\\ s —
name, wall-clock duration, peak memory, parent id, and free-form
attributes — opened via the ``with tracer.span("name"):`` context
manager.  :meth:`repro.core.stages.Stage.run` opens one span per
pipeline stage; hot paths (engine joins, pair-chunk streaming, factor
tables, featurizer families, Gibbs sweeps, trainer epochs) open *deep*
child spans through :func:`deep_span`, so a single repair yields a
hierarchical trace.

Overhead is gated by level: ``"stage"`` (the default) records only the
five coarse stage spans; ``"deep"`` additionally records the engine and
inference child spans; ``"off"`` records nothing.  :func:`deep_span` is
a near-free no-op unless a deep-level tracer is currently active, so
the instrumented hot loops pay one module-global read when tracing is
coarse or disabled.  Tracing never touches the data or any RNG stream:
a traced repair is byte-identical to an untraced one (pinned in
``tests/core/test_stages.py``).

Memory accounting: every span records the process RSS high-water mark
(``ru_maxrss``) at close; when :mod:`tracemalloc` is tracing (the
tracer starts it when constructed with ``memory=True``), spans also
record the Python-heap peak *during* the span, with child peaks folded
into their parents.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

try:  # pragma: no cover - unavailable on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None

#: Trace levels, in increasing verbosity.  A span is recorded when its
#: own level does not exceed the tracer's.
TRACE_LEVELS = {"off": 0, "stage": 1, "deep": 2}


@dataclass
class Span:
    """One timed region of a repair.

    ``start`` is seconds since the owning tracer's epoch (its
    construction time), so sibling spans order and gap-analyse without
    wall-clock arithmetic.  ``py_mem_peak`` is the tracemalloc peak (in
    bytes) observed while the span was open, ``None`` when tracemalloc
    was not tracing; ``rss_peak_kb`` is the process ``ru_maxrss`` at
    span close (a monotone high-water mark, informational).
    """

    name: str
    span_id: int
    parent_id: int | None = None
    start: float = 0.0
    duration: float = 0.0
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    py_mem_peak: int | None = None
    rss_peak_kb: int | None = None

    # ------------------------------------------------------------------
    def walk(self):
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.py_mem_peak is not None:
            payload["py_mem_peak"] = self.py_mem_peak
        if self.rss_peak_kb is not None:
            payload["rss_peak_kb"] = self.rss_peak_kb
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start=payload.get("start", 0.0),
            duration=payload.get("duration", 0.0),
            attributes=dict(payload.get("attributes", {})),
            children=[cls.from_dict(c) for c in payload.get("children", ())],
            py_mem_peak=payload.get("py_mem_peak"),
            rss_peak_kb=payload.get("rss_peak_kb"),
        )


#: The tracer whose span stack is currently open (set while any of its
#: spans is active).  :func:`deep_span` consults this so hot paths need
#: no plumbed-through handle.
_ACTIVE: "Tracer | None" = None


def active_tracer() -> "Tracer | None":
    """The tracer with an open span on this thread, if any."""
    return _ACTIVE


def deep_enabled() -> bool:
    """True when deep-level spans would actually be recorded."""
    return _ACTIVE is not None and _ACTIVE.level >= TRACE_LEVELS["deep"]


def deep_span(name: str, **attributes):
    """A child span on the active tracer, or a no-op context manager.

    The instrumentation hook for engine/inference hot paths: records a
    span only when a tracer with ``level="deep"`` currently has a span
    open (i.e. the code runs inside a traced stage); otherwise yields
    ``None`` at the cost of one global read.
    """
    tracer = _ACTIVE
    if tracer is None or tracer.level < TRACE_LEVELS["deep"]:
        return nullcontext(None)
    return tracer.span(name, level="deep", **attributes)


class Tracer:
    """Records a forest of spans for one repair.

    Parameters
    ----------
    level:
        ``"off"``, ``"stage"`` (coarse, the default), or ``"deep"``.
    memory:
        Start :mod:`tracemalloc` (if not already tracing) so spans carry
        Python-heap peaks.  Call :meth:`shutdown` to stop it again; the
        tracer stops tracemalloc only if it was the one to start it.
    """

    def __init__(self, level: str = "stage", memory: bool = False):
        if level not in TRACE_LEVELS:
            choices = tuple(TRACE_LEVELS)
            raise ValueError(f"unknown trace level {level!r}; pick one of {choices}")
        self.level_name = level
        self.level = TRACE_LEVELS[level]
        self.roots: list[Span] = []
        self.span_count = 0
        self._epoch = time.perf_counter()
        self._next_id = 0
        #: Open-span stack; each frame is ``[span, child_peak_acc]``.
        self._stack: list[list] = []
        self._owns_tracemalloc = False
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def shutdown(self) -> None:
        """Stop tracemalloc if this tracer started it (idempotent)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, level: str = "stage", **attributes):
        """Open one span; yields the :class:`Span` (or ``None`` if the
        span's level exceeds the tracer's and nothing is recorded)."""
        if TRACE_LEVELS.get(level, TRACE_LEVELS["deep"]) > self.level:
            yield None
            return
        span = Span(
            name=name,
            span_id=self._next_id,
            start=time.perf_counter() - self._epoch,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self.span_count += 1
        if self._stack:
            parent = self._stack[-1][0]
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            self.roots.append(span)

        tracing_memory = tracemalloc.is_tracing()
        if tracing_memory:
            peak_so_far = tracemalloc.get_traced_memory()[1]
            if self._stack:
                # Fold the peak observed since the parent's last reset
                # into the parent before resetting for this child.
                self._stack[-1][1] = max(self._stack[-1][1], peak_so_far)
            tracemalloc.reset_peak()

        global _ACTIVE
        previous = _ACTIVE
        if not self._stack:
            _ACTIVE = self
        frame = [span, 0]
        self._stack.append(frame)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - started
            self._stack.pop()
            if tracing_memory and tracemalloc.is_tracing():
                peak = max(frame[1], tracemalloc.get_traced_memory()[1])
                span.py_mem_peak = int(peak)
                if self._stack:
                    self._stack[-1][1] = max(self._stack[-1][1], peak)
                tracemalloc.reset_peak()
            if resource is not None:
                span.rss_peak_kb = int(
                    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                )
            if not self._stack:
                _ACTIVE = previous

    def annotate(self, **attributes) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1][0].attributes.update(attributes)

    # ------------------------------------------------------------------
    def walk(self):
        """Every recorded span, depth-first across the root forest."""
        for root in self.roots:
            yield from root.walk()

    def to_dict(self) -> dict:
        return {
            "level": self.level_name,
            "span_count": self.span_count,
            "spans": [root.to_dict() for root in self.roots],
        }
