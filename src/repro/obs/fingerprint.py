"""Stable content fingerprints for datasets, constraint sets, and configs.

The serving layer (:mod:`repro.serve`) identifies a repair session by
*what is being repaired* — the dataset contents and the constraint set —
so that two requests carrying the same problem land on the same warm
:class:`~repro.core.stages.RepairContext` regardless of who sent them.
The same hashes name checkpoint directories on disk and stamp every
:class:`~repro.obs.report.RunReport`, so one token compares a report, a
session, and a checkpoint.

All fingerprints are the first 12 hex digits of a SHA-256 digest:
short enough to read in a log line, long enough that collisions are
not a practical concern at session-store scale.

Like the rest of :mod:`repro.obs`, everything here is duck-typed —
this module imports nothing from :mod:`repro.core` or
:mod:`repro.dataset` (no cycles: every layer may depend on ``obs``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

#: Hex digits kept from each SHA-256 digest.
FINGERPRINT_HEX = 12


def config_fingerprint(config) -> str:
    """A stable short hash of a configuration.

    Accepts a dataclass (e.g. ``HoloCleanConfig``) or a plain mapping;
    the fingerprint is the first 12 hex digits of the SHA-256 of the
    sorted JSON encoding, so two runs compare configs by equality of one
    token.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = dict(config or {})
    encoded = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:FINGERPRINT_HEX]


def dataset_fingerprint(dataset) -> str:
    """A content hash of a dataset: schema plus every cell value.

    Duck-typed over :class:`~repro.dataset.dataset.Dataset` (needs
    ``schema.names``, ``num_tuples``, and ``row_ref``).  The dataset's
    *name* is deliberately excluded — two uploads of the same rows under
    different names are the same repair problem and should share a warm
    session.  ``None`` cells hash distinctly from the string ``"None"``.
    """
    digest = hashlib.sha256()
    names = tuple(getattr(dataset.schema, "names", ()))
    digest.update(json.dumps(names).encode("utf-8"))
    for tid in range(dataset.num_tuples):
        row = dataset.row_ref(tid)
        digest.update(json.dumps(row).encode("utf-8"))
    return digest.hexdigest()[:FINGERPRINT_HEX]


def constraints_fingerprint(constraints) -> str:
    """A content hash of an ordered constraint set.

    Each constraint contributes its textual form (``str(dc)``), one per
    line, so the hash is independent of object identity and survives a
    parse → format → parse round-trip.  Order matters: constraint order
    is part of the grounding order and therefore of the problem.
    """
    digest = hashlib.sha256()
    for dc in constraints:
        digest.update(str(dc).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:FINGERPRINT_HEX]


def combine_fingerprints(*parts: str) -> str:
    """Fold component fingerprints into one stable identifier.

    Used for session ids (dataset + constraint-set hashes) and full
    context fingerprints (dataset + constraints + config).
    """
    digest = hashlib.sha256(":".join(parts).encode("utf-8"))
    return digest.hexdigest()[:FINGERPRINT_HEX]
