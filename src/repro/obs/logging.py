"""Structured logging for the ``repro.*`` namespaces.

Library modules obtain loggers via :func:`get_logger` (all children of
the ``repro`` root logger); entry points (``repro`` CLI, ``repro
bench``) call :func:`configure` once, mapping ``--verbose``/``--quiet``
flags to levels.  The handler resolves ``sys.stderr`` at emit time (not
at creation), so output lands wherever stderr currently points — the
behaviour test harnesses that swap ``sys.stderr`` (pytest's capsys)
expect from plain ``print(..., file=sys.stderr)`` calls.

Until :func:`configure` runs, the ``repro`` root logger stays
handler-less and silent apart from Python's last-resort WARNING
handler — library users who want our logs opt in with their own
logging configuration, per stdlib convention.
"""

from __future__ import annotations

import argparse
import logging
import sys

_FORMAT = "%(levelname)s %(name)s: %(message)s"
_configured = False


class _DynamicStderrHandler(logging.StreamHandler):
    """A StreamHandler that re-reads ``sys.stderr`` on every emit."""

    def __init__(self):
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler's ctor assigns; ignore it
        pass


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger("repro")
    if name.startswith("repro.") or name == "repro":
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure(verbosity: int = 0) -> logging.Logger:
    """Install the stderr handler and set the level from a verbosity.

    ``verbosity`` < 0 → ERROR (``--quiet``), 0 → INFO (default for the
    CLIs), ≥ 1 → DEBUG (``--verbose``).  Idempotent: repeated calls
    only adjust the level.
    """
    global _configured
    root = logging.getLogger("repro")
    if verbosity < 0:
        root.setLevel(logging.ERROR)
    elif verbosity == 0:
        root.setLevel(logging.INFO)
    else:
        root.setLevel(logging.DEBUG)
    if not _configured:
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    return root


def add_verbosity_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--verbose``/``--quiet`` pair to a parser."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="debug-level logging (repeatable)",
    )
    group.add_argument("-q", "--quiet", action="store_true", help="errors only")


def verbosity_from(args: argparse.Namespace) -> int:
    """The verbosity implied by parsed :func:`add_verbosity_flags` args."""
    if getattr(args, "quiet", False):
        return -1
    return int(getattr(args, "verbose", 0))
