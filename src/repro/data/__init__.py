"""Evaluation datasets: seeded synthetic generators with ground truth.

The paper evaluates on four real datasets (Table 2): Hospital, Flights,
Food, and Physicians.  Those exact files are not redistributable, so each
generator reproduces its dataset's *statistical signature* — schema width,
duplication level, error type (typos / source conflicts / random /
systematic), error rate, and denial-constraint set — with a known clean
version retained as exact ground truth.  Row counts scale with the
``REPRO_SCALE`` environment variable.
"""

from repro.data.base import GeneratedDataset, scale_factor, scaled
from repro.data.errors import ErrorInjector
from repro.data.generators.hospital import generate_hospital
from repro.data.generators.flights import generate_flights
from repro.data.generators.food import generate_food
from repro.data.generators.physicians import generate_physicians

#: Name → generator for the paper's four evaluation datasets.
GENERATORS = {
    "hospital": generate_hospital,
    "flights": generate_flights,
    "food": generate_food,
    "physicians": generate_physicians,
}

__all__ = [
    "GeneratedDataset",
    "ErrorInjector",
    "scale_factor",
    "scaled",
    "generate_hospital",
    "generate_flights",
    "generate_food",
    "generate_physicians",
    "GENERATORS",
]
