"""Shared infrastructure for generated evaluation datasets."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.constraints.denial import DenialConstraint
from repro.constraints.matching import MatchingDependency
from repro.dataset.dataset import Cell, Dataset
from repro.detect.violations import ViolationDetector
from repro.external.dictionary import ExternalDictionary


def scale_factor() -> float:
    """The global dataset size multiplier (env ``REPRO_SCALE``, default 1)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        factor = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from None
    if factor <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {factor}")
    return factor


def scaled(n: int, minimum: int = 1) -> int:
    """``n`` rows adjusted by the global scale factor."""
    return max(minimum, int(round(n * scale_factor())))


@dataclass
class GeneratedDataset:
    """A dirty dataset, its clean ground truth, and everything around it."""

    name: str
    dirty: Dataset
    clean: Dataset
    constraints: list[DenialConstraint]
    error_cells: set[Cell]
    dictionaries: list[ExternalDictionary] = field(default_factory=list)
    matching_dependencies: list[MatchingDependency] = field(default_factory=list)
    #: τ used for this dataset in Table 3 of the paper.
    recommended_tau: float = 0.5
    #: Entity key for the source featurizer (Flights: the flight number).
    source_entity_attributes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.dirty.schema != self.clean.schema:
            raise ValueError("dirty and clean datasets must share a schema")
        if self.dirty.num_tuples != self.clean.num_tuples:
            raise ValueError("dirty and clean datasets must align tuple-wise")

    @property
    def num_errors(self) -> int:
        return len(self.error_cells)

    @property
    def error_rate(self) -> float:
        return len(self.error_cells) / max(self.dirty.num_cells, 1)

    def table2_row(self) -> dict[str, int]:
        """The dataset parameters reported in Table 2 of the paper."""
        detection = ViolationDetector(self.constraints).detect(self.dirty)
        return {
            "tuples": self.dirty.num_tuples,
            "attributes": len(self.dirty.schema),
            "violations": len(detection.hypergraph),
            "noisy_cells": len(detection.noisy_cells),
            "ics": len(self.constraints),
        }

    def verify_ground_truth(self) -> None:
        """Sanity check: error cells are exactly where dirty ≠ clean."""
        observed = set(self.dirty.diff(self.clean))
        if observed != self.error_cells:
            missing = self.error_cells - observed
            extra = observed - self.error_cells
            raise AssertionError(
                f"ground truth mismatch: {len(missing)} tracked-but-equal, "
                f"{len(extra)} differing-but-untracked cells")
