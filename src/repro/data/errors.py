"""Error injection with exact ground-truth tracking.

Implements the error families observed in the paper's datasets:

* **typos** — character substitutions; the classic Hospital benchmark
  replaces one character with ``'x'``, Food exhibits arbitrary
  transcription typos;
* **domain swaps** — a cell takes another (wrong) value from its
  attribute's active domain (non-systematic Food errors);
* **systematic replacements** — the same wrong value applied across many
  tuples (Physicians' "Scaramento, CA" appearing in 321 entries);
* **nulls** — dropped values.

Every injector returns the set of cells whose value actually changed, so
precision/recall against the clean dataset are exact.
"""

from __future__ import annotations

import string

import numpy as np

from repro.dataset.dataset import Cell, Dataset


class ErrorInjector:
    """Seeded, ground-truth-tracking corruption of a dataset in place."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    # ------------------------------------------------------------------
    # Value-level corruptions
    # ------------------------------------------------------------------
    def typo(self, value: str, style: str = "x") -> str:
        """One character substitution.

        ``style="x"`` uses the Hospital benchmark's ``'x'`` replacement;
        ``style="random"`` substitutes a random letter/digit.
        """
        if not value:
            return value
        pos = int(self.rng.integers(0, len(value)))
        if style == "x":
            replacement = "x"
            if value[pos] == "x":
                replacement = "y"
        else:
            alphabet = string.ascii_lowercase + string.digits
            replacement = alphabet[int(self.rng.integers(0, len(alphabet)))]
            while replacement == value[pos].lower():
                replacement = alphabet[int(self.rng.integers(0, len(alphabet)))]
        return value[:pos] + replacement + value[pos + 1:]

    # ------------------------------------------------------------------
    # Dataset-level injections
    # ------------------------------------------------------------------
    def inject_typos(self, dataset: Dataset, attributes: list[str],
                     rate: float, style: str = "x") -> set[Cell]:
        """Corrupt a ``rate`` fraction of the given attributes' cells."""
        changed: set[Cell] = set()
        for attr in attributes:
            idx = dataset.schema.index_of(attr)
            for tid in dataset.tuple_ids:
                if self.rng.random() >= rate:
                    continue
                value = dataset.row_ref(tid)[idx]
                if value is None:
                    continue
                corrupted = self.typo(value, style=style)
                if corrupted != value:
                    dataset.set_value(tid, attr, corrupted)
                    changed.add(Cell(tid, attr))
        return changed

    def inject_domain_swaps(self, dataset: Dataset, attributes: list[str],
                            rate: float) -> set[Cell]:
        """Replace cells with a different value from the active domain."""
        changed: set[Cell] = set()
        for attr in attributes:
            domain = dataset.active_domain(attr)
            if len(domain) < 2:
                continue
            idx = dataset.schema.index_of(attr)
            for tid in dataset.tuple_ids:
                if self.rng.random() >= rate:
                    continue
                value = dataset.row_ref(tid)[idx]
                if value is None:
                    continue
                alternative = domain[int(self.rng.integers(0, len(domain)))]
                if alternative == value:
                    continue
                dataset.set_value(tid, attr, alternative)
                changed.add(Cell(tid, attr))
        return changed

    def inject_systematic(self, dataset: Dataset, attribute: str,
                          mapping: dict[str, str],
                          fraction: float = 1.0) -> set[Cell]:
        """Apply a wrong-value ``mapping`` to a fraction of matching cells.

        All corrupted cells share the *same* wrong value — the systematic
        error pattern of Physicians.
        """
        changed: set[Cell] = set()
        idx = dataset.schema.index_of(attribute)
        for tid in dataset.tuple_ids:
            value = dataset.row_ref(tid)[idx]
            if value in mapping and self.rng.random() < fraction:
                wrong = mapping[value]
                if wrong != value:
                    dataset.set_value(tid, attribute, wrong)
                    changed.add(Cell(tid, attribute))
        return changed

    def inject_nulls(self, dataset: Dataset, attributes: list[str],
                     rate: float) -> set[Cell]:
        """Drop a fraction of values to NULL."""
        changed: set[Cell] = set()
        for attr in attributes:
            idx = dataset.schema.index_of(attr)
            for tid in dataset.tuple_ids:
                if self.rng.random() >= rate:
                    continue
                if dataset.row_ref(tid)[idx] is None:
                    continue
                dataset.set_value(tid, attr, None)
                changed.add(Cell(tid, attr))
        return changed

    def inject_group_conflicts(self, dataset: Dataset,
                               groups: list[list[int]], attribute: str,
                               group_rate: float,
                               clean: Dataset | None = None) -> set[Cell]:
        """Corrupt two rows of a group with two *different* wrong values.

        Creates the conflicting-evidence pattern (two contradictory wrong
        values inside one entity's records) that defeats single-value
        minimal-repair heuristics but not statistical majority signals.
        """
        changed: set[Cell] = set()
        domain = dataset.active_domain(attribute)
        if len(domain) < 3:
            return changed
        idx = dataset.schema.index_of(attribute)
        for group in groups:
            if len(group) < 3 or self.rng.random() >= group_rate:
                continue
            members = list(group)
            picked = self.rng.choice(len(members), size=2, replace=False)
            wrongs = []
            for k in picked:
                tid = members[int(k)]
                current = dataset.row_ref(tid)[idx]
                if current is None:
                    continue
                truth = clean.value(tid, attribute) if clean is not None else None
                wrong = current
                while wrong == current or wrong in wrongs or wrong == truth:
                    wrong = domain[int(self.rng.integers(0, len(domain)))]
                wrongs.append(wrong)
                dataset.set_value(tid, attribute, wrong)
                changed.add(Cell(tid, attribute))
        return changed

    def misspell(self, value: str) -> str:
        """A plausible human misspelling: transpose two adjacent letters.

        ``"Sacramento" → "Scaramento"`` — the paper's running example of a
        systematic Physicians error.
        """
        if len(value) < 3:
            return self.typo(value, style="random")
        pos = int(self.rng.integers(1, len(value) - 1))
        swapped = (value[:pos] + value[pos + 1] + value[pos]
                   + value[pos + 2:])
        if swapped == value:  # identical adjacent characters
            return self.typo(value, style="random")
        return swapped
