"""Physicians: Medicare "Physician Compare" (2,071,849 × 18 in the paper).

Signature reproduced from Section 6.1: professionals grouped under
organizations (strong duplication of organization attributes), with
*systematic* errors — the same misspelled city ("Scaramento, CA")
repeated across hundreds of entries, plus zip-to-state inconsistencies.
Zip codes use the ZIP+4 format while the external dictionary holds plain
5-digit zips: the format mismatch that made KATARA produce zero repairs
on this dataset (Table 3, footnote #).
"""

from __future__ import annotations

import numpy as np

from repro.constraints.fd import FunctionalDependency
from repro.constraints.matching import MatchingDependency, MatchPredicate
from repro.data.base import GeneratedDataset, scaled
from repro.data.errors import ErrorInjector
from repro.data import geo
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Attribute, Schema
from repro.external.dictionary import ExternalDictionary

_LAST_NAMES = ["SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA",
               "MILLER", "DAVIS", "RODRIGUEZ", "MARTINEZ", "WILSON", "LOPEZ"]
_FIRST_NAMES = ["JAMES", "MARY", "ROBERT", "PATRICIA", "JOHN", "JENNIFER",
                "MICHAEL", "LINDA", "DAVID", "ELIZABETH", "SARAH", "DANIEL"]
_CREDENTIALS = ["MD", "DO", "NP", "PA", "DPM"]
_SPECIALTIES = ["INTERNAL MEDICINE", "FAMILY PRACTICE", "CARDIOLOGY",
                "DERMATOLOGY", "ORTHOPEDIC SURGERY", "PEDIATRIC MEDICINE",
                "NEUROLOGY", "GENERAL SURGERY"]
_SCHOOLS = ["STATE UNIVERSITY SOM", "CITY MEDICAL COLLEGE",
            "NORTHERN HEALTH SCIENCES", "ATLANTIC SCHOOL OF MEDICINE"]

_SCHEMA = Schema([
    Attribute("NPI", role="id"),
    Attribute("PACId"),
    Attribute("LastName"),
    Attribute("FirstName"),
    Attribute("MiddleName"),
    Attribute("Gender"),
    Attribute("Credential"),
    Attribute("MedicalSchool"),
    Attribute("GraduationYear"),
    Attribute("PrimarySpecialty"),
    Attribute("SecondarySpecialty"),
    Attribute("OrganizationLegalName"),
    Attribute("GroupPracticePACId"),
    Attribute("NumberGroupMembers"),
    Attribute("Address"),
    Attribute("City"),
    Attribute("State"),
    Attribute("Zip"),
])

#: Nine denial constraints (Table 2).
_FDS = [
    FunctionalDependency(["Zip"], ["City"]),
    FunctionalDependency(["Zip"], ["State"]),
    FunctionalDependency(["PACId"], ["LastName"]),
    FunctionalDependency(["PACId"], ["FirstName"]),
    FunctionalDependency(["GroupPracticePACId"], ["OrganizationLegalName"]),
    FunctionalDependency(["GroupPracticePACId"], ["NumberGroupMembers"]),
    FunctionalDependency(["GroupPracticePACId"], ["Address"]),
    FunctionalDependency(["GroupPracticePACId"], ["City"]),
    FunctionalDependency(["OrganizationLegalName"], ["GroupPracticePACId"]),
]


def generate_physicians(num_rows: int | None = None,
                        num_misspelled_cities: int = 6,
                        systematic_fraction: float = 0.25,
                        state_error_fraction: float = 0.25,
                        typo_rate: float = 0.002,
                        seed: int = 31) -> GeneratedDataset:
    """Generate the Physicians analogue (default ≈ 8,000 rows at scale 1).

    ``num_misspelled_cities`` city names receive a shared misspelling
    applied to ``systematic_fraction`` of their organizations' rows — the
    paper's systematic-error pattern.  A small rate of random typos on
    names adds background noise.
    """
    rows_wanted = num_rows if num_rows is not None else scaled(8000)
    rng = np.random.default_rng(seed)
    cities = geo.build_cities()

    num_orgs = max(4, rows_wanted // 40)
    addresses = geo.address_pool(rng, num_orgs)
    organizations = []
    for o in range(num_orgs):
        city = cities[int(rng.integers(0, len(cities)))]
        zipcode = city.zips[int(rng.integers(0, len(city.zips)))]
        organizations.append({
            "OrganizationLegalName": f"{city.name.upper()} HEALTH GROUP {o} LLC",
            "GroupPracticePACId": f"{4000000000 + o}",
            "NumberGroupMembers": str(int(rng.integers(5, 400))),
            "Address": addresses[o].upper(),
            "City": city.name,
            "State": city.state,
            "Zip": f"{zipcode}-{int(rng.integers(1000, 9999))}",  # ZIP+4
        })

    clean = Dataset(_SCHEMA, name="physicians-clean")
    for i in range(rows_wanted):
        org = organizations[i % num_orgs]
        record = dict(org)
        record.update({
            "NPI": f"{1000000000 + i}",
            "PACId": f"{8000000000 + i}",
            "LastName": _LAST_NAMES[int(rng.integers(0, len(_LAST_NAMES)))],
            "FirstName": _FIRST_NAMES[int(rng.integers(0, len(_FIRST_NAMES)))],
            "MiddleName": chr(ord("A") + int(rng.integers(0, 26))),
            "Gender": "F" if rng.random() < 0.5 else "M",
            "Credential": _CREDENTIALS[int(rng.integers(0, len(_CREDENTIALS)))],
            "MedicalSchool": _SCHOOLS[int(rng.integers(0, len(_SCHOOLS)))],
            "GraduationYear": str(int(rng.integers(1970, 2015))),
            "PrimarySpecialty": _SPECIALTIES[
                int(rng.integers(0, len(_SPECIALTIES)))],
            "SecondarySpecialty": _SPECIALTIES[
                int(rng.integers(0, len(_SPECIALTIES)))],
        })
        clean.append([record[a] for a in _SCHEMA.names])

    dirty = clean.copy(name="physicians")
    injector = ErrorInjector(np.random.default_rng(seed + 1))

    # Systematic city misspellings: a shared wrong spelling applied to
    # many rows ("Sacramento, CA" → "Scaramento, CA" × 321).  Half the
    # affected cities get TWO distinct systematic misspellings (separate
    # transcription vendors), which puts contradictory wrong values into
    # the same organisation's records.
    used_cities = sorted({dirty.value(t, "City") for t in dirty.tuple_ids})
    picked = [used_cities[int(i)] for i in
              rng.choice(len(used_cities),
                         size=min(num_misspelled_cities, len(used_cities)),
                         replace=False)]
    first_map = {city: injector.misspell(city) for city in picked}
    error_cells = injector.inject_systematic(
        dirty, "City", first_map, fraction=systematic_fraction / 2)
    second_map = {}
    for city in picked[::2]:  # every other city gets a second misspelling
        alt = injector.misspell(city)
        while alt == first_map[city]:
            alt = injector.misspell(city)
        second_map[city] = alt
    error_cells |= injector.inject_systematic(
        dirty, "City", second_map, fraction=systematic_fraction / 2)

    # Systematic zip→state inconsistencies: a few zips report a wrong state.
    zips = sorted({dirty.value(t, "Zip") for t in dirty.tuple_ids})
    wrong_state_zips = [zips[int(i)] for i in
                        rng.choice(len(zips), size=min(4, len(zips)),
                                   replace=False)]
    state_pool = sorted({c.state for c in cities})
    for z in wrong_state_zips:
        wrong = state_pool[int(rng.integers(0, len(state_pool)))]
        for tid in dirty.tuple_ids:
            if dirty.value(tid, "Zip") == z and rng.random() < state_error_fraction:
                if dirty.value(tid, "State") != wrong:
                    dirty.set_value(tid, "State", wrong)
                    error_cells.add(Cell(tid, "State"))

    # Background random typos on name fields.
    error_cells |= injector.inject_typos(dirty, ["LastName", "FirstName"],
                                         rate=typo_rate, style="random")

    # External dictionary with PLAIN 5-digit zips: the format mismatch
    # that defeats KATARA on this dataset.
    dictionary = ExternalDictionary(
        "us-addresses", ["Ext_Zip", "Ext_City", "Ext_State"],
        geo.zip_city_state_entries(cities))
    matching = [
        MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                           "City", "Ext_City", name="md_city"),
        MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                           "State", "Ext_State", name="md_state"),
    ]

    constraints = [dc for fd in _FDS for dc in fd.to_denial_constraints()]
    return GeneratedDataset(
        name="physicians", dirty=dirty, clean=clean, constraints=constraints,
        error_cells=error_cells, dictionaries=[dictionary],
        matching_dependencies=matching, recommended_tau=0.7)
