"""Hospital: the classic data-cleaning benchmark (1,000 × 19, ~5 % typos).

Signature reproduced from the paper (Section 6.1): a small dataset with
heavy duplication — each hospital's identifying attributes repeat across
its many quality-measure rows — and errors that are single-character
``'x'`` typos on ~5 % of cells.  Nine functional dependencies (compiled
to denial constraints) tie the duplicated attributes together; the
duplication is what lets repair methods recover the clean value.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.fd import FunctionalDependency
from repro.constraints.matching import MatchingDependency, MatchPredicate
from repro.data.base import GeneratedDataset, scaled
from repro.data.errors import ErrorInjector
from repro.data import geo
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Attribute, Schema
from repro.external.dictionary import ExternalDictionary

_CONDITIONS = [
    "Heart Attack", "Heart Failure", "Pneumonia", "Surgical Infection",
    "Emergency Care",
]

_HOSPITAL_TYPES = ["Acute Care Hospitals", "Critical Access Hospitals"]
_OWNERS = [
    "Government - State", "Government - Local", "Proprietary",
    "Voluntary non-profit - Private", "Voluntary non-profit - Church",
]

_SCHEMA = Schema([
    Attribute("ProviderNumber"),
    Attribute("HospitalName"),
    Attribute("Address1"),
    Attribute("City"),
    Attribute("State"),
    Attribute("ZipCode"),
    Attribute("CountyName"),
    Attribute("PhoneNumber"),
    Attribute("HospitalType"),
    Attribute("HospitalOwner"),
    Attribute("EmergencyService"),
    Attribute("Condition"),
    Attribute("MeasureCode"),
    Attribute("MeasureName"),
    Attribute("Score"),
    Attribute("Sample"),
    Attribute("StateAvg"),
    Attribute("HospitalId"),
    Attribute("Region"),
])

#: The nine integrity constraints (Table 2: Hospital has 9 DCs).
_FDS = [
    FunctionalDependency(["ZipCode"], ["City"]),
    FunctionalDependency(["ZipCode"], ["State"]),
    FunctionalDependency(["PhoneNumber"], ["ZipCode"]),
    FunctionalDependency(["MeasureCode"], ["MeasureName"]),
    FunctionalDependency(["MeasureCode"], ["Condition"]),
    FunctionalDependency(["ProviderNumber"], ["HospitalName"]),
    FunctionalDependency(["HospitalName"], ["PhoneNumber"]),
    FunctionalDependency(["HospitalName"], ["ZipCode"]),
    FunctionalDependency(["City"], ["CountyName"]),
]

#: Attributes corrupted by the benchmark's typo process.
_ERROR_ATTRIBUTES = [
    "HospitalName", "City", "State", "ZipCode", "CountyName",
    "PhoneNumber", "Condition", "MeasureCode", "MeasureName",
]


def _measures(count: int = 24) -> list[dict[str, str]]:
    out = []
    for i in range(count):
        condition = _CONDITIONS[i % len(_CONDITIONS)]
        code = f"{condition.split()[0][:2].upper()}-{i + 1}"
        name = f"{condition} measure {i + 1}"
        out.append({"MeasureCode": code, "MeasureName": name,
                    "Condition": condition})
    return out


def generate_hospital(num_rows: int | None = None,
                      error_rate: float = 0.05,
                      seed: int = 7) -> GeneratedDataset:
    """Generate the Hospital benchmark analogue.

    Parameters
    ----------
    num_rows:
        Total rows; default 1,000 (Table 2) scaled by ``REPRO_SCALE``.
    error_rate:
        Per-cell typo probability on the constrained attributes (~5 %).
    seed:
        Generator seed; the dataset is fully deterministic given
        ``(num_rows, error_rate, seed)``.
    """
    rows_wanted = num_rows if num_rows is not None else scaled(1000)
    rng = np.random.default_rng(seed)
    cities = geo.build_cities()
    measures = _measures()

    num_hospitals = max(4, rows_wanted // len(measures) + 1)
    addresses = geo.address_pool(rng, num_hospitals)
    hospitals = []
    for h in range(num_hospitals):
        city = cities[int(rng.integers(0, len(cities)))]
        zipcode = city.zips[int(rng.integers(0, len(city.zips)))]
        hospitals.append({
            "ProviderNumber": f"{10000 + h}",
            "HospitalName": f"{city.name.upper()} MEDICAL CENTER {h}",
            "Address1": addresses[h],
            "City": city.name,
            "State": city.state,
            "ZipCode": zipcode,
            "CountyName": city.county,
            "PhoneNumber": f"{3000000000 + h * 1111}",
            "HospitalType": _HOSPITAL_TYPES[h % len(_HOSPITAL_TYPES)],
            "HospitalOwner": _OWNERS[h % len(_OWNERS)],
            "EmergencyService": "Yes" if h % 3 else "No",
            "HospitalId": f"H{h:04d}",
            "Region": f"Region-{h % 8}",
        })

    clean = Dataset(_SCHEMA, name="hospital-clean")
    row_count = 0
    for h, hospital in enumerate(hospitals):
        for m, measure in enumerate(measures):
            if row_count >= rows_wanted:
                break
            record = dict(hospital)
            record.update(measure)
            # Scores and sample sizes repeat across hospitals in the real
            # benchmark (they are binned percentages/counts).
            record["Score"] = f"{int(rng.integers(8, 20)) * 5}%"
            record["Sample"] = f"{int(rng.integers(1, 9)) * 50} patients"
            record["StateAvg"] = f"{record['State']}_{measure['MeasureCode']}"
            clean.append([record[a] for a in _SCHEMA.names])
            row_count += 1

    dirty = clean.copy(name="hospital")
    injector = ErrorInjector(np.random.default_rng(seed + 1))
    error_cells = injector.inject_typos(dirty, _ERROR_ATTRIBUTES,
                                        rate=error_rate, style="x")

    dictionary = ExternalDictionary(
        "us-addresses", ["Ext_Zip", "Ext_City", "Ext_State"],
        geo.zip_city_state_entries(cities))
    matching = [
        MatchingDependency([MatchPredicate("ZipCode", "Ext_Zip")],
                           "City", "Ext_City", name="md_city"),
        MatchingDependency([MatchPredicate("ZipCode", "Ext_Zip")],
                           "State", "Ext_State", name="md_state"),
    ]

    constraints = [dc for fd in _FDS for dc in fd.to_denial_constraints()]
    return GeneratedDataset(
        name="hospital", dirty=dirty, clean=clean, constraints=constraints,
        error_cells=error_cells, dictionaries=[dictionary],
        matching_dependencies=matching, recommended_tau=0.5)
