"""Flights: multi-source conflicts over flight times (2,377 × 6).

Signature reproduced from the paper (Section 6.1 / [30]): many web
sources report departure/arrival times for the same flights; unreliable
sources copy from each other, so wrong values cluster into a handful of
popular alternatives per flight.  The majority of cells end up noisy;
ground truth is the authoritative schedule.  Four denial constraints say
a flight has a unique value for each time attribute, and the ``Source``
column carries the provenance feature HoloClean exploits to learn source
reliability.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.fd import FunctionalDependency
from repro.data.base import GeneratedDataset, scaled
from repro.dataset.dataset import Cell, Dataset
from repro.dataset.schema import Attribute, Schema

_TIME_ATTRS = ["ScheduledDeparture", "ActualDeparture",
               "ScheduledArrival", "ActualArrival"]

_SCHEMA = Schema([
    Attribute("Source", role="source"),
    Attribute("Flight"),
    Attribute("ScheduledDeparture"),
    Attribute("ActualDeparture"),
    Attribute("ScheduledArrival"),
    Attribute("ActualArrival"),
])

_FDS = [FunctionalDependency(["Flight"], [attr]) for attr in _TIME_ATTRS]


def _random_time(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(0, 24)):02d}:{int(rng.integers(0, 12)) * 5:02d}"


def _shifted(time: str, rng: np.random.Generator) -> str:
    """A plausible wrong time: the true one shifted by 5–120 minutes."""
    hours, minutes = map(int, time.split(":"))
    delta = int(rng.integers(1, 25)) * 5 * (1 if rng.random() < 0.5 else -1)
    total = (hours * 60 + minutes + delta) % (24 * 60)
    return f"{total // 60:02d}:{total % 60:02d}"


def generate_flights(num_flights: int | None = None, num_sources: int = 34,
                     unreliable_error_rate: float = 0.55,
                     alternative_concentration: float = 0.6,
                     reliable_sources: int = 4,
                     seed: int = 11) -> GeneratedDataset:
    """Generate the Flights analogue.

    Defaults give 70 × 34 = 2,380 tuples ≈ the paper's 2,377.  Reliable
    sources (airline/airport sites) err rarely; the long tail of
    aggregator sources reports a wrong time for over half their fields,
    with errors concentrated on a popular wrong alternative (sources copy
    from each other).  Nearly every flight field is conflicted, so the
    majority of cells are noisy; the true value remains the plurality but
    with many close calls — single-value repair heuristics face
    contradictory demands while statistical methods can still recover the
    truth.
    """
    flights_wanted = num_flights if num_flights is not None else scaled(70)
    rng = np.random.default_rng(seed)

    sources = [f"src_{s:02d}" for s in range(num_sources)]
    reliability = {
        source: (0.02 if s < reliable_sources else unreliable_error_rate)
        for s, source in enumerate(sources)
    }

    flights = []
    for f in range(flights_wanted):
        truth = {attr: _random_time(rng) for attr in _TIME_ATTRS}
        # Two popular wrong alternatives per field: copying between bad
        # sources concentrates errors on the same few values.
        alternatives = {
            attr: [_shifted(truth[attr], rng), _shifted(truth[attr], rng)]
            for attr in _TIME_ATTRS
        }
        flights.append((f"FL-{f:04d}", truth, alternatives))

    clean = Dataset(_SCHEMA, name="flights-clean")
    dirty = Dataset(_SCHEMA, name="flights")
    error_cells: set[Cell] = set()
    for flight_id, truth, alternatives in flights:
        for source in sources:
            clean_row = {"Source": source, "Flight": flight_id, **truth}
            dirty_row = dict(clean_row)
            for attr in _TIME_ATTRS:
                if rng.random() < reliability[source]:
                    options = alternatives[attr]
                    pick = 0 if rng.random() < alternative_concentration else 1
                    dirty_row[attr] = options[pick]
            tid = clean.append([clean_row[a] for a in _SCHEMA.names])
            dirty.append([dirty_row[a] for a in _SCHEMA.names])
            for attr in _TIME_ATTRS:
                if dirty_row[attr] != clean_row[attr]:
                    error_cells.add(Cell(tid, attr))

    constraints = [dc for fd in _FDS for dc in fd.to_denial_constraints()]
    return GeneratedDataset(
        name="flights", dirty=dirty, clean=clean, constraints=constraints,
        error_cells=error_cells, recommended_tau=0.3,
        source_entity_attributes=("Flight",))
