"""One generator per evaluation dataset (Table 2 of the paper)."""

from repro.data.generators.hospital import generate_hospital
from repro.data.generators.flights import generate_flights
from repro.data.generators.food import generate_food
from repro.data.generators.physicians import generate_physicians

__all__ = [
    "generate_hospital",
    "generate_flights",
    "generate_food",
    "generate_physicians",
]
