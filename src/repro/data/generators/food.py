"""Food: Chicago food-inspection records (339,908 × 17 in the paper).

Signature reproduced from Section 6.1: establishments inspected many
times across years (heavy duplication of establishment attributes),
errors introduced in *non-systematic* ways — transcription typos and
arbitrary wrong values — captured by seven denial constraints.  The
default size is laptop-friendly; ``REPRO_SCALE`` raises it toward the
paper's row count.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.fd import FunctionalDependency
from repro.constraints.matching import MatchingDependency, MatchPredicate
from repro.data.base import GeneratedDataset, scaled
from repro.data.errors import ErrorInjector
from repro.data import geo
from repro.dataset.dataset import Dataset
from repro.dataset.schema import Attribute, Schema
from repro.external.dictionary import ExternalDictionary

_FACILITY_TYPES = ["Restaurant", "Grocery Store", "Bakery", "School",
                   "Mobile Food Dispenser", "Catering"]
_RISKS = ["Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"]
_INSPECTION_TYPES = ["Canvass", "Complaint", "License", "Re-inspection"]
_RESULTS = ["Pass", "Fail", "Pass w/ Conditions", "No Entry"]

_SCHEMA = Schema([
    Attribute("InspectionID", role="id"),
    Attribute("DBAName"),
    Attribute("AKAName"),
    Attribute("License"),
    Attribute("FacilityType"),
    Attribute("Risk"),
    Attribute("Address"),
    Attribute("City"),
    Attribute("State"),
    Attribute("Zip"),
    Attribute("InspectionDate"),
    Attribute("InspectionType"),
    Attribute("Results"),
    Attribute("Violations"),
    Attribute("Latitude"),
    Attribute("Longitude"),
    Attribute("Location"),
])

#: Seven denial constraints (Table 2), echoing Figure 1's c1–c3.
_FDS = [
    FunctionalDependency(["DBAName"], ["Zip"]),
    FunctionalDependency(["Zip"], ["City"]),
    FunctionalDependency(["Zip"], ["State"]),
    FunctionalDependency(["License"], ["DBAName"]),
    FunctionalDependency(["License"], ["FacilityType"]),
    FunctionalDependency(["City", "State", "Address"], ["Zip"]),
    FunctionalDependency(["Address", "InspectionDate"], ["Results"]),
]

#: Zip errors are transcription typos (producing *invalid* zips, as in the
#: real data) rather than swaps to other valid zips — an invalid zip simply
#: fails dictionary lookups instead of misleading them.
_TYPO_ATTRIBUTES = ["DBAName", "City", "State", "Address", "Zip"]
_SWAP_ATTRIBUTES = ["FacilityType", "Results"]


def generate_food(num_rows: int | None = None, typo_rate: float = 0.02,
                  swap_rate: float = 0.02, duplicate_rate: float = 0.2,
                  seed: int = 23) -> GeneratedDataset:
    """Generate the Food analogue (default ≈ 5,000 rows at scale 1).

    ``duplicate_rate`` of the rows are duplicate filings of an earlier
    inspection (same establishment, date, and result under a fresh
    inspection id) — the paper notes the dataset "contains many
    duplicates as records span different years", and those duplicates are
    what makes result errors detectable through the
    ``Address, InspectionDate → Results`` constraint.
    """
    rows_wanted = num_rows if num_rows is not None else scaled(5000)
    rng = np.random.default_rng(seed)
    cities = geo.build_cities()
    # Chicago-like skew: most establishments live in a handful of cities.
    city_weights = np.array([1.0 / (1 + i) for i in range(len(cities))])
    city_weights /= city_weights.sum()

    num_establishments = max(6, rows_wanted // 6)
    addresses = geo.address_pool(rng, num_establishments)
    establishments = []
    for e in range(num_establishments):
        city = cities[int(rng.choice(len(cities), p=city_weights))]
        zipcode = city.zips[int(rng.integers(0, len(city.zips)))]
        name = f"EATERY {e:05d}"
        establishments.append({
            "DBAName": name,
            "AKAName": name.title(),
            "License": f"{200000 + e}",
            "FacilityType": _FACILITY_TYPES[e % len(_FACILITY_TYPES)],
            "Risk": _RISKS[e % len(_RISKS)],
            "Address": addresses[e],
            "City": city.name,
            "State": city.state,
            "Zip": zipcode,
            "Latitude": f"{41 + rng.random():.6f}",
            "Longitude": f"{-88 + rng.random():.6f}",
        })
        establishments[-1]["Location"] = (
            f"({establishments[-1]['Latitude']}, "
            f"{establishments[-1]['Longitude']})")

    clean = Dataset(_SCHEMA, name="food-clean")
    inspection_id = 1_000_000
    row_count = 0
    seen_visits: set[tuple[str, str]] = set()
    previous_record: dict[str, str] | None = None
    while row_count < rows_wanted:
        if previous_record is not None and rng.random() < duplicate_rate:
            # Duplicate filing of the previous inspection.
            record = dict(previous_record)
            record["InspectionID"] = str(inspection_id)
            record["InspectionType"] = _INSPECTION_TYPES[
                int(rng.integers(0, len(_INSPECTION_TYPES)))]
        else:
            est = establishments[row_count % num_establishments]
            record = dict(est)
            while True:  # unique (address, date): clean data satisfies c7
                year = 2014 + (row_count // num_establishments) % 4
                month = int(rng.integers(1, 13))
                day = int(rng.integers(1, 28))
                date = f"{year:04d}-{month:02d}-{day:02d}"
                if (record["Address"], date) not in seen_visits:
                    seen_visits.add((record["Address"], date))
                    break
            record["InspectionID"] = str(inspection_id)
            record["InspectionDate"] = date
            record["InspectionType"] = _INSPECTION_TYPES[
                int(rng.integers(0, len(_INSPECTION_TYPES)))]
            record["Results"] = _RESULTS[int(rng.integers(0, len(_RESULTS)))]
            record["Violations"] = f"{int(rng.integers(0, 60))} observed"
            previous_record = record
        clean.append([record[a] for a in _SCHEMA.names])
        inspection_id += 1
        row_count += 1

    dirty = clean.copy(name="food")
    injector = ErrorInjector(np.random.default_rng(seed + 1))
    error_cells = injector.inject_typos(dirty, _TYPO_ATTRIBUTES,
                                        rate=typo_rate, style="random")
    error_cells |= injector.inject_domain_swaps(dirty, _SWAP_ATTRIBUTES,
                                                rate=swap_rate)
    # Conflicting wrong values inside establishment groups (the same
    # place filed under two different wrong zips across years).
    by_license: dict[str, list[int]] = {}
    for tid in dirty.tuple_ids:
        by_license.setdefault(dirty.value(tid, "License"), []).append(tid)
    groups = list(by_license.values())
    for attr in ("FacilityType", "Results"):
        error_cells |= injector.inject_group_conflicts(dirty, groups, attr,
                                                       group_rate=0.08,
                                                       clean=clean)

    dictionary = ExternalDictionary(
        "us-addresses", ["Ext_Zip", "Ext_City", "Ext_State"],
        geo.zip_city_state_entries(cities))
    matching = [
        MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                           "City", "Ext_City", name="md_city"),
        MatchingDependency([MatchPredicate("Zip", "Ext_Zip")],
                           "State", "Ext_State", name="md_state"),
    ]

    constraints = [dc for fd in _FDS for dc in fd.to_denial_constraints()]
    return GeneratedDataset(
        name="food", dirty=dirty, clean=clean, constraints=constraints,
        error_cells=error_cells, dictionaries=[dictionary],
        matching_dependencies=matching, recommended_tau=0.5)
