"""Deterministic synthetic geography shared by the dataset generators.

A small US-like world: states, cities (each in one state, one county),
several zip codes per city, and street addresses.  All pools are
deterministic module-level data so that every generator — and the
external dictionary built from the same world — agrees on what "clean"
geography looks like.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_STATE_NAMES = [
    "AL", "AZ", "CA", "CO", "FL", "GA", "IL", "IN", "MA", "MI",
    "MN", "MO", "NC", "NJ", "NY", "OH", "PA", "TN", "TX", "WA",
]

_CITY_STEMS = [
    "Spring", "River", "Oak", "Maple", "Cedar", "Lake", "Hill", "Fair",
    "Green", "Stone", "Bright", "Clear", "Silver", "Golden", "North",
    "South", "East", "West", "Grand", "Pleasant", "Harbor", "Summit",
    "Union", "Liberty", "Franklin", "Madison", "Clinton", "Georgetown",
    "Ashland", "Milton", "Dover", "Hudson", "Auburn", "Bristol",
    "Camden", "Dayton", "Easton", "Fulton", "Granger", "Helena",
]

_CITY_SUFFIXES = ["field", "ton", "ville", "wood", "port", "burg", "dale", "view"]

_STREETS = [
    "Main St", "Oak Ave", "Park Rd", "Elm St", "Washington Blvd",
    "Lake Dr", "Maple Ave", "Cedar Ln", "2nd St", "3rd Ave",
    "Highland Rd", "Sunset Blvd", "River Rd", "Church St", "Mill Ln",
]


@dataclass(frozen=True)
class City:
    """One synthetic city with its state, county, and zip codes."""

    name: str
    state: str
    county: str
    zips: tuple[str, ...]


def build_cities(count: int = 48) -> list[City]:
    """The deterministic city pool (no randomness involved)."""
    cities: list[City] = []
    for i in range(count):
        stem = _CITY_STEMS[i % len(_CITY_STEMS)]
        suffix = _CITY_SUFFIXES[(i // len(_CITY_STEMS)) % len(_CITY_SUFFIXES)]
        name = stem + suffix
        state = _STATE_NAMES[i % len(_STATE_NAMES)]
        county = f"{stem} County"
        base = 10000 + i * 37
        zips = tuple(f"{base + k:05d}" for k in range(3))
        cities.append(City(name=name, state=state, county=county, zips=zips))
    return cities


def address_pool(rng: np.random.Generator, count: int) -> list[str]:
    """``count`` distinct street addresses like ``"412 Oak Ave"``."""
    out: set[str] = set()
    while len(out) < count:
        number = int(rng.integers(100, 9900))
        street = _STREETS[int(rng.integers(0, len(_STREETS)))]
        out.add(f"{number} {street}")
    return sorted(out)


def zip_city_state_entries(cities: list[City]) -> list[dict[str, str]]:
    """Dictionary entries (Ext_Zip, Ext_City, Ext_State) for the whole world."""
    entries = []
    for city in cities:
        for z in city.zips:
            entries.append({"Ext_Zip": z, "Ext_City": city.name,
                            "Ext_State": city.state})
    return entries
