"""Command-line interface: repair a CSV with denial constraints.

Usage::

    python -m repro --input dirty.csv --constraints dcs.txt \\
        --output repaired.csv [--tau 0.5] [--variant dc-feats] \\
        [--fd "Zip -> City,State"] [--report repairs.txt]

The constraints file uses the textual denial-constraint format
(``t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)``, ``#`` comments allowed);
``--fd`` adds functional dependencies on top.  The repaired dataset is
written to ``--output`` and a human-readable repair report (cell, old
value, new value, confidence) to ``--report`` or stdout.

``python -m repro bench [...]`` runs the repository's benchmark suite
instead (see :mod:`repro.bench`).

Repairs execute through the staged plan of :mod:`repro.core.stages`
(Detect → Compile → Learn → Infer → Apply), the same path as the
library facade and the evaluation harness.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.constraints.fd import parse_fd
from repro.constraints.parser import parse_dcs
from repro.core.config import VARIANTS, HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.core.stages import RepairPlan
from repro.dataset.csv_io import read_csv, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HoloClean: holistic data repairs with probabilistic "
                    "inference (VLDB 2017 reproduction)")
    parser.add_argument("--input", required=True, type=Path,
                        help="dirty CSV file (header row required)")
    parser.add_argument("--output", required=True, type=Path,
                        help="where to write the repaired CSV")
    parser.add_argument("--constraints", type=Path,
                        help="denial-constraint file (textual DC format)")
    parser.add_argument("--fd", action="append", default=[],
                        metavar="'A,B -> C'",
                        help="functional dependency (repeatable)")
    parser.add_argument("--discover-fds", action="store_true",
                        help="profile the input and use approximate FDs "
                             "discovered at --discover-confidence")
    parser.add_argument("--discover-confidence", type=float, default=0.95,
                        help="g3 confidence threshold for --discover-fds")
    parser.add_argument("--tau", type=float, default=0.5,
                        help="Algorithm 2 pruning threshold (default 0.5)")
    parser.add_argument("--variant", choices=VARIANTS, default="dc-feats",
                        help="model variant (default dc-feats)")
    parser.add_argument("--epochs", type=int, default=60,
                        help="training epochs (default 60)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--source-column", default=None,
                        help="column carrying tuple provenance")
    parser.add_argument("--entity-columns", default=None,
                        help="comma-separated entity key for source "
                             "reliability (e.g. Flight)")
    parser.add_argument("--report", type=Path, default=None,
                        help="write the repair report here (default stdout)")
    parser.add_argument("--min-confidence", type=float, default=0.0,
                        help="only apply repairs at or above this marginal")
    parser.add_argument("--engine", choices=("numpy", "sqlite", "off"),
                        default="numpy",
                        help="grounding engine backend for detection, "
                             "statistics, domain pruning, and DC-factor "
                             "pair enumeration: vectorized NumPy (default), "
                             "in-memory SQLite, or 'off' for the naive "
                             "tuple-at-a-time path")
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)

    dataset = read_csv(args.input, source_attribute=args.source_column)
    constraints = []
    if args.constraints:
        constraints.extend(
            parse_dcs(args.constraints.read_text().splitlines()))
    for fd_text in args.fd:
        constraints.extend(parse_fd(fd_text).to_denial_constraints())
    if args.discover_fds:
        from repro.constraints.discovery import (
            discover_fds, discovered_to_constraints)
        discovered = discover_fds(dataset,
                                  min_confidence=args.discover_confidence)
        for d in discovered:
            print(f"discovered: {d}", file=sys.stderr)
        constraints.extend(discovered_to_constraints(discovered))
    if not constraints:
        print("error: no constraints given (use --constraints, --fd, or "
              "--discover-fds)", file=sys.stderr)
        return 2

    entity = tuple(c.strip() for c in args.entity_columns.split(",")) \
        if args.entity_columns else ()
    config = HoloCleanConfig.variant(
        args.variant, tau=args.tau, epochs=args.epochs, seed=args.seed,
        source_entity_attributes=entity,
        use_engine=args.engine != "off",
        engine_backend=args.engine if args.engine != "off" else "numpy")

    ctx = HoloClean(config).context(dataset, constraints)
    result = RepairPlan.default().run(ctx).result

    # Apply the confidence floor, if any.
    repaired = dataset.copy(name=f"{dataset.name}-repaired")
    applied = 0
    report_lines = ["cell\told\tnew\tconfidence"]
    for cell, inference in sorted(result.repairs.items()):
        if inference.confidence < args.min_confidence:
            continue
        repaired.set_value(cell.tid, cell.attribute, inference.chosen_value)
        applied += 1
        report_lines.append(
            f"{cell}\t{inference.init_value}\t{inference.chosen_value}"
            f"\t{inference.confidence:.3f}")

    write_csv(repaired, args.output)
    report = "\n".join(report_lines)
    if args.report:
        args.report.write_text(report + "\n")
    else:
        print(report)
    print(f"\n{result.summary()}", file=sys.stderr)
    print(f"{applied} repairs applied to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
