"""Command-line interface: repair a CSV with denial constraints.

Usage::

    python -m repro --input dirty.csv --constraints dcs.txt \\
        --output repaired.csv [--tau 0.5] [--variant dc-feats] \\
        [--fd "Zip -> City,State"] [--report repairs.txt]

The constraints file uses the textual denial-constraint format
(``t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)``, ``#`` comments allowed);
``--fd`` adds functional dependencies on top.  The repaired dataset is
written to ``--output``; ``--report`` takes either a ``.json`` path
(the telemetry :class:`~repro.obs.report.RunReport` — trace tree,
metrics, config fingerprint) or any other path for the human-readable
repair table (cell, old value, new value, confidence; stdout when the
flag is omitted).

``python -m repro bench [...]`` runs the repository's benchmark suite
(see :mod:`repro.bench`); ``python -m repro trace report.json`` renders
a saved run report as a text flamegraph; ``python -m repro lint``
runs the repo-specific invariant linter (see :mod:`repro.analysis` and
``docs/static_analysis.md``); ``python -m repro serve`` runs the HTTP
repair service (see :mod:`repro.serve` and ``docs/serving.md``).

Repairs execute through the staged plan of :mod:`repro.core.stages`
(Detect → Compile → Learn → Infer → Apply), the same path as the
library facade and the evaluation harness.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.constraints.fd import parse_fd
from repro.constraints.parser import parse_dcs
from repro.core.config import VARIANTS, HoloCleanConfig
from repro.core.pipeline import HoloClean
from repro.core.stages import RepairPlan
from repro.dataset.csv_io import read_csv, write_csv
from repro.obs import (
    RunReport,
    add_verbosity_flags,
    configure,
    get_logger,
    verbosity_from,
)

log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HoloClean: holistic data repairs with probabilistic "
                    "inference (VLDB 2017 reproduction)")
    parser.add_argument("--input", required=True, type=Path,
                        help="dirty CSV file (header row required)")
    parser.add_argument("--output", required=True, type=Path,
                        help="where to write the repaired CSV")
    parser.add_argument("--constraints", type=Path,
                        help="denial-constraint file (textual DC format)")
    parser.add_argument("--fd", action="append", default=[],
                        metavar="'A,B -> C'",
                        help="functional dependency (repeatable)")
    parser.add_argument("--discover-fds", action="store_true",
                        help="profile the input and use approximate FDs "
                             "discovered at --discover-confidence")
    parser.add_argument("--discover-confidence", type=float, default=0.95,
                        help="g3 confidence threshold for --discover-fds")
    parser.add_argument("--tau", type=float, default=0.5,
                        help="Algorithm 2 pruning threshold (default 0.5)")
    parser.add_argument("--variant", choices=VARIANTS, default="dc-feats",
                        help="model variant (default dc-feats)")
    parser.add_argument("--epochs", type=int, default=60,
                        help="training epochs (default 60)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--source-column", default=None,
                        help="column carrying tuple provenance")
    parser.add_argument("--entity-columns", default=None,
                        help="comma-separated entity key for source "
                             "reliability (e.g. Flight)")
    parser.add_argument("--report", type=Path, default=None,
                        help="write a report here: a .json path gets the "
                             "telemetry run report (trace + metrics), any "
                             "other path the textual repair table "
                             "(default stdout)")
    parser.add_argument("--min-confidence", type=float, default=0.0,
                        help="only apply repairs at or above this marginal")
    parser.add_argument("--engine", choices=("numpy", "sqlite", "off"),
                        default="numpy",
                        help="grounding engine backend for detection, "
                             "statistics, domain pruning, and DC-factor "
                             "pair enumeration: vectorized NumPy (default), "
                             "in-memory SQLite, or 'off' for the naive "
                             "tuple-at-a-time path")
    parser.add_argument("--trace-level", choices=("off", "stage", "deep"),
                        default="stage",
                        help="telemetry span granularity: one span per "
                             "stage (default), engine/inference child "
                             "spans too ('deep'), or none ('off')")
    parser.add_argument("--trace-memory", action="store_true",
                        help="run tracemalloc so trace spans carry "
                             "Python-heap peak memory (slower)")
    add_verbosity_flags(parser)
    return parser


def trace_main(argv: list[str] | None = None) -> int:
    """``repro trace report.json``: render a saved run report as text."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="render a run report (from --report out.json) as a "
                    "text flamegraph with per-stage timings and metrics")
    parser.add_argument("report", type=Path,
                        help="run-report JSON written by 'repro --report "
                             "out.json' or RunReport.save()")
    add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    configure(verbosity_from(args))
    try:
        report = RunReport.load(args.report)
    except (OSError, ValueError) as exc:
        log.error("cannot read run report %s: %s", args.report, exc)
        return 2
    try:
        print(report.render_text())
    except BrokenPipeError:  # e.g. `repro trace run.json | head`
        sys.stderr.close()  # suppress the interpreter's epipe warning
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.server import main as serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    configure(verbosity_from(args))

    dataset = read_csv(args.input, source_attribute=args.source_column)
    constraints = []
    if args.constraints:
        constraints.extend(
            parse_dcs(args.constraints.read_text().splitlines()))
    for fd_text in args.fd:
        constraints.extend(parse_fd(fd_text).to_denial_constraints())
    if args.discover_fds:
        from repro.constraints.discovery import (
            discover_fds, discovered_to_constraints)
        discovered = discover_fds(dataset,
                                  min_confidence=args.discover_confidence)
        for d in discovered:
            log.info("discovered: %s", d)
        constraints.extend(discovered_to_constraints(discovered))
    if not constraints:
        log.error("no constraints given (use --constraints, --fd, or "
                  "--discover-fds)")
        return 2

    entity = tuple(c.strip() for c in args.entity_columns.split(",")) \
        if args.entity_columns else ()
    config = HoloCleanConfig.variant(
        args.variant, tau=args.tau, epochs=args.epochs, seed=args.seed,
        source_entity_attributes=entity,
        use_engine=args.engine != "off",
        engine_backend=args.engine if args.engine != "off" else "numpy",
        trace_level=args.trace_level,
        trace_memory=args.trace_memory)

    log.debug("repairing %s with %d constraints (variant=%s, engine=%s)",
              args.input, len(constraints), args.variant, args.engine)
    ctx = HoloClean(config).context(dataset, constraints)
    ctx = RepairPlan.default().run(ctx)
    result = ctx.result
    if ctx.tracer is not None:
        ctx.tracer.shutdown()

    # Apply the confidence floor, if any.
    repaired = dataset.copy(name=f"{dataset.name}-repaired")
    applied = 0
    report_lines = ["cell\told\tnew\tconfidence"]
    for cell, inference in sorted(result.repairs.items()):
        if inference.confidence < args.min_confidence:
            continue
        repaired.set_value(cell.tid, cell.attribute, inference.chosen_value)
        applied += 1
        report_lines.append(
            f"{cell}\t{inference.init_value}\t{inference.chosen_value}"
            f"\t{inference.confidence:.3f}")

    write_csv(repaired, args.output)
    report = "\n".join(report_lines)
    if args.report and args.report.suffix == ".json":
        # Telemetry run report (render later with `repro trace`).
        if result.report is None:
            log.error("no run report recorded (is --trace-level off?)")
            return 2
        result.report.save(args.report)
        log.info("run report written to %s", args.report)
    elif args.report:
        args.report.write_text(report + "\n")
    else:
        print(report)
    log.info("%s", result.summary())
    log.info("%d repairs applied to %s", applied, args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
