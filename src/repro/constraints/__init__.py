"""Constraint language: denial constraints and matching dependencies.

Denial constraints (Section 3.1) are first-order formulas
``∀t1,t2 ∈ D: ¬(P1 ∧ … ∧ PK)`` whose predicates compare cells of up to two
tuples (or a cell with a constant) using the operator set
``{=, ≠, <, >, ≤, ≥, ≈}``.  They subsume functional dependencies and
conditional functional dependencies.  Matching dependencies (Section 4.2)
specify lookups against external dictionaries.
"""

from repro.constraints.predicates import Operator, Operand, TupleRef, Const, Predicate
from repro.constraints.denial import DenialConstraint
from repro.constraints.parser import parse_dc, parse_dcs, format_dc, DCParseError
from repro.constraints.fd import FunctionalDependency, parse_fd
from repro.constraints.discovery import (
    DiscoveredFD,
    discover_fds,
    discovered_to_constraints,
)
from repro.constraints.extended import (
    ConditionalFunctionalDependency,
    MetricFunctionalDependency,
)
from repro.constraints.matching import MatchPredicate, MatchingDependency
from repro.constraints.similarity import (
    levenshtein,
    normalized_similarity,
    jaccard,
    similar,
)

__all__ = [
    "Operator",
    "Operand",
    "TupleRef",
    "Const",
    "Predicate",
    "DenialConstraint",
    "parse_dc",
    "parse_dcs",
    "format_dc",
    "DCParseError",
    "FunctionalDependency",
    "parse_fd",
    "DiscoveredFD",
    "discover_fds",
    "discovered_to_constraints",
    "ConditionalFunctionalDependency",
    "MetricFunctionalDependency",
    "MatchPredicate",
    "MatchingDependency",
    "levenshtein",
    "normalized_similarity",
    "jaccard",
    "similar",
]
