"""Textual denial-constraint format and parser.

We adopt the format used by the reference HoloClean release::

    t1&t2&EQ(t1.ZipCode,t2.ZipCode)&IQ(t1.City,t2.City)

* The leading ``t1`` (and optional ``t2``) declare the quantified tuples.
* Each remaining ``&``-separated term is ``OP(operand,operand)`` where
  ``OP`` is one of ``EQ IQ LT GT LTE GTE SIM`` (``IQ`` = inequality,
  ``SIM`` = the paper's ≈).
* Operands are ``tN.Attr`` references or quoted/bare constants, e.g.
  ``EQ(t1.State,"IL")``.

:func:`format_dc` renders a constraint back into this format and round-trips
with :func:`parse_dc`.
"""

from __future__ import annotations

import re

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, Predicate, TupleRef


class DCParseError(ValueError):
    """Raised when a denial-constraint string is malformed."""


_OP_NAMES: dict[str, Operator] = {
    "EQ": Operator.EQ,
    "IQ": Operator.NEQ,
    "NEQ": Operator.NEQ,
    "LT": Operator.LT,
    "GT": Operator.GT,
    "LTE": Operator.LTE,
    "GTE": Operator.GTE,
    "SIM": Operator.SIM,
    "NSIM": Operator.NSIM,
}

_NAME_FOR_OP: dict[Operator, str] = {
    Operator.EQ: "EQ",
    Operator.NEQ: "IQ",
    Operator.LT: "LT",
    Operator.GT: "GT",
    Operator.LTE: "LTE",
    Operator.GTE: "GTE",
    Operator.SIM: "SIM",
    Operator.NSIM: "NSIM",
}

_PRED_RE = re.compile(r"^([A-Z]+)\((.+)\)$")
_REF_RE = re.compile(r"^t([12])\.(.+)$")


def _split_terms(text: str) -> list[str]:
    """Split on ``&`` at depth 0 (constants may contain ``&``)."""
    terms, depth, current = [], 0, []
    in_quote = False
    for ch in text:
        if ch == '"':
            in_quote = not in_quote
            current.append(ch)
        elif ch == "(" and not in_quote:
            depth += 1
            current.append(ch)
        elif ch == ")" and not in_quote:
            depth -= 1
            current.append(ch)
        elif ch == "&" and depth == 0 and not in_quote:
            terms.append("".join(current))
            current = []
        else:
            current.append(ch)
    terms.append("".join(current))
    return [t.strip() for t in terms if t.strip()]


def _split_operands(body: str) -> list[str]:
    """Split a predicate body on the top-level comma."""
    parts, in_quote = [], False
    current: list[str] = []
    for ch in body:
        if ch == '"':
            in_quote = not in_quote
            current.append(ch)
        elif ch == "," and not in_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts]


def _parse_operand(text: str):
    match = _REF_RE.match(text)
    if match:
        return TupleRef(int(match.group(1)), match.group(2))
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return Const(text[1:-1])
    if not text:
        raise DCParseError("empty operand")
    return Const(text)


def parse_dc(text: str, name: str = "", sim_threshold: float = 0.8) -> DenialConstraint:
    """Parse one denial constraint from its textual form."""
    terms = _split_terms(text)
    if not terms:
        raise DCParseError(f"empty denial constraint: {text!r}")
    # Skip the leading tuple declarations (t1, t2).
    preds_start = 0
    for term in terms:
        if term in ("t1", "t2"):
            preds_start += 1
        else:
            break
    pred_terms = terms[preds_start:]
    if not pred_terms:
        raise DCParseError(f"constraint has no predicates: {text!r}")

    predicates: list[Predicate] = []
    for term in pred_terms:
        match = _PRED_RE.match(term)
        if not match:
            raise DCParseError(f"malformed predicate {term!r} in {text!r}")
        op_name, body = match.group(1), match.group(2)
        op = _OP_NAMES.get(op_name)
        if op is None:
            raise DCParseError(
                f"unknown operator {op_name!r}; expected one of {sorted(_OP_NAMES)}")
        operands = _split_operands(body)
        if len(operands) != 2:
            raise DCParseError(f"predicate {term!r} must have two operands")
        left = _parse_operand(operands[0])
        right = _parse_operand(operands[1])
        if not isinstance(left, TupleRef):
            if isinstance(right, TupleRef):  # allow constant-first by flipping
                flipped = {Operator.LT: Operator.GT, Operator.GT: Operator.LT,
                           Operator.LTE: Operator.GTE, Operator.GTE: Operator.LTE}
                left, right = right, left
                op = flipped.get(op, op)
            else:
                raise DCParseError(
                    f"predicate {term!r} must reference at least one tuple attribute")
        predicates.append(Predicate(left, op, right, sim_threshold=sim_threshold))
    return DenialConstraint(predicates, name=name)


def parse_dcs(lines, sim_threshold: float = 0.8) -> list[DenialConstraint]:
    """Parse several constraints; blank lines and ``#`` comments are skipped."""
    out: list[DenialConstraint] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        out.append(parse_dc(line, name=f"dc{len(out)}", sim_threshold=sim_threshold))
    return out


def format_dc(dc: DenialConstraint) -> str:
    """Render a constraint in the textual format accepted by :func:`parse_dc`."""
    terms = ["t1"] if dc.is_single_tuple else ["t1", "t2"]
    for p in dc.predicates:
        op_name = _NAME_FOR_OP[p.op]
        rhs = str(p.right) if isinstance(p.right, Const) else (
            f"t{p.right.tuple_index}.{p.right.attribute}")
        terms.append(f"{op_name}(t{p.left.tuple_index}.{p.left.attribute},{rhs})")
    return "&".join(terms)
