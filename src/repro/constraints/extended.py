"""Conditional and metric functional dependencies.

Section 3.1 of the paper: "Denial constraints subsume several types of
integrity constraints such as functional dependencies, conditional
functional dependencies [8], and metric functional dependencies [28]."
This module makes the subsumption executable: both classes compile to
the denial constraints of :mod:`repro.constraints.denial`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Const, Operator, Predicate, TupleRef


@dataclass(frozen=True)
class ConditionalFunctionalDependency:
    """A CFD [8]: an FD that holds on the tuples matching a pattern.

    Parameters
    ----------
    lhs, rhs:
        The embedded FD ``lhs → rhs`` (one right-hand attribute).
    pattern:
        Constant bindings over (a subset of) the LHS attributes; tuples
        must match all of them for the dependency to apply.  Unbound LHS
        attributes behave as the tableau wildcard ``_``.
    rhs_constant:
        When given, matching tuples must carry this exact RHS value (a
        *constant* CFD, compiling to a single-tuple denial constraint);
        otherwise matching tuple pairs must agree on the RHS (a
        *variable* CFD).

    Example: "in the UK, zip determines street" is
    ``ConditionalFunctionalDependency(("Country", "Zip"), "Street",
    pattern={"Country": "UK"})``.
    """

    lhs: tuple[str, ...]
    rhs: str
    pattern: dict[str, str]
    rhs_constant: str | None = None

    def __init__(self, lhs, rhs: str, pattern: dict[str, str] | None = None,
                 rhs_constant: str | None = None):
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "pattern", dict(pattern or {}))
        object.__setattr__(self, "rhs_constant", rhs_constant)
        if not self.lhs:
            raise ValueError("CFD needs a non-empty LHS")
        if self.rhs in self.lhs:
            raise ValueError("RHS attribute cannot appear in the LHS")
        unknown = set(self.pattern) - set(self.lhs)
        if unknown:
            raise ValueError(
                f"pattern binds attributes outside the LHS: {sorted(unknown)}")

    def to_denial_constraints(self) -> list[DenialConstraint]:
        """Compile per Section 3.1's subsumption argument."""
        name = f"cfd_{'_'.join(self.lhs)}__{self.rhs}"
        if self.rhs_constant is not None:
            # Constant CFD: ∀t1 ¬(pattern(t1) ∧ t1.rhs ≠ c).
            preds = [
                Predicate(TupleRef(1, a), Operator.EQ, Const(v))
                for a, v in sorted(self.pattern.items())
            ]
            preds.append(Predicate(TupleRef(1, self.rhs), Operator.NEQ,
                                   Const(self.rhs_constant)))
            return [DenialConstraint(preds, name=name)]
        # Variable CFD: ∀t1,t2 ¬(t1.lhs = t2.lhs ∧ pattern(t1) ∧
        #                         pattern(t2) ∧ t1.rhs ≠ t2.rhs).
        preds = [
            Predicate(TupleRef(1, a), Operator.EQ, TupleRef(2, a))
            for a in self.lhs
        ]
        for a, v in sorted(self.pattern.items()):
            preds.append(Predicate(TupleRef(1, a), Operator.EQ, Const(v)))
            preds.append(Predicate(TupleRef(2, a), Operator.EQ, Const(v)))
        preds.append(Predicate(TupleRef(1, self.rhs), Operator.NEQ,
                               TupleRef(2, self.rhs)))
        return [DenialConstraint(preds, name=name)]

    def __str__(self) -> str:
        tableau = ", ".join(f"{a}={v!r}" for a, v in sorted(self.pattern.items()))
        rhs = (f"{self.rhs}={self.rhs_constant!r}" if self.rhs_constant
               else self.rhs)
        return f"{','.join(self.lhs)} -> {rhs} [{tableau}]"


@dataclass(frozen=True)
class MetricFunctionalDependency:
    """A metric FD [28]: LHS-equal tuples must have *similar* RHS values.

    Tolerates benign variation ("2:00 PM" vs "2:01 PM", trailing
    whitespace, single typos) that an exact FD would flag.  Compiles to
    ``∀t1,t2 ¬(t1.lhs = t2.lhs ∧ t1.rhs !≈ t2.rhs)`` using the negated
    similarity operator.
    """

    lhs: tuple[str, ...]
    rhs: str
    threshold: float = 0.8

    def __init__(self, lhs, rhs: str, threshold: float = 0.8):
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "threshold", threshold)
        if not self.lhs:
            raise ValueError("metric FD needs a non-empty LHS")
        if self.rhs in self.lhs:
            raise ValueError("RHS attribute cannot appear in the LHS")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")

    def to_denial_constraints(self) -> list[DenialConstraint]:
        preds = [
            Predicate(TupleRef(1, a), Operator.EQ, TupleRef(2, a))
            for a in self.lhs
        ]
        preds.append(Predicate(TupleRef(1, self.rhs), Operator.NSIM,
                               TupleRef(2, self.rhs),
                               sim_threshold=self.threshold))
        name = f"mfd_{'_'.join(self.lhs)}__{self.rhs}"
        return [DenialConstraint(preds, name=name)]

    def __str__(self) -> str:
        return (f"{','.join(self.lhs)} -> {self.rhs} "
                f"(≈ at {self.threshold:.2f})")
