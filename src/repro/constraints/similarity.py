"""String similarity used by the ``≈`` operator and matching dependencies.

The paper's operator set B includes ``≈`` "denoting similarity"
(Section 3.1); matching dependencies use it to align dirty values with
dictionary entries (Example 3 uses ``c1 ≈ c2``).  We provide Levenshtein
edit distance (banded, early-exit), a length-normalised similarity in
[0, 1], and token Jaccard similarity.
"""

from __future__ import annotations


def levenshtein(a: str, b: str, max_distance: int | None = None) -> int:
    """Edit distance between two strings.

    Parameters
    ----------
    a, b:
        Input strings.
    max_distance:
        Optional early-exit bound: once every entry of a DP row exceeds the
        bound the function returns ``max_distance + 1`` immediately.  Useful
        when callers only care whether the distance is within a threshold.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):  # keep the inner loop over the shorter string
        a, b = b, a
    if max_distance is not None and len(b) - len(a) > max_distance:
        return max_distance + 1

    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        row_min = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            val = min(previous[i] + 1,        # deletion
                      current[i - 1] + 1,     # insertion
                      previous[i - 1] + cost)  # substitution
            current.append(val)
            if val < row_min:
                row_min = val
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def normalized_similarity(a: str, b: str) -> float:
    """``1 - levenshtein(a, b) / max(len(a), len(b))`` in [0, 1].

    Two empty strings are defined to have similarity 1.0.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaccard(a: str, b: str) -> float:
    """Jaccard similarity of whitespace token sets, in [0, 1]."""
    ta, tb = set(a.split()), set(b.split())
    if not ta and not tb:
        return 1.0
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)


def similar(a: str | None, b: str | None, threshold: float = 0.8) -> bool:
    """The ``≈`` operator: edit similarity at or above ``threshold``.

    NULL is similar to nothing (including NULL) — predicates never fire
    on missing data.
    """
    if a is None or b is None:
        return False
    if a == b:
        return True
    # Cheap bound: the normalised similarity cannot reach the threshold if
    # the length difference alone exceeds the allowed edit budget.
    longest = max(len(a), len(b))
    budget = int(longest * (1.0 - threshold))
    if abs(len(a) - len(b)) > budget:
        return False
    return levenshtein(a, b, max_distance=budget) <= budget
