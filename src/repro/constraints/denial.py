"""Denial constraints ``σ: ∀t1,t2 ∈ D: ¬(P1 ∧ … ∧ PK)``.

A pair of tuples *violates* σ when **all** predicates hold simultaneously.
Single-tuple constraints (every predicate references only ``t1``) are
evaluated per tuple.  The class also exposes the structural queries the
rest of the system needs: which attributes are involved, which predicates
are hash-joinable equalities (used by the violation detector), and which
attributes of each tuple position a repair could change to resolve a
violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.predicates import Predicate, TupleRef


@dataclass(frozen=True)
class DenialConstraint:
    """An immutable denial constraint with an optional identifier."""

    predicates: tuple[Predicate, ...]
    name: str = ""

    def __init__(self, predicates, name: str = ""):
        object.__setattr__(self, "predicates", tuple(predicates))
        object.__setattr__(self, "name", name or self._default_name())
        if not self.predicates:
            raise ValueError("denial constraint needs at least one predicate")

    def _default_name(self) -> str:
        return "dc_" + "_".join(
            p.left.attribute for p in getattr(self, "predicates", ())) or "dc"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def is_single_tuple(self) -> bool:
        """True when no predicate mentions ``t2``."""
        return all(
            p.left.tuple_index == 1
            and (not isinstance(p.right, TupleRef) or p.right.tuple_index == 1)
            for p in self.predicates
        )

    @property
    def attributes(self) -> set[str]:
        """All attributes mentioned anywhere in the constraint."""
        out: set[str] = set()
        for p in self.predicates:
            out |= p.attributes
        return out

    def attributes_of(self, tuple_index: int) -> set[str]:
        """Attributes read from one tuple position (1 or 2)."""
        out: set[str] = set()
        for p in self.predicates:
            out |= p.attributes_of(tuple_index)
        return out

    @property
    def equijoin_predicates(self) -> list[Predicate]:
        """Binary equality predicates, usable as hash-join keys."""
        return [p for p in self.predicates if p.is_equijoin]

    @property
    def residual_predicates(self) -> list[Predicate]:
        """Predicates that are not binary equalities (checked after the join)."""
        return [p for p in self.predicates if not p.is_equijoin]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def violates(self, values1: dict[str, str | None],
                 values2: dict[str, str | None] | None = None) -> bool:
        """True when the tuple (pair) satisfies every predicate.

        For two-tuple constraints the caller must ensure ``t1 != t2``;
        the constraint itself is agnostic to tuple identity.
        """
        return all(p.evaluate(values1, values2) for p in self.predicates)

    def violates_symmetric(self, values1: dict[str, str | None],
                           values2: dict[str, str | None]) -> bool:
        """Check the constraint in both tuple orders."""
        return self.violates(values1, values2) or self.violates(values2, values1)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        quant = "∀t1" if self.is_single_tuple else "∀t1,t2"
        body = " ∧ ".join(str(p) for p in self.predicates)
        return f"{quant}: ¬({body})"

    def __repr__(self) -> str:
        return f"DenialConstraint({self.name!r}: {self})"
