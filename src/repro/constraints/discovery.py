"""Approximate functional-dependency discovery.

HoloClean assumes denial constraints are *given*; in practice they come
from profiling tools such as Chu et al.'s denial-constraint discovery
[11], which the paper cites for its error-detection pipeline.  This
module provides the FD fragment of that substrate: it proposes
``LHS → RHS`` dependencies that hold on most of a (possibly dirty)
relation, with a confidence score tolerant of the very errors HoloClean
will later repair.

Confidence of ``X → A`` is measured g3-style: the fraction of tuples that
would remain after deleting the minimum set making the FD exact —
``Σ_groups max_value_count / Σ_groups group_size``.  Keys (groups of
size 1) trivially satisfy every FD, so candidates whose average group
size is too small are filtered out as uninformative.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.constraints.fd import FunctionalDependency
from repro.dataset.dataset import Dataset


@dataclass(frozen=True)
class DiscoveredFD:
    """A candidate dependency with its evidence."""

    fd: FunctionalDependency
    confidence: float
    support: int          # tuples with non-NULL LHS and RHS
    violations: int       # tuples that must change for the FD to hold

    def __str__(self) -> str:
        return (f"{self.fd}  (confidence {self.confidence:.3f}, "
                f"support {self.support}, violations {self.violations})")


def discover_fds(dataset: Dataset, max_lhs: int = 2,
                 min_confidence: float = 0.95, min_support: int = 20,
                 min_group_size: float = 2.0,
                 attributes: list[str] | None = None) -> list[DiscoveredFD]:
    """Propose approximate FDs holding on the dataset.

    Parameters
    ----------
    dataset:
        The (dirty) relation to profile.
    max_lhs:
        Maximum attributes on the left-hand side (1 or 2 is practical).
    min_confidence:
        g3 confidence threshold; below 1.0 tolerates dirty data.
    min_support:
        Minimum tuples with non-NULL values on both sides.
    min_group_size:
        Minimum *average* LHS-group size; filters out key-like LHS whose
        FDs are trivially confident but carry no repair signal.
    attributes:
        Restrict profiling to these attributes (default: data attributes).

    Returns
    -------
    Discovered FDs sorted by descending confidence, then support.
    Non-minimal dependencies (a superset LHS implying the same RHS that a
    discovered subset LHS already implies) are suppressed.
    """
    attrs = attributes or dataset.schema.data_attributes
    found: list[DiscoveredFD] = []
    confirmed_lhs_by_rhs: dict[str, list[frozenset[str]]] = defaultdict(list)

    lhs_candidates: list[tuple[str, ...]] = [(a,) for a in attrs]
    for size in range(2, max_lhs + 1):
        lhs_candidates.extend(itertools.combinations(attrs, size))

    for lhs in lhs_candidates:
        lhs_set = frozenset(lhs)
        lhs_idx = [dataset.schema.index_of(a) for a in lhs]
        for rhs in attrs:
            if rhs in lhs_set:
                continue
            # Minimality: skip if a subset LHS already implies this RHS.
            if any(prior < lhs_set
                   for prior in confirmed_lhs_by_rhs.get(rhs, ())):
                continue
            rhs_idx = dataset.schema.index_of(rhs)
            groups: dict[tuple, Counter] = defaultdict(Counter)
            support = 0
            for tid in dataset.tuple_ids:
                row = dataset.row_ref(tid)
                key = tuple(row[i] for i in lhs_idx)
                value = row[rhs_idx]
                if value is None or any(v is None for v in key):
                    continue
                groups[key][value] += 1
                support += 1
            if support < min_support or not groups:
                continue
            if support / len(groups) < min_group_size:
                continue  # key-like LHS: trivially functional
            kept = sum(counts.most_common(1)[0][1]
                       for counts in groups.values())
            confidence = kept / support
            if confidence < min_confidence:
                continue
            fd = FunctionalDependency(list(lhs), [rhs])
            found.append(DiscoveredFD(fd=fd, confidence=confidence,
                                      support=support,
                                      violations=support - kept))
            confirmed_lhs_by_rhs[rhs].append(lhs_set)

    found.sort(key=lambda d: (-d.confidence, -d.support, str(d.fd)))
    return found


def discovered_to_constraints(discovered: list[DiscoveredFD]):
    """Compile discovered FDs straight into denial constraints."""
    out = []
    for d in discovered:
        out.extend(d.fd.to_denial_constraints())
    return out
