"""Functional dependencies and their compilation to denial constraints.

Example 2 of the paper: the FD ``Zip → City, State`` becomes the two
denial constraints::

    ∀t1,t2: ¬(t1.Zip = t2.Zip ∧ t1.City  ≠ t2.City)
    ∀t1,t2: ¬(t1.Zip = t2.Zip ∧ t1.State ≠ t2.State)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.denial import DenialConstraint
from repro.constraints.predicates import Operator, Predicate, TupleRef


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs → rhs`` over attribute names."""

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __init__(self, lhs, rhs):
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(rhs))
        if not self.lhs or not self.rhs:
            raise ValueError("FD needs non-empty lhs and rhs")
        overlap = set(self.lhs) & set(self.rhs)
        if overlap:
            raise ValueError(f"attributes on both sides of FD: {sorted(overlap)}")

    def to_denial_constraints(self) -> list[DenialConstraint]:
        """One DC per right-hand-side attribute (Example 2 construction)."""
        out = []
        for target in self.rhs:
            preds = [
                Predicate(TupleRef(1, a), Operator.EQ, TupleRef(2, a))
                for a in self.lhs
            ]
            preds.append(Predicate(TupleRef(1, target), Operator.NEQ,
                                   TupleRef(2, target)))
            name = f"fd_{'_'.join(self.lhs)}__{target}"
            out.append(DenialConstraint(preds, name=name))
        return out

    def __str__(self) -> str:
        return f"{','.join(self.lhs)} -> {','.join(self.rhs)}"


def parse_fd(text: str) -> FunctionalDependency:
    """Parse ``"A,B -> C,D"`` into a :class:`FunctionalDependency`."""
    if "->" not in text:
        raise ValueError(f"FD must contain '->': {text!r}")
    lhs_text, rhs_text = text.split("->", 1)
    lhs = [a.strip() for a in lhs_text.split(",") if a.strip()]
    rhs = [a.strip() for a in rhs_text.split(",") if a.strip()]
    return FunctionalDependency(lhs, rhs)
