"""Predicates of denial constraints.

A predicate ``P_k`` has the form ``(t_i[A_n] o t_j[A_m])`` or
``(t_i[A_n] o α)`` where ``o ∈ B = {=, ≠, <, >, ≤, ≥, ≈}`` and ``α`` is a
constant (Section 3.1).  Ordering comparisons try numeric interpretation
first and fall back to lexicographic order, matching how the reference
implementation treats mixed string/number columns.  Any predicate touching
a NULL evaluates to False (it cannot contribute to a violation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constraints.similarity import similar


class Operator(enum.Enum):
    """Comparison operators of the denial-constraint language."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LTE = "<="
    GTE = ">="
    SIM = "~"    # the paper's ≈
    NSIM = "!~"  # negated similarity: needed to express metric FDs [28]

    @property
    def negated(self) -> "Operator":
        """The complementary operator (used to reason about repairs)."""
        return _NEGATIONS[self]


_NEGATIONS = {
    Operator.EQ: Operator.NEQ,
    Operator.NEQ: Operator.EQ,
    Operator.LT: Operator.GTE,
    Operator.GTE: Operator.LT,
    Operator.GT: Operator.LTE,
    Operator.LTE: Operator.GT,
    Operator.SIM: Operator.NSIM,
    Operator.NSIM: Operator.SIM,
}


@dataclass(frozen=True)
class TupleRef:
    """Operand referring to attribute ``attribute`` of tuple ``t1`` or ``t2``."""

    tuple_index: int  # 1 or 2
    attribute: str

    def __post_init__(self) -> None:
        if self.tuple_index not in (1, 2):
            raise ValueError("tuple_index must be 1 or 2")

    def __str__(self) -> str:
        return f"t{self.tuple_index}.{self.attribute}"


@dataclass(frozen=True)
class Const:
    """Constant operand ``α``."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


Operand = TupleRef | Const


def _coerce(a: str, b: str) -> tuple:
    """Try to compare numerically; otherwise lexicographically."""
    try:
        return float(a), float(b)
    except (TypeError, ValueError):
        return a, b


@dataclass(frozen=True)
class Predicate:
    """A single comparison inside a denial constraint."""

    left: TupleRef
    op: Operator
    right: Operand
    sim_threshold: float = 0.8

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_binary(self) -> bool:
        """True when the predicate compares cells of two *different* tuples."""
        return (isinstance(self.right, TupleRef)
                and self.right.tuple_index != self.left.tuple_index)

    @property
    def attributes(self) -> set[str]:
        """All attributes mentioned by the predicate."""
        attrs = {self.left.attribute}
        if isinstance(self.right, TupleRef):
            attrs.add(self.right.attribute)
        return attrs

    def attributes_of(self, tuple_index: int) -> set[str]:
        """Attributes this predicate reads from the given tuple position."""
        attrs: set[str] = set()
        if self.left.tuple_index == tuple_index:
            attrs.add(self.left.attribute)
        if isinstance(self.right, TupleRef) and self.right.tuple_index == tuple_index:
            attrs.add(self.right.attribute)
        return attrs

    @property
    def is_equijoin(self) -> bool:
        """True for ``t1.A = t2.B`` — usable as a hash-join key."""
        return self.op is Operator.EQ and self.is_binary

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, values1: dict[str, str | None],
                 values2: dict[str, str | None] | None = None) -> bool:
        """Evaluate against tuple-1 (and tuple-2) attribute→value mappings.

        Returns False whenever an operand is NULL: a missing value can
        never witness a constraint violation.
        """
        lhs = self._resolve(self.left, values1, values2)
        rhs = (self.right.value if isinstance(self.right, Const)
               else self._resolve(self.right, values1, values2))
        if lhs is None or rhs is None:
            return False
        return self.compare(lhs, rhs)

    def compare(self, lhs: str, rhs: str) -> bool:
        """Apply the operator to two concrete (non-NULL) values."""
        op = self.op
        if op is Operator.EQ:
            return lhs == rhs
        if op is Operator.NEQ:
            return lhs != rhs
        if op is Operator.SIM:
            return similar(lhs, rhs, self.sim_threshold)
        if op is Operator.NSIM:
            return not similar(lhs, rhs, self.sim_threshold)
        a, b = _coerce(lhs, rhs)
        if op is Operator.LT:
            return a < b
        if op is Operator.GT:
            return a > b
        if op is Operator.LTE:
            return a <= b
        return a >= b  # GTE

    @staticmethod
    def _resolve(ref: TupleRef, values1: dict[str, str | None],
                 values2: dict[str, str | None] | None) -> str | None:
        if ref.tuple_index == 1:
            return values1.get(ref.attribute)
        if values2 is None:
            raise ValueError(f"predicate references t2 but no second tuple given: {ref}")
        return values2.get(ref.attribute)

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"
