"""Predicates of denial constraints.

A predicate ``P_k`` has the form ``(t_i[A_n] o t_j[A_m])`` or
``(t_i[A_n] o α)`` where ``o ∈ B = {=, ≠, <, >, ≤, ≥, ≈}`` and ``α`` is a
constant (Section 3.1).  Ordering comparisons try numeric interpretation
first and fall back to lexicographic order, matching how the reference
implementation treats mixed string/number columns.  Any predicate touching
a NULL evaluates to False (it cannot contribute to a violation).
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass

import numpy as np

from repro.constraints.similarity import similar


class Operator(enum.Enum):
    """Comparison operators of the denial-constraint language."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LTE = "<="
    GTE = ">="
    SIM = "~"    # the paper's ≈
    NSIM = "!~"  # negated similarity: needed to express metric FDs [28]

    @property
    def negated(self) -> "Operator":
        """The complementary operator (used to reason about repairs)."""
        return _NEGATIONS[self]


_NEGATIONS = {
    Operator.EQ: Operator.NEQ,
    Operator.NEQ: Operator.EQ,
    Operator.LT: Operator.GTE,
    Operator.GTE: Operator.LT,
    Operator.GT: Operator.LTE,
    Operator.LTE: Operator.GT,
    Operator.SIM: Operator.NSIM,
    Operator.NSIM: Operator.SIM,
}

#: Element-wise comparison per ordering operator (vectorized path).
#: ``operator.*`` dispatches through the array protocol, which — unlike
#: the ``np.less`` ufunc family on older NumPy — also covers string
#: dtypes everywhere.
_ORDER_UFUNCS = {
    Operator.LT: operator.lt,
    Operator.GT: operator.gt,
    Operator.LTE: operator.le,
    Operator.GTE: operator.ge,
}


@dataclass(frozen=True)
class TupleRef:
    """Operand referring to attribute ``attribute`` of tuple ``t1`` or ``t2``."""

    tuple_index: int  # 1 or 2
    attribute: str

    def __post_init__(self) -> None:
        if self.tuple_index not in (1, 2):
            raise ValueError("tuple_index must be 1 or 2")

    def __str__(self) -> str:
        return f"t{self.tuple_index}.{self.attribute}"


@dataclass(frozen=True)
class Const:
    """Constant operand ``α``."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


Operand = TupleRef | Const


def _coerce(a: str, b: str) -> tuple:
    """Try to compare numerically; otherwise lexicographically."""
    try:
        return float(a), float(b)
    except (TypeError, ValueError):
        return a, b


@dataclass(frozen=True)
class OrderKeys:
    """Vectorized comparison keys for one codebook's values.

    Ordering predicates coerce pairwise — numeric when *both* operands
    parse as floats, lexicographic otherwise — so the mixed comparator is
    not a total order and cannot be captured by sort ranks alone (codes
    cannot simply be re-numbered into an ordered codebook).  Instead each
    value carries its parsed float (NaN-padded), a numeric flag, and its
    string form; :meth:`Predicate.compare_coded` selects the numeric or
    lexicographic comparison per element, reproducing :func:`_coerce`
    exactly (including ``inf``/``nan`` parses and IEEE NaN semantics).

    Arrays are padded to length ≥ 1 so gathers with clamped NULL codes
    never index an empty array.
    """

    is_number: np.ndarray
    numbers: np.ndarray
    strings: np.ndarray

    @classmethod
    def from_values(cls, values: list[str]) -> "OrderKeys":
        n = max(len(values), 1)
        is_number = np.zeros(n, dtype=bool)
        numbers = np.full(n, np.nan, dtype=np.float64)
        for code, value in enumerate(values):
            try:
                numbers[code] = float(value)
            except (TypeError, ValueError):
                continue
            is_number[code] = True
        strings = np.array(list(values) + [""] * (n - len(values)))
        return cls(is_number=is_number, numbers=numbers, strings=strings)


@dataclass(frozen=True)
class Predicate:
    """A single comparison inside a denial constraint."""

    left: TupleRef
    op: Operator
    right: Operand
    sim_threshold: float = 0.8

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_binary(self) -> bool:
        """True when the predicate compares cells of two *different* tuples."""
        return (isinstance(self.right, TupleRef)
                and self.right.tuple_index != self.left.tuple_index)

    @property
    def attributes(self) -> set[str]:
        """All attributes mentioned by the predicate."""
        attrs = {self.left.attribute}
        if isinstance(self.right, TupleRef):
            attrs.add(self.right.attribute)
        return attrs

    def attributes_of(self, tuple_index: int) -> set[str]:
        """Attributes this predicate reads from the given tuple position."""
        attrs: set[str] = set()
        if self.left.tuple_index == tuple_index:
            attrs.add(self.left.attribute)
        if isinstance(self.right, TupleRef) and self.right.tuple_index == tuple_index:
            attrs.add(self.right.attribute)
        return attrs

    @property
    def is_equijoin(self) -> bool:
        """True for ``t1.A = t2.B`` — usable as a hash-join key."""
        return self.op is Operator.EQ and self.is_binary

    @property
    def is_code_comparable(self) -> bool:
        """Whether :meth:`compare_coded` / :meth:`constant_mask` apply.

        Everything except similarity between two tuple references is
        evaluable in code space: equality compares shared codes, ordering
        compares :class:`OrderKeys`, and constants (similarity included)
        reduce to a per-code lookup table.  Binary similarity would need a
        quadratic pairwise table, so those constraints stay on the naive
        per-pair path.
        """
        if self.op not in (Operator.SIM, Operator.NSIM):
            return True
        return isinstance(self.right, Const)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, values1: dict[str, str | None],
                 values2: dict[str, str | None] | None = None) -> bool:
        """Evaluate against tuple-1 (and tuple-2) attribute→value mappings.

        Returns False whenever an operand is NULL: a missing value can
        never witness a constraint violation.
        """
        lhs = self._resolve(self.left, values1, values2)
        rhs = (self.right.value if isinstance(self.right, Const)
               else self._resolve(self.right, values1, values2))
        if lhs is None or rhs is None:
            return False
        return self.compare(lhs, rhs)

    def compare(self, lhs: str, rhs: str) -> bool:
        """Apply the operator to two concrete (non-NULL) values."""
        op = self.op
        if op is Operator.EQ:
            return lhs == rhs
        if op is Operator.NEQ:
            return lhs != rhs
        if op is Operator.SIM:
            return similar(lhs, rhs, self.sim_threshold)
        if op is Operator.NSIM:
            return not similar(lhs, rhs, self.sim_threshold)
        a, b = _coerce(lhs, rhs)
        if op is Operator.LT:
            return a < b
        if op is Operator.GT:
            return a > b
        if op is Operator.LTE:
            return a <= b
        return a >= b  # GTE

    # ------------------------------------------------------------------
    # Code-space evaluation (vectorized grounding)
    # ------------------------------------------------------------------
    def constant_mask(self, values: list[str]) -> np.ndarray:
        """Truth of ``value o α`` per code of a codebook (Const operand).

        The returned boolean LUT is indexed by dictionary code; NULL
        (code ``-1``) must be masked by the caller.  Each entry is
        computed with :meth:`compare`, so the LUT is exact for every
        operator — similarity included.
        """
        if not isinstance(self.right, Const):
            raise ValueError(f"predicate has no constant operand: {self}")
        alpha = self.right.value
        mask = np.zeros(max(len(values), 1), dtype=bool)
        for code, value in enumerate(values):
            mask[code] = self.compare(value, alpha)
        return mask

    def compare_coded(self, left_codes: np.ndarray, right_codes: np.ndarray,
                      keys: OrderKeys | None = None) -> np.ndarray:
        """Vectorized :meth:`compare` over dictionary codes.

        Both code arrays must be drawn from one shared codebook (equal
        strings ⇒ equal codes; see :meth:`ColumnStore.union_codebook
        <repro.engine.store.ColumnStore.union_codebook>`); ordering
        operators additionally need that codebook's :class:`OrderKeys`.
        NULL codes (``< 0``) never satisfy the predicate, mirroring
        :meth:`evaluate`.  Operands broadcast like any NumPy arrays.
        """
        valid = (left_codes >= 0) & (right_codes >= 0)
        op = self.op
        if op is Operator.EQ:
            return (left_codes == right_codes) & valid
        if op is Operator.NEQ:
            return (left_codes != right_codes) & valid
        if op in (Operator.SIM, Operator.NSIM) or keys is None:
            raise ValueError(
                f"predicate is not code-comparable without a pairwise "
                f"table: {self}")
        compare = _ORDER_UFUNCS[op]
        lhs = np.maximum(left_codes, 0)
        rhs = np.maximum(right_codes, 0)
        both_numeric = keys.is_number[lhs] & keys.is_number[rhs]
        # Evaluate only the branch(es) actually selected: an all-numeric
        # (or all-string) grid skips the dead comparison entirely instead
        # of materialising it for np.where to discard.
        if both_numeric.all():
            out = compare(keys.numbers[lhs], keys.numbers[rhs])
        elif not both_numeric.any():
            out = compare(keys.strings[lhs], keys.strings[rhs])
        else:
            out = np.where(both_numeric,
                           compare(keys.numbers[lhs], keys.numbers[rhs]),
                           compare(keys.strings[lhs], keys.strings[rhs]))
        return out & valid

    @staticmethod
    def _resolve(ref: TupleRef, values1: dict[str, str | None],
                 values2: dict[str, str | None] | None) -> str | None:
        if ref.tuple_index == 1:
            return values1.get(ref.attribute)
        if values2 is None:
            raise ValueError(f"predicate references t2 but no second tuple given: {ref}")
        return values2.get(ref.attribute)

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"
