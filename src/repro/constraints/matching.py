"""Matching dependencies against external dictionaries.

Figure 1(C) of the paper, e.g.::

    m1: Zip = Ext_Zip → City = Ext_City

A :class:`MatchingDependency` has *match predicates* (how a dataset tuple is
aligned with a dictionary entry, optionally with similarity ``≈``) and one
*consequence*: the dataset attribute whose value should equal a dictionary
attribute whenever the match fires.  The external-data module grounds these
into the ``Matched(t, a, v, k)`` relation of Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.similarity import similar


@dataclass(frozen=True)
class MatchPredicate:
    """``dataset_attr (=|≈) dict_attr`` used to align tuples with entries."""

    dataset_attribute: str
    dict_attribute: str
    fuzzy: bool = False
    sim_threshold: float = 0.8

    def matches(self, dataset_value: str | None, dict_value: str | None) -> bool:
        if dataset_value is None or dict_value is None:
            return False
        if self.fuzzy:
            return similar(dataset_value, dict_value, self.sim_threshold)
        return dataset_value == dict_value

    def __str__(self) -> str:
        op = "≈" if self.fuzzy else "="
        return f"{self.dataset_attribute} {op} Ext_{self.dict_attribute}"


@dataclass(frozen=True)
class MatchingDependency:
    """``match_1 ∧ … ∧ match_n → target_attr = Ext_{dict_target}``."""

    matches: tuple[MatchPredicate, ...]
    target_attribute: str
    dict_target_attribute: str
    name: str = ""

    def __init__(self, matches, target_attribute: str,
                 dict_target_attribute: str, name: str = ""):
        object.__setattr__(self, "matches", tuple(matches))
        object.__setattr__(self, "target_attribute", target_attribute)
        object.__setattr__(self, "dict_target_attribute", dict_target_attribute)
        object.__setattr__(self, "name", name or f"md_{target_attribute}")
        if not self.matches:
            raise ValueError("matching dependency needs at least one match predicate")

    def entry_matches(self, tuple_values: dict[str, str | None],
                      entry: dict[str, str | None]) -> bool:
        """Does dictionary ``entry`` align with the dataset tuple?"""
        return all(
            m.matches(tuple_values.get(m.dataset_attribute),
                      entry.get(m.dict_attribute))
            for m in self.matches
        )

    def __str__(self) -> str:
        lhs = " ∧ ".join(str(m) for m in self.matches)
        return f"{lhs} → {self.target_attribute} = Ext_{self.dict_target_attribute}"
