"""``python -m repro bench``: run the benchmark suite locally.

Discovers every ``benchmarks/bench_*.py`` script in the repository
checkout and runs the selected ones as subprocesses — directly when the
script has a ``__main__`` entry point, through pytest otherwise (the
table/figure benches are pytest-style) — then summarises the
machine-readable ``BENCH_*.json`` results published under
``benchmarks/results/``, the same files the CI ``bench`` job uploads as
artifacts and gates with ``benchmarks/check_regression.py``.  Each
script honours its own ``BENCH_*`` / ``REPRO_SCALE`` environment knobs.

Usage::

    python -m repro bench --list
    python -m repro bench --only factor_grounding --only engine_grounding
    python -m repro bench --check          # apply the CI regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

from repro.obs import add_verbosity_flags, configure, get_logger, verbosity_from

_MAIN_GUARD = re.compile(r"__name__\s*==\s*['\"]__main__['\"]")

log = get_logger("bench")


def repo_benchmarks_dir() -> Path | None:
    """The checkout's ``benchmarks/`` directory, if running from one."""
    candidate = Path(__file__).resolve().parents[2] / "benchmarks"
    return candidate if candidate.is_dir() else None


def child_env(bench_dir: Path) -> dict[str, str]:
    """Subprocess environment with the checkout's ``src/`` importable.

    Children run with ``cwd=benchmarks/``, so any relative ``PYTHONPATH``
    inherited from the caller (e.g. ``PYTHONPATH=src``) would no longer
    resolve; prepend the absolute package root instead.
    """
    env = dict(os.environ)
    src = str(bench_dir.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def command_for(script: Path) -> list[str]:
    """How to execute one benchmark script.

    The performance benches are plain scripts with a ``__main__`` block;
    the table/figure benches only define pytest functions and would
    silently no-op under ``python script.py``.
    """
    if _MAIN_GUARD.search(script.read_text()):
        return [sys.executable, str(script)]
    return [sys.executable, "-m", "pytest", str(script), "-q"]


def discover(bench_dir: Path, only: list[str]) -> list[Path]:
    """The benchmark scripts to run, filtered by ``--only`` substrings."""
    scripts = sorted(bench_dir.glob("bench_*.py"))
    if not only:
        return scripts
    return [s for s in scripts if any(pattern in s.stem for pattern in only)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the benchmark scripts and collect BENCH_*.json results")
    parser.add_argument("--only", action="append", default=[],
                        metavar="SUBSTRING",
                        help="run only scripts whose name contains this "
                             "(repeatable); default: all bench_*.py")
    parser.add_argument("--list", action="store_true",
                        help="list the scripts that would run, then exit")
    parser.add_argument("--check", action="store_true",
                        help="after running, compare BENCH_*.json against "
                             "benchmarks/baselines.json (the CI gate)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression for --check "
                             "(default 0.20)")
    add_verbosity_flags(parser)
    return parser


def summarise(results_dir: Path) -> list[str]:
    lines = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        metrics = ", ".join(f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                            for k, v in payload.get("metrics", {}).items())
        lines.append(f"  {path.name}: {metrics}")
    return lines


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure(verbosity_from(args))
    bench_dir = repo_benchmarks_dir()
    if bench_dir is None:
        log.error("no benchmarks/ directory next to this package "
                  "(bench runs from a repository checkout)")
        return 2
    scripts = discover(bench_dir, args.only)
    if not scripts:
        log.error("no benchmark scripts matched")
        return 2
    if args.list:
        for script in scripts:
            print(script.name)
        return 0

    env = child_env(bench_dir)
    failures: list[str] = []
    for script in scripts:
        log.info("== %s", script.name)
        started = time.perf_counter()
        proc = subprocess.run(command_for(script), cwd=bench_dir, env=env)
        elapsed = time.perf_counter() - started
        status = "ok" if proc.returncode == 0 else f"FAILED ({proc.returncode})"
        log.info("== %s: %s in %.1fs", script.name, status, elapsed)
        if proc.returncode != 0:
            failures.append(script.name)

    results_dir = bench_dir / "results"
    summary = summarise(results_dir) if results_dir.is_dir() else []
    if summary:
        print("\nBENCH results:")
        print("\n".join(summary))
    if failures:
        log.error("%d benchmark(s) failed: %s",
                  len(failures), ", ".join(failures))
        return 1

    if args.check:
        check = bench_dir / "check_regression.py"
        proc = subprocess.run(
            [sys.executable, str(check), "--tolerance", str(args.tolerance)],
            cwd=bench_dir.parent)
        return proc.returncode
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
