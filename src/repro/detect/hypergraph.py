"""Conflict hypergraphs over detected violations.

Following Kolahi & Lakshmanan [26] and Section 5.1.2 of the paper: nodes
are cells that participate in detected violations; each hyperedge links the
cells involved in one violation and is annotated with the constraint that
produced it.  Algorithm 3 derives, per constraint, the connected components
of tuples — the groups inside which denial-constraint factors are grounded.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.constraints.denial import DenialConstraint
from repro.dataset.dataset import Cell


@dataclass(frozen=True)
class Violation:
    """One hyperedge: a constraint together with the tuples/cells it links."""

    constraint_name: str
    tids: tuple[int, ...]
    cells: tuple[Cell, ...]

    def __post_init__(self) -> None:
        if not self.tids:
            raise ValueError("violation must involve at least one tuple")


class _UnionFind:
    """Path-compressed union-find over arbitrary hashable items."""

    def __init__(self):
        self._parent: dict = {}

    def find(self, x):
        parent = self._parent.setdefault(x, x)
        if parent != x:
            root = self.find(parent)
            self._parent[x] = root
            return root
        return x

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def components(self) -> list[set]:
        groups: dict = defaultdict(set)
        for x in self._parent:
            groups[self.find(x)].add(x)
        return list(groups.values())


class ConflictHypergraph:
    """All violations detected in a dataset, with per-constraint views."""

    def __init__(self, constraints: list[DenialConstraint] | None = None):
        self._violations: list[Violation] = []
        self._by_constraint: dict[str, list[Violation]] = defaultdict(list)
        self._constraints = {c.name: c for c in (constraints or [])}

    def add(self, violation: Violation) -> None:
        self._violations.append(violation)
        self._by_constraint[violation.constraint_name].append(violation)

    def extend(self, violations) -> None:
        for v in violations:
            self.add(v)

    def add_many(self, constraint_name: str, violations: list[Violation]) -> None:
        """Bulk-append violations of one constraint (engine fast path)."""
        self._violations.extend(violations)
        self._by_constraint[constraint_name].extend(violations)

    @property
    def violations(self) -> list[Violation]:
        return self._violations

    def by_constraint(self, name: str) -> list[Violation]:
        return self._by_constraint.get(name, [])

    @property
    def constraint_names(self) -> list[str]:
        return list(self._by_constraint)

    def constraint(self, name: str) -> DenialConstraint | None:
        return self._constraints.get(name)

    def cells(self) -> set[Cell]:
        """All cells appearing in any violation (the noisy-cell candidates)."""
        out: set[Cell] = set()
        for v in self._violations:
            out.update(v.cells)
        return out

    def tuples(self) -> set[int]:
        out: set[int] = set()
        for v in self._violations:
            out.update(v.tids)
        return out

    def violation_count(self, constraint_name: str | None = None) -> int:
        if constraint_name is None:
            return len(self._violations)
        return len(self._by_constraint.get(constraint_name, []))

    # ------------------------------------------------------------------
    # Algorithm 3: per-constraint connected components of tuples
    # ------------------------------------------------------------------
    def tuple_components(self, constraint_name: str) -> list[set[int]]:
        """Connected components of the subgraph H_σ for one constraint.

        Tuples are connected when they co-occur in a violation of σ; each
        component is a group over which DC factors are grounded.
        """
        uf = _UnionFind()
        for v in self._by_constraint.get(constraint_name, []):
            first = v.tids[0]
            uf.find(first)  # register singletons too
            for other in v.tids[1:]:
                uf.union(first, other)
        return uf.components()

    def all_components(self) -> dict[str, list[set[int]]]:
        """Algorithm 3's output: constraint → list of tuple groups."""
        return {name: self.tuple_components(name) for name in self._by_constraint}

    def merge(self, other: "ConflictHypergraph") -> None:
        """Absorb another hypergraph (used by the ensemble detector)."""
        for name, dc in other._constraints.items():
            self._constraints.setdefault(name, dc)
        for v in other._violations:
            self.add(v)

    def __len__(self) -> int:
        return len(self._violations)
