"""Programmatic error detection via labeling functions.

Section 7 of the paper: "the paradigm of data programming [34] has been
introduced as a means to allow users to programmatically encode domain
knowledge in inference tasks.  Exploring how data programming and data
cleaning can be unified … is a promising future direction."

This module realises that direction for the *detection* side: users write
small labeling functions voting ``ERROR`` / ``CLEAN`` / ``ABSTAIN`` per
cell; :class:`ProgrammaticDetector` aggregates the votes into the noisy
set ``D_n``.  A few common labeling-function builders are provided.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.dataset.dataset import Cell, Dataset
from repro.dataset.stats import Statistics
from repro.detect.base import DetectionResult, ErrorDetector

#: Labeling-function verdicts.
ERROR = 1
CLEAN = 0
ABSTAIN = -1


@dataclass(frozen=True)
class LabelingFunction:
    """A named voter over cells."""

    name: str
    fn: Callable[[Dataset, Cell], int]
    weight: float = 1.0

    def __call__(self, dataset: Dataset, cell: Cell) -> int:
        verdict = self.fn(dataset, cell)
        if verdict not in (ERROR, CLEAN, ABSTAIN):
            raise ValueError(
                f"labeling function {self.name!r} returned {verdict!r}; "
                f"expected ERROR, CLEAN, or ABSTAIN")
        return verdict


class ProgrammaticDetector(ErrorDetector):
    """Weighted-vote aggregation of labeling functions.

    A cell joins ``D_n`` when the weighted ERROR votes exceed the weighted
    CLEAN votes by at least ``margin``.  Abstentions carry no weight, so a
    single confident function can flag a cell nobody else covers.
    """

    def __init__(self, functions: list[LabelingFunction],
                 attributes: list[str] | None = None, margin: float = 0.5):
        if not functions:
            raise ValueError("need at least one labeling function")
        self.functions = list(functions)
        self.attributes = attributes
        self.margin = margin

    def detect(self, dataset: Dataset) -> DetectionResult:
        attrs = self.attributes or dataset.schema.data_attributes
        noisy: set[Cell] = set()
        for tid in dataset.tuple_ids:
            for attr in attrs:
                cell = Cell(tid, attr)
                score = 0.0
                for lf in self.functions:
                    verdict = lf(dataset, cell)
                    if verdict == ERROR:
                        score += lf.weight
                    elif verdict == CLEAN:
                        score -= lf.weight
                if score >= self.margin:
                    noisy.add(cell)
        return DetectionResult(noisy_cells=noisy)


# ---------------------------------------------------------------------------
# Common labeling-function builders
# ---------------------------------------------------------------------------
def lf_null(name: str = "lf_null") -> LabelingFunction:
    """Votes ERROR on NULL cells, abstains otherwise."""

    def fn(dataset: Dataset, cell: Cell) -> int:
        return ERROR if dataset.cell_value(cell) is None else ABSTAIN

    return LabelingFunction(name, fn)


def lf_pattern(attribute: str, pattern: str, *, matches_are_clean: bool = True,
               name: str | None = None) -> LabelingFunction:
    """Votes by regular expression on one attribute.

    With ``matches_are_clean`` (default) values matching the pattern are
    CLEAN and the rest ERROR (a format check, e.g. ``r"\\d{5}"`` for
    zips); inverted, matches are ERROR (a deny-list).
    """
    compiled = re.compile(pattern)

    def fn(dataset: Dataset, cell: Cell) -> int:
        if cell.attribute != attribute:
            return ABSTAIN
        value = dataset.cell_value(cell)
        if value is None:
            return ABSTAIN
        matched = compiled.fullmatch(value) is not None
        if matches_are_clean:
            return CLEAN if matched else ERROR
        return ERROR if matched else CLEAN

    return LabelingFunction(name or f"lf_pattern_{attribute}", fn)


def lf_allowed_values(attribute: str, allowed, *,
                      name: str | None = None) -> LabelingFunction:
    """Votes ERROR when the value is outside a closed vocabulary."""
    allowed_set = frozenset(allowed)

    def fn(dataset: Dataset, cell: Cell) -> int:
        if cell.attribute != attribute:
            return ABSTAIN
        value = dataset.cell_value(cell)
        if value is None:
            return ABSTAIN
        return CLEAN if value in allowed_set else ERROR

    return LabelingFunction(name or f"lf_allowed_{attribute}", fn)


def lf_rare_value(attribute: str, max_count: int = 1, *,
                  name: str | None = None) -> LabelingFunction:
    """Votes ERROR on values occurring at most ``max_count`` times.

    Statistics are computed per dataset on first use and memoised on the
    function object (datasets are not mutated during detection).
    """
    cache: dict[int, Statistics] = {}

    def fn(dataset: Dataset, cell: Cell) -> int:
        if cell.attribute != attribute:
            return ABSTAIN
        value = dataset.cell_value(cell)
        if value is None:
            return ABSTAIN
        stats = cache.get(id(dataset))
        if stats is None:
            stats = Statistics(dataset)
            cache[id(dataset)] = stats
        return ERROR if stats.frequency(attribute, value) <= max_count \
            else ABSTAIN

    return LabelingFunction(name or f"lf_rare_{attribute}", fn)
