"""NULL detection: missing values are cells to be inferred."""

from __future__ import annotations

from repro.dataset.dataset import Cell, Dataset
from repro.detect.base import DetectionResult, ErrorDetector


class NullDetector(ErrorDetector):
    """Flags every NULL cell in the given (default: all data) attributes."""

    def __init__(self, attributes: list[str] | None = None):
        self.attributes = attributes

    def detect(self, dataset: Dataset) -> DetectionResult:
        attrs = self.attributes or dataset.schema.data_attributes
        indexes = [(a, dataset.schema.index_of(a)) for a in attrs]
        noisy = {
            Cell(tid, a)
            for tid in dataset.tuple_ids
            for a, i in indexes
            if dataset.row_ref(tid)[i] is None
        }
        return DetectionResult(noisy_cells=noisy)
