"""Combining detectors: the union of noisy cells, merged hypergraphs."""

from __future__ import annotations

from repro.dataset.dataset import Dataset
from repro.detect.base import DetectionResult, ErrorDetector


class EnsembleDetector(ErrorDetector):
    """Runs several detectors and unions their findings.

    HoloClean's error detection is a black box that may combine multiple
    mechanisms (Section 2.2); the union preserves each detector's conflict
    hypergraph so downstream partitioning still sees every violation.
    """

    def __init__(self, detectors: list[ErrorDetector]):
        if not detectors:
            raise ValueError("ensemble needs at least one detector")
        self.detectors = list(detectors)

    def detect(self, dataset: Dataset) -> DetectionResult:
        result = DetectionResult()
        for detector in self.detectors:
            result.merge(detector.detect(dataset))
        return result
