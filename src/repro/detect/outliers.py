"""Frequency-based outlier detection for categorical data.

Implements the "detect outliers" option of HoloClean's error-detection
module (Figure 2), in the spirit of Das & Schneider [15] and
Hellerstein [22]: a cell is flagged when its value is a rare exception in
an otherwise concentrated attribute.  Two guards keep the detector from
flagging genuinely high-cardinality attributes (names, addresses):

* the value's relative frequency must fall below ``max_relative_frequency``
  *and* its absolute count below ``max_count``;
* the attribute itself must be concentrated — its most frequent value must
  cover at least ``dominance`` of the non-NULL cells.
"""

from __future__ import annotations

from repro.dataset.dataset import Cell, Dataset
from repro.dataset.stats import Statistics
from repro.detect.base import DetectionResult, ErrorDetector


class OutlierDetector(ErrorDetector):
    """Flags rare values in concentrated categorical attributes."""

    def __init__(self, attributes: list[str] | None = None,
                 max_relative_frequency: float = 0.01,
                 max_count: int = 3,
                 dominance: float = 0.2):
        self.attributes = attributes
        self.max_relative_frequency = max_relative_frequency
        self.max_count = max_count
        self.dominance = dominance

    def detect(self, dataset: Dataset) -> DetectionResult:
        stats = Statistics(dataset)
        attrs = self.attributes or dataset.schema.data_attributes
        noisy: set[Cell] = set()
        for attr in attrs:
            counts = stats.counts(attr)
            total = sum(counts.values())
            if total == 0:
                continue
            top = counts.most_common(1)[0][1]
            if top / total < self.dominance:
                continue  # attribute too diverse to call anything an outlier
            rare = {
                v for v, n in counts.items()
                if n <= self.max_count and n / total <= self.max_relative_frequency
            }
            if not rare:
                continue
            idx = dataset.schema.index_of(attr)
            for tid in dataset.tuple_ids:
                if dataset.row_ref(tid)[idx] in rare:
                    noisy.add(Cell(tid, attr))
        return DetectionResult(noisy_cells=noisy)
